#!/usr/bin/env bash
# Local CI gate: format, lint (warnings are errors), release build, tests.
# Run from the workspace root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "CI OK"
