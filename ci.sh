#!/usr/bin/env bash
# Local CI gate: format, lint (warnings are errors), release build, tests.
# Run from the workspace root before pushing.
#
#   ./ci.sh                # the default gate
#   ./ci.sh --bench-smoke  # gate + compile the Criterion benches + tiny
#                          # end-to-end runs of the baseline recorders
#                          # (bench_pairwise; bench_kernels, which fails
#                          # unless DOPH beats the classic batched
#                          # MinHash kernel at width 128; bench_serve,
#                          # which fails if 16 concurrent readers tank
#                          # the pipelined server's QPS; bench_scale,
#                          # which fails unless the mapped-store filter
#                          # is bit-identical to the in-RAM run and
#                          # streaming ingest stays out-of-core;
#                          # bench_spans, which fails if the span layer
#                          # slows ingest-to-visible past 1.15x, then
#                          # gates the fresh numbers against the
#                          # committed baseline with `adalsh bench diff`);
#                          # committed baselines are never touched
set -euo pipefail
cd "$(dirname "$0")"

bench_smoke=0
for arg in "$@"; do
    case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> serve smoke"
# Boot the service on an ephemeral port, hit /healthz and /topk over raw
# TCP (bash /dev/tcp: no curl dependency), and shut it down.
serve_smoke() {
    local data log addr pid
    data=$(mktemp /tmp/adalsh-serve-smoke-XXXXXX.jsonl)
    log=$(mktemp /tmp/adalsh-serve-smoke-XXXXXX.log)
    ./target/release/adalsh generate spotsigs --out "$data" \
        --records 200 --entities 30 >/dev/null
    ./target/release/adalsh serve "$data" --addr 127.0.0.1:0 >"$log" &
    pid=$!
    trap 'kill "$pid" 2>/dev/null || true' RETURN
    # Wait for the bound-address announcement.
    for _ in $(seq 1 100); do
        addr=$(sed -n 's#^listening on http://##p' "$log")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "serve never announced its address" >&2; cat "$log" >&2; return 1; }
    local host=${addr%:*} port=${addr##*:}

    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET /healthz HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3
    grep -q '"status":"ok"' <&3 || { echo "/healthz failed" >&2; return 1; }
    exec 3<&- 3>&-

    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET /topk?k=2 HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3
    grep -q '"clusters":' <&3 || { echo "/topk failed" >&2; return 1; }
    exec 3<&- 3>&-

    # Write path: ingest a batch, then a read-your-writes barrier read —
    # the returned visible_epoch plugs straight into ?wait_epoch=.
    local body='{"records":[{"fields":[{"Shingles":[1,2,3,4]}]},{"fields":[{"Shingles":[1,2,3,5]}]}]}'
    exec 3<>"/dev/tcp/$host/$port"
    printf 'POST /ingest HTTP/1.1\r\nHost: smoke\r\nContent-Length: %s\r\n\r\n%s' \
        "${#body}" "$body" >&3
    grep -q '"visible_epoch":1' <&3 || { echo "/ingest missing visible_epoch" >&2; return 1; }
    exec 3<&- 3>&-

    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET /topk?k=2&wait_epoch=1 HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3
    grep -q '"epoch":1' <&3 || { echo "read-your-writes barrier failed" >&2; return 1; }
    exec 3<&- 3>&-

    # Short 4-client load burst against the lock-free read path: every
    # response must be a 200 even while clients overlap.
    local c bpid bpids=()
    for c in 1 2 3 4; do
        (
            for _ in $(seq 1 25); do
                exec 4<>"/dev/tcp/$host/$port"
                printf 'GET /topk?k=2 HTTP/1.1\r\nHost: burst\r\n\r\n' >&4
                head -n1 <&4 | grep -q ' 200 ' || exit 1
                exec 4<&- 4>&-
            done
        ) &
        bpids+=("$!")
    done
    for bpid in "${bpids[@]}"; do
        wait "$bpid" || { echo "load burst client failed" >&2; return 1; }
    done

    # The engine's trace events must surface as adalsh_engine_* families
    # on the scrape (the query above emitted at least one hash round).
    local scrape
    scrape=$(mktemp /tmp/adalsh-serve-smoke-XXXXXX.metrics)
    exec 3<>"/dev/tcp/$host/$port"
    printf 'GET /metrics HTTP/1.1\r\nHost: smoke\r\n\r\n' >&3
    cat <&3 >"$scrape"
    exec 3<&- 3>&-
    grep -q 'adalsh_engine_hash_round_seconds_bucket' "$scrape" ||
        { echo "/metrics missing engine hash-round histogram" >&2; return 1; }
    grep -q 'adalsh_engine_pairwise_block_seconds_bucket' "$scrape" ||
        { echo "/metrics missing engine pairwise-block histogram" >&2; return 1; }
    grep -q 'adalsh_engine_gate_decisions_total' "$scrape" ||
        { echo "/metrics missing engine gate-decision counter" >&2; return 1; }
    if grep -q 'adalsh_engine_hash_round_seconds_count 0' "$scrape"; then
        echo "engine hash-round histogram never observed a round" >&2
        return 1
    fi
    # The ingest pipeline's queue/epoch families must be on the scrape:
    # the ingest above was applied, so the epoch gauge reads 1, a batch
    # was counted, and the queue has drained back to 0.
    grep -q 'adalsh_ingest_queue_depth 0' "$scrape" ||
        { echo "/metrics missing drained ingest queue gauge" >&2; return 1; }
    grep -q 'adalsh_published_epoch 1' "$scrape" ||
        { echo "/metrics missing published epoch gauge" >&2; return 1; }
    grep -q 'adalsh_applied_batches_total 1' "$scrape" ||
        { echo "/metrics missing applied-batches counter" >&2; return 1; }
    grep -q 'adalsh_resolve_batch_records_bucket' "$scrape" ||
        { echo "/metrics missing batch-size histogram" >&2; return 1; }
    grep -q 'adalsh_publish_seconds_bucket' "$scrape" ||
        { echo "/metrics missing publish-latency histogram" >&2; return 1; }
    rm -f "$scrape"

    # Clean shutdown.
    kill "$pid"
    wait "$pid" 2>/dev/null || true
    rm -f "$data" "$log"
}
serve_smoke

echo "==> trace smoke"
# Run the adaptive filter with --trace-out and check the emitted JSONL
# validates (taxonomy + trace↔Stats reconciliation) and summarizes.
trace_smoke() {
    local data trace
    data=$(mktemp /tmp/adalsh-trace-smoke-XXXXXX.jsonl)
    trace=$(mktemp /tmp/adalsh-trace-smoke-XXXXXX.trace.jsonl)
    ./target/release/adalsh generate spotsigs --out "$data" \
        --records 200 --entities 30 >/dev/null
    ./target/release/adalsh filter "$data" --k 3 --rule jaccard:0.6 \
        --trace-out "$trace" >/dev/null
    ./target/release/adalsh trace validate "$trace" | grep -q 'OK' ||
        { echo "trace validate failed" >&2; return 1; }
    ./target/release/adalsh trace summarize "$trace" | grep -q 'H1' ||
        { echo "trace summarize missing level table" >&2; return 1; }
    rm -f "$data" "$trace"
}
trace_smoke

echo "==> oracle chaos smoke"
# Run the filter through the fault-injected noisy oracle at a fixed seed
# with a budget tight enough to force graceful degradation. The run must
# exit 0 (degradation, never abort), report its spend, and the emitted
# trace must validate — the schema validator reconciles Σ per-call
# oracle spend against the run_end ledger mirror bit-for-bit.
oracle_smoke() {
    local data trace out
    data=$(mktemp /tmp/adalsh-oracle-smoke-XXXXXX.jsonl)
    trace=$(mktemp /tmp/adalsh-oracle-smoke-XXXXXX.trace.jsonl)
    ./target/release/adalsh generate spotsigs --out "$data" \
        --records 200 --entities 30 >/dev/null
    out=$(./target/release/adalsh filter "$data" --k 3 --rule jaccard:0.6 \
        --oracle noisy --oracle-fp 0.05 --oracle-fn 0.05 --oracle-fault 0.2 \
        --oracle-seed 7 --oracle-budget 500 --trace-out "$trace") ||
        { echo "noisy-oracle filter did not degrade gracefully" >&2; return 1; }
    echo "$out" | grep -q 'oracle:' ||
        { echo "filter output missing the oracle spend summary" >&2; return 1; }
    echo "$out" | grep -q 'degraded' ||
        { echo "filter output missing degradation counts" >&2; return 1; }
    ./target/release/adalsh trace validate "$trace" | grep -q 'OK' ||
        { echo "oracle trace validate failed" >&2; return 1; }
    rm -f "$data" "$trace"
}
oracle_smoke

echo "==> scale store smoke"
# Stream the scale generator into a store file, resolve directly off the
# memory mapping (no positional dataset), and validate the emitted trace
# — which also checks the run_start event reports source=store.
scale_smoke() {
    # grep on captured output, not on a live pipe: `grep -q` would close
    # the pipe at first match and SIGPIPE the tool under pipefail.
    local store trace out
    store=$(mktemp /tmp/adalsh-scale-smoke-XXXXXX.store)
    trace=$(mktemp /tmp/adalsh-scale-smoke-XXXXXX.trace.jsonl)
    ./target/release/adalsh datagen --out "$store" --records 10000 --seed 7 >/dev/null
    ./target/release/adalsh filter --store "$store" --k 5 --rule jaccard:0.4 \
        --trace-out "$trace" >/dev/null
    grep -q '"source":"store"' "$trace" ||
        { echo "trace run_start does not report source=store" >&2; return 1; }
    # The store-backed run must carry its filter_run span tree (design +
    # resolve phases with the engine-derived children) in the same file,
    # and the validator must accept the tree's containment invariants.
    grep -q '"ev":"span"' "$trace" ||
        { echo "store-path trace carries no span events" >&2; return 1; }
    grep -q '"op":"filter_run"' "$trace" ||
        { echo "store-path trace missing the filter_run root span" >&2; return 1; }
    out=$(./target/release/adalsh trace validate "$trace")
    grep -q 'OK' <<<"$out" ||
        { echo "store-path trace validate failed" >&2; return 1; }
    out=$(./target/release/adalsh trace attribute "$trace")
    grep -q 'filter_run' <<<"$out" ||
        { echo "trace attribute lost the filter_run phase breakdown" >&2; return 1; }
    out=$(./target/release/adalsh evaluate --store "$store" --k 5 --rule jaccard:0.4)
    grep -q 'recall gold:       1.0000' <<<"$out" ||
        { echo "store-path evaluate lost gold recall" >&2; return 1; }
    rm -f "$store" "$trace"
}
scale_smoke

if [ "$bench_smoke" = 1 ]; then
    echo "==> cargo bench --no-run (compile gate)"
    cargo bench --workspace --no-run --quiet

    echo "==> bench_pairwise --smoke"
    cargo run --release -p adalsh-bench --bin bench_pairwise -- --smoke

    echo "==> bench_kernels --smoke (doph-beats-classic gate)"
    cargo run --release -p adalsh-bench --bin bench_kernels -- --smoke

    echo "==> bench_oracle --smoke (noisy-oracle robustness sweep)"
    cargo run --release -p adalsh-bench --bin bench_oracle -- --smoke

    echo "==> bench_serve --smoke (read-scaling gate)"
    # Compiles the serve load driver and fails unless the pipelined
    # server's 16-client read QPS holds up against its 1-client QPS.
    cargo run --release -p adalsh-bench --bin bench_serve -- --smoke

    echo "==> bench_scale --smoke (out-of-core gates)"
    # Fails unless the mapped-store filter is bit-identical to the
    # in-RAM run and streaming ingest peaks below the materialized
    # footprint.
    cargo run --release -p adalsh-bench --bin bench_scale -- --smoke

    echo "==> bench_spans --smoke (span-overhead + regression gate)"
    # Fails if the span layer slows ingest-to-visible past 1.15x, then
    # diffs the fresh numbers against the committed baseline — smoke
    # mode tolerates warn-level (1.3x) noise but fails past 3x.
    spans_fresh=$(mktemp /tmp/adalsh-bench-spans-XXXXXX.json)
    cargo run --release -p adalsh-bench --bin bench_spans -- --smoke --out "$spans_fresh"
    ./target/release/adalsh bench diff "$spans_fresh" BENCH_spans.json --smoke
    rm -f "$spans_fresh"
fi

echo "CI OK"
