#!/usr/bin/env bash
# Local CI gate: format, lint (warnings are errors), release build, tests.
# Run from the workspace root before pushing.
#
#   ./ci.sh                # the default gate
#   ./ci.sh --bench-smoke  # gate + a tiny end-to-end run of the P
#                          # baseline recorder (exercises bench_pairwise
#                          # without touching the committed baseline)
set -euo pipefail
cd "$(dirname "$0")"

bench_smoke=0
for arg in "$@"; do
    case "$arg" in
    --bench-smoke) bench_smoke=1 ;;
    *)
        echo "unknown flag: $arg" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

if [ "$bench_smoke" = 1 ]; then
    echo "==> bench_pairwise --smoke"
    cargo run --release -p adalsh-bench --bin bench_pairwise -- --smoke
fi

echo "CI OK"
