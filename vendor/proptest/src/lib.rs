//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! `prop_assert*` / `prop_assume`, range and tuple strategies,
//! `prop_map`, `prop::collection::{vec, btree_set}`, `prop::option::of`,
//! `prop::bool::ANY`, and `any::<T>()` for primitives. Cases are drawn
//! from a deterministic per-test RNG. Failing inputs are reported via
//! panic message; there is **no shrinking** — failures print the attempt
//! number so a run can be reproduced under a debugger.

pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Input rejected by `prop_assume!` — retried, not a failure.
        Reject(String),
        /// Assertion failure — aborts the whole test.
        Fail(String),
    }

    /// Deterministic per-test RNG, seeded from the test's name.
    pub fn new_rng(test_name: &str) -> rand::rngs::StdRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        rand::rngs::StdRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::SampleRange;

    /// A generator of values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn gen_value(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.gen_value(rng))
        }
    }

    /// Always produces a clone of the given value.
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            self.clone().sample_from(rng)
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            self.clone().sample_from(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident, $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A, 0);
        (A, 0, B, 1);
        (A, 0, B, 1, C, 2);
        (A, 0, B, 1, C, 2, D, 3);
        (A, 0, B, 1, C, 2, D, 3, E, 4);
    }

    /// Fair coin (`prop::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn gen_value(&self, rng: &mut StdRng) -> bool {
            use rand::Rng;
            rng.random()
        }
    }

    /// `prop::option::of` combinator.
    pub struct OptionStrategy<S> {
        pub(crate) inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Option<S::Value> {
            use rand::Rng;
            if rng.random_bool(0.7) {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        fn sample_any(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn sample_any(rng: &mut StdRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut StdRng) -> T {
            T::sample_any(rng)
        }
    }

    /// Full-domain strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size bound accepted by the collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut StdRng) -> usize {
            rng.random_range(self.lo..self.hi_exclusive)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element`-generated values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s; may fall short of the sampled size when
    /// the element domain is too small to supply distinct values.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.gen_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The `prop::` namespace used inside test bodies.
pub mod prop {
    pub use crate::collection;

    pub mod bool {
        /// Fair-coin strategy.
        pub const ANY: crate::strategy::BoolAny = crate::strategy::BoolAny;
    }

    pub mod option {
        use crate::strategy::{OptionStrategy, Strategy};

        /// `Option` strategy: `Some` ~70% of the time.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::new_rng(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases {
                attempts += 1;
                if attempts > config.cases.saturating_mul(20).saturating_add(100) {
                    panic!(
                        "proptest stub: {} rejected too many inputs ({} attempts for {} cases)",
                        stringify!($name), attempts, config.cases
                    );
                }
                let ($($arg,)+) = (
                    $($crate::strategy::Strategy::gen_value(&($strat), &mut rng),)+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} failed on attempt {}: {}", stringify!($name), attempts, msg);
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u32..17, b in 0.25f64..=0.75, c in 1usize..=4) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..=0.75).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec(0u64..100, 2..8).prop_map(|mut v| { v.sort_unstable(); v }),
        ) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn tuples_and_options(
            pairs in prop::collection::vec((0usize..10, prop::option::of(1u32..5)), 0..20),
            flip in prop::bool::ANY,
            seed in any::<u64>(),
        ) {
            let _ = (flip, seed);
            for (i, o) in pairs {
                prop_assert!(i < 10);
                if let Some(x) = o {
                    prop_assert!((1..5).contains(&x));
                }
            }
        }

        #[test]
        fn btree_sets_are_bounded(s in prop::collection::btree_set(0u32..1000, 1..10)) {
            prop_assert!(!s.is_empty() && s.len() < 10);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::new_rng("x");
        let mut b = crate::test_runner::new_rng("x");
        let s = 0u64..1_000_000;
        for _ in 0..50 {
            assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
        }
    }
}
