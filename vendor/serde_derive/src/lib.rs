//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde` stub's `to_value`/`from_value` traits, without
//! `syn`/`quote` (unavailable offline): the item's `TokenStream` is walked
//! structurally and the generated impl is emitted as a parsed string.
//!
//! Supported shapes — exactly what this workspace derives on:
//! named-field structs (incl. `#[serde(flatten)]` fields), newtype
//! structs, and externally-tagged enums with unit, newtype, and
//! struct variants. Generic items are rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

struct Field {
    name: String,
    flatten: bool,
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    NewtypeStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, generate: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item)
            .parse()
            .expect("serde_derive stub generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---- parsing ---------------------------------------------------------

/// Consumes leading `#[...]` attributes; returns true if any of them was
/// `#[serde(flatten)]`.
fn take_attrs(iter: &mut TokenIter) -> bool {
    let mut flatten = false;
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        let Some(TokenTree::Group(group)) = iter.next() else {
            break;
        };
        let mut inner = group.stream().into_iter();
        let is_serde =
            matches!(inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        if let Some(TokenTree::Group(list)) = inner.next() {
            for tok in list.stream() {
                if matches!(&tok, TokenTree::Ident(id) if id.to_string() == "flatten") {
                    flatten = true;
                }
            }
        }
    }
    flatten
}

/// Consumes `pub` / `pub(...)` if present.
fn skip_vis(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        iter.next();
        if matches!(
            iter.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut iter = input.into_iter().peekable();
    take_attrs(&mut iter);
    skip_vis(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum keyword, got {other:?}")),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic item `{name}` is not supported"
        ));
    }
    match (keyword.as_str(), iter.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            if count_tuple_fields(g.stream()) != 1 {
                return Err(format!(
                    "serde_derive stub: tuple struct `{name}` must be a newtype"
                ));
            }
            Ok(Item::NewtypeStruct { name })
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            })
        }
        (kw, other) => Err(format!("unsupported item: {kw} followed by {other:?}")),
    }
}

/// Parses `name: Type, ...` fields, honouring `#[serde(flatten)]` and
/// skipping type tokens with angle-bracket awareness.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let flatten = take_attrs(&mut iter);
        skip_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field `{name}`, got {other:?}")),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = iter.next() {
            if let TokenTree::Punct(p) = &tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name, flatten });
    }
    Ok(fields)
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut segments = 0usize;
    let mut in_segment = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    in_segment = false;
                    continue;
                }
                _ => {}
            }
        }
        if !in_segment {
            segments += 1;
            in_segment = true;
        }
    }
    segments
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let Some(TokenTree::Group(g)) = iter.next() else {
                    unreachable!()
                };
                if count_tuple_fields(g.stream()) != 1 {
                    return Err(format!(
                        "serde_derive stub: variant `{name}` must be unit, newtype, or struct"
                    ));
                }
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let Some(TokenTree::Group(g)) = iter.next() else {
                    unreachable!()
                };
                VariantKind::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantKind::Unit,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- generation ------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut body = String::from(
                "let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                if f.flatten {
                    body.push_str(&format!(
                        "match ::serde::Serialize::to_value(&self.{0}) {{\n\
                         ::serde::Value::Map(inner) => m.extend(inner),\n\
                         other => m.push((String::from(\"{0}\"), other)),\n}}\n",
                        f.name
                    ));
                } else {
                    body.push_str(&format!(
                        "m.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                        f.name
                    ));
                }
            }
            body.push_str("::serde::Value::Map(m)");
            wrap_serialize(name, &body)
        }
        Item::NewtypeStruct { name } => {
            wrap_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{0} => ::serde::Value::Str(String::from(\"{0}\")),\n",
                        v.name
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "{name}::{0}(x) => ::serde::Value::Map(vec![(String::from(\"{0}\"), \
                         ::serde::Serialize::to_value(x))]),\n",
                        v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let bindings: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from(
                            "let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n",
                        );
                        for f in fields {
                            inner.push_str(&format!(
                                "m.push((String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{0} {{ {1} }} => {{\n{inner}\n\
                             ::serde::Value::Map(vec![(String::from(\"{0}\"), ::serde::Value::Map(m))])\n}}\n",
                            v.name,
                            bindings.join(", ")
                        ));
                    }
                }
            }
            wrap_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn wrap_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

/// Expression extracting field `fname` out of a map binding `entries`
/// (with the whole-value binding `whole` used for flattened fields).
fn field_extract(fname: &str, flatten: bool, whole: &str, entries: &str) -> String {
    if flatten {
        format!(
            "::serde::Deserialize::from_value({whole})\
             .map_err(|e| ::serde::Error::in_field(\"{fname}\", e))?"
        )
    } else {
        format!(
            "::serde::Deserialize::from_value({entries}.iter()\
             .find(|(k, _)| k == \"{fname}\").map(|(_, val)| val)\
             .unwrap_or(&::serde::Value::Null))\
             .map_err(|e| ::serde::Error::in_field(\"{fname}\", e))?"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut init = String::new();
            for f in fields {
                init.push_str(&format!(
                    "{}: {},\n",
                    f.name,
                    field_extract(&f.name, f.flatten, "v", "entries")
                ));
            }
            let body = format!(
                "let ::serde::Value::Map(entries) = v else {{\n\
                 return Err(::serde::Error::custom(\"expected map for struct {name}\"));\n}};\n\
                 let _ = &entries;\n\
                 Ok({name} {{\n{init}}})"
            );
            wrap_deserialize(name, &body)
        }
        Item::NewtypeStruct { name } => {
            wrap_deserialize(name, &format!("Ok({name}(::serde::Deserialize::from_value(v)?))"))
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{0}\" => Ok({name}::{0}),\n",
                        v.name
                    )),
                    VariantKind::Newtype => tagged_arms.push_str(&format!(
                        "\"{0}\" => Ok({name}::{0}(::serde::Deserialize::from_value(val)\
                         .map_err(|e| ::serde::Error::in_field(\"{0}\", e))?)),\n",
                        v.name
                    )),
                    VariantKind::Struct(fields) => {
                        let mut init = String::new();
                        for f in fields {
                            init.push_str(&format!(
                                "{}: {},\n",
                                f.name,
                                field_extract(&f.name, f.flatten, "val", "entries")
                            ));
                        }
                        tagged_arms.push_str(&format!(
                            "\"{0}\" => {{\n\
                             let ::serde::Value::Map(entries) = val else {{\n\
                             return Err(::serde::Error::custom(\"expected map for variant {0}\"));\n}};\n\
                             let _ = &entries;\n\
                             Ok({name}::{0} {{\n{init}}})\n}}\n",
                            v.name
                        ));
                    }
                }
            }
            let body = format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown unit variant `{{other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, val) = &entries[0];\n\
                 match tag.as_str() {{\n{tagged_arms}\
                 other => Err(::serde::Error::custom(format!(\
                 \"unknown variant `{{other}}` for {name}\"))),\n}}\n}}\n\
                 _ => Err(::serde::Error::custom(\"bad enum representation for {name}\")),\n}}"
            );
            wrap_deserialize(name, &body)
        }
    }
}

fn wrap_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
