//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! external `rand` dependency is satisfied by this vendored subset (wired
//! via `[patch.crates-io]`). It implements exactly the surface the
//! workspace uses — `StdRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range`, `shuffle`, and `choose_multiple` — on top of
//! xoshiro256++ seeded through splitmix64. Streams are deterministic per
//! seed but are NOT bit-compatible with upstream `rand`; nothing in this
//! repo persists or compares raw streams across library versions.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is offered).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (full-range integers, `[0, 1)` floats, fair bools).
    fn random<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from their "standard" distribution.
pub trait SampleStandard {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform range sampling.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)`. `hi > lo` required.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample in `[lo, hi]`. `hi >= lo` required.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = widening_mod(rng, span);
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = widening_mod(rng, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Near-uniform residue in `[0, span)` via 128-bit widening; the modulo
/// bias at these span sizes is far below anything the tests can detect.
fn widening_mod<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty sample range");
                let u = <$t as SampleStandard>::sample(rng);
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "empty sample range");
                let u = <$t as SampleStandard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Ranges acceptable to [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for upstream's
    /// `StdRng`; same role, different — but equally deterministic — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as xoshiro's authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random sampling without replacement from a slice.
    pub trait IndexedRandom {
        type Item;
        /// Chooses `amount` distinct elements (fewer if the slice is
        /// shorter), in random order.
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> IndexedRandom for [T] {
        type Item = T;
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: fix the first `amount` positions.
            for i in 0..amount {
                let j = rng.random_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_float_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let a: usize = rng.random_range(3..17);
            assert!((3..17).contains(&a));
            let b: u8 = rng.random_range(0..3);
            assert!(b < 3);
            let c: u64 = rng.random_range(5..=8);
            assert!((5..=8).contains(&c));
            let d: f64 = rng.random_range(0.6..1.4);
            assert!((0.6..1.4).contains(&d));
            let e: i32 = rng.random_range(-10..10);
            assert!((-10..10).contains(&e));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} out of line");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool: Vec<u64> = (0..100).collect();
        let picked: Vec<u64> = pool.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 10);
        // amount > len clamps
        assert_eq!(pool.choose_multiple(&mut rng, 500).count(), 100);
    }
}
