//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! stub's [`Value`] tree to JSON text and parses it back.
//!
//! Numbers parse to `U64` when non-negative and integral, `I64` when
//! negative and integral, `F64` otherwise — matching what the stub's
//! `Deserialize` impls accept. Full-range `u64` round-trips exactly.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.0)
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.message().to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
/// Fails on non-finite floats (JSON has no representation for them).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
/// Fails on non-finite floats.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses a JSON string into `T`.
///
/// # Errors
/// Fails on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(
    v: &Value,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float is not valid JSON"));
            }
            // `{}` prints integral floats without a dot; keep the dot so
            // the value parses back as F64-compatible (either way our
            // readers accept it).
            out.push_str(&format!("{x}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out)?;
            }
            if !items.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out)?;
            }
            if !entries.is_empty() {
                newline_indent(indent, depth, out);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected byte '{}' at {}",
                b as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            entries.push((key, self.parse_value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.checked_sub(0xDC00).ok_or_else(|| {
                                        Error::new("invalid low surrogate")
                                    })?);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
        let code = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if let Ok(signed) = i64::try_from(n) {
                        return Ok(Value::I64(-signed));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("bad number '{text}': {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
        let p = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<u32>>>(&p).unwrap(), v);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&s.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "\u{1F600}");
    }

    #[test]
    fn float_roundtrip_keeps_value() {
        for x in [0.25f64, -1.75e-3, 1e12, 0.1] {
            let s = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), x);
        }
        assert!(to_string(&f64::NAN).is_err());
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
