//! Offline stand-in for `serde`.
//!
//! Built for workspaces that cannot reach crates.io: a single
//! order-preserving [`Value`] tree plus `Serialize`/`Deserialize` traits
//! that convert to and from it. The derive macros (feature `derive`, from
//! the vendored `serde_derive`) cover the shapes this workspace uses:
//! named-field structs, newtype structs, and externally-tagged enums with
//! unit / newtype / struct variants, plus `#[serde(flatten)]` on struct
//! fields. `serde_json` renders [`Value`] to JSON text and back.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like document. Maps preserve insertion order, and
/// unsigned integers are kept exact across the full `u64` range (shingle
/// tokens use all 64 bits).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Serialization error (also reused for deserialization).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// Wraps `inner` with the field name that failed.
    pub fn in_field(field: &str, inner: Error) -> Self {
        Error(format!("{field}: {}", inner.0))
    }

    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`].
pub trait Deserialize: Sized {
    /// # Errors
    /// Fails when `v` does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(n).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(Error::custom("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident, $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => Ok(($(
                        $name::from_value(
                            items.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                        )?,
                    )+)),
                    _ => Err(Error::custom("expected sequence")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A, 0);
    (A, 0, B, 1);
    (A, 0, B, 1, C, 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_full_range_roundtrip() {
        let v = u64::MAX.to_value();
        assert_eq!(u64::from_value(&v).unwrap(), u64::MAX);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u32).to_value(), Value::U64(3));
    }

    #[test]
    fn map_preserves_order() {
        let v = Value::Map(vec![
            ("z".into(), Value::U64(1)),
            ("a".into(), Value::U64(2)),
        ]);
        assert_eq!(v.get("z"), Some(&Value::U64(1)));
        assert_eq!(v.get("a"), Some(&Value::U64(2)));
        assert_eq!(v.get("missing"), None);
    }
}
