//! Offline stand-in for `criterion`.
//!
//! Provides the same bench-authoring surface (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `bench_function`, `iter`,
//! `iter_batched`) with a simple calibrated timing loop instead of
//! criterion's statistical machinery: each benchmark is auto-scaled to a
//! target sample duration, run for several samples, and the best sample's
//! mean ns/iter is printed. Good enough to compare kernels before/after;
//! not a statistics suite.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded for display only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// How `iter_batched` amortizes setup (the stub treats all variants the
/// same: setup runs untimed before every routine invocation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
    target_sample: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_count: 5,
            target_sample: Duration::from_millis(60),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_count_override: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_count_override: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count_override = Some(n.clamp(2, 20));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            target_sample: self.criterion.target_sample,
            samples: self
                .sample_count_override
                .unwrap_or(self.criterion.sample_count),
            best_ns_per_iter: f64::INFINITY,
            iters_per_sample: 0,
        };
        f(&mut bencher);
        let label = format!("{}/{}", self.name, id);
        let ns = bencher.best_ns_per_iter;
        let per_sec = if ns > 0.0 { 1e9 / ns } else { f64::INFINITY };
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", per_sec * n as f64 / 1e6)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MiB/s)", per_sec * n as f64 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("bench  {label:<48} {:>14.1} ns/iter{extra}", ns);
        self
    }

    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; runs the measured loops.
pub struct Bencher {
    target_sample: Duration,
    samples: usize,
    /// Best (lowest-noise) observed mean, exposed via the printed report.
    best_ns_per_iter: f64,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.calibrate(|| {
            black_box(routine());
        });
        for _ in 0..self.samples {
            let iters = self.iters_per_sample;
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.record(start.elapsed(), iters);
        }
    }

    /// Times `routine` on inputs built (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate with a single timed run (setup excluded).
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample = (self.target_sample.as_nanos() / once.as_nanos()).clamp(1, 100_000);
        self.iters_per_sample = per_sample as u64;
        for _ in 0..self.samples {
            let mut total = Duration::ZERO;
            for _ in 0..self.iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.record(total, self.iters_per_sample);
        }
    }

    fn calibrate(&mut self, mut once: impl FnMut()) {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                once();
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample / 4 || iters >= 1 << 24 {
                let scale = (self.target_sample.as_nanos() as f64
                    / elapsed.as_nanos().max(1) as f64)
                    .clamp(1.0, 16.0);
                self.iters_per_sample = ((iters as f64) * scale).max(1.0) as u64;
                return;
            }
            iters *= 4;
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        let ns = elapsed.as_nanos() as f64 / iters.max(1) as f64;
        if ns < self.best_ns_per_iter {
            self.best_ns_per_iter = ns;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_iter_and_iter_batched() {
        let mut c = Criterion {
            sample_count: 2,
            target_sample: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(10));
        g.bench_function("iter", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
