//! Viral-image detection (the paper's copyright-monitoring motivation,
//! §1): find the most-shared images in a feed of transformed copies,
//! streaming results out as they are confirmed (incremental mode, §4.2).
//!
//! ```sh
//! cargo run --release --example viral_images
//! ```

use adalsh::datagen::popimages::{self, PopImagesConfig};
use adalsh::prelude::*;

fn main() {
    // 4000 "images" as RGB-histogram vectors; 250 originals shared with
    // Zipfian popularity; copies are crops/rescales ⇒ small angular
    // perturbations of the original's histogram.
    let feed = popimages::generate(&PopImagesConfig::default());
    // Two images match when their histograms are within 3 degrees.
    let rule = popimages::match_rule(3.0);
    let k = 5;
    println!(
        "feed: {} images, {} originals, most-shared has {} copies",
        feed.len(),
        feed.num_entities(),
        feed.entity_sizes()[0]
    );

    // Incremental mode: top entities are surfaced the moment they are
    // confirmed — the #1 viral image is available long before #5, with
    // the Largest-First guarantee (Theorem 2) that each prefix was
    // produced at minimum cost.
    let mut engine = AdaLsh::for_dataset(&feed, AdaLshConfig::new(rule.clone())).unwrap();
    println!("\nconfirmed viral images, in discovery order:");
    let start = std::time::Instant::now();
    let out = engine.run_incremental(&feed, k, |rank, cluster| {
        println!(
            "  t={:>9.3?}  #{:<2} confirmed: {} copies (e.g. image ids {:?} …)",
            start.elapsed(),
            rank + 1,
            cluster.len(),
            &cluster[..cluster.len().min(4)]
        );
    });

    // Accuracy against ground truth.
    let m = set_metrics(&out.records(), &feed.gold_records(k));
    println!(
        "\nF1 against ground truth: {:.3} ({} hash evals, {} pair comparisons)",
        m.f1, out.stats.hash_evals, out.stats.pair_comparisons
    );

    // Tighter thresholds are stricter about what counts as "the same
    // image" — and, as §7.4.2 observes, may split true entities.
    println!("\nthreshold sensitivity:");
    for deg in [2.0, 3.0, 5.0] {
        let rule = popimages::match_rule(deg);
        let mut engine = AdaLsh::for_dataset(&feed, AdaLshConfig::new(rule)).unwrap();
        let out = engine.run(&feed, k);
        let m = set_metrics(&out.records(), &feed.gold_records(k));
        println!("  {deg}°: F1 {:.3}, filtering time {:?}", m.f1, out.wall);
    }
}
