//! Quickstart: filter a small document collection down to its top-2
//! near-duplicate groups.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use adalsh::prelude::*;

fn main() {
    // Six "documents", tokenized and shingled. Two groups of
    // near-duplicates (a news story copied across sites, say) plus
    // unique noise documents.
    let docs = [
        "breaking storm hits the northern coast overnight",
        "storm hits the northern coast overnight causing floods",
        "breaking storm hits northern coast overnight",
        "local team wins the championship after dramatic final",
        "team wins championship after a dramatic final game",
        "recipe slow cooked lamb with rosemary and garlic",
        "review the quiet novel that surprised everyone this year",
    ];
    let schema = Schema::single("text", FieldKind::Shingles);
    let records: Vec<Record> = docs
        .iter()
        .map(|d| Record::single(FieldValue::Shingles(ShingleSet::word_shingles(d, 2))))
        .collect();
    // Ground truth (only used for evaluation, never by the filter).
    let ground_truth = vec![0, 0, 0, 1, 1, 2, 3];
    let dataset = Dataset::new(schema, records, ground_truth);

    // Two documents match when their bigram Jaccard distance is ≤ 0.75.
    let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.75);

    let mut engine =
        AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).expect("designable rule");
    println!(
        "designed a {}-function sequence with budgets {:?}",
        engine.num_levels(),
        engine
            .levels()
            .iter()
            .map(|l| l.budget())
            .collect::<Vec<_>>()
    );

    let out = engine.run(&dataset, 2);
    println!(
        "\ntop-2 groups found in {:?} ({} hash evals, {} pair comparisons):",
        out.wall, out.stats.hash_evals, out.stats.pair_comparisons
    );
    for (rank, cluster) in out.clusters.iter().enumerate() {
        println!("\n#{} ({} documents):", rank + 1, cluster.len());
        for &id in cluster {
            println!("   [{}] {}", id, docs[id as usize]);
        }
    }

    // How good was it, against the ground truth?
    let m = set_metrics(&out.records(), &dataset.gold_records(2));
    println!(
        "\nprecision {:.2}  recall {:.2}  F1 {:.2}",
        m.precision, m.recall, m.f1
    );
}
