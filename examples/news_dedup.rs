//! News-article dedup at corpus scale: find the k most-reproduced
//! stories (the paper's news-summary motivation, §1), compare adaLSH
//! against LSH blocking and exact pairwise resolution, then improve the
//! output with k̂ > k and recovery.
//!
//! ```sh
//! cargo run --release --example news_dedup
//! ```

use adalsh::datagen::spotsigs::{self, SpotSigsConfig};
use adalsh::prelude::*;

fn main() {
    // A SpotSigs-like corpus: ~1100 articles, 120 syndicated stories with
    // Zipfian popularity plus a long tail of unique articles.
    let corpus = spotsigs::generate(&SpotSigsConfig::default());
    let rule = spotsigs::match_rule(0.4); // Jaccard similarity ≥ 0.4
    let k = 5;
    println!(
        "corpus: {} articles, {} distinct stories, most-copied story has {} copies",
        corpus.len(),
        corpus.num_entities(),
        corpus.entity_sizes()[0]
    );

    // --- Three ways to find the top-5 stories --------------------------
    let gold = corpus.gold_records(k);
    let report = |name: &str, out: &FilterOutput| {
        let m = set_metrics(&out.records(), &gold);
        println!(
            "{name:>8}: {:>9.3?}  |O|={:<4} F1={:.3}  hashes={:<9} pairs={}",
            out.wall,
            out.records().len(),
            m.f1,
            out.stats.hash_evals,
            out.stats.pair_comparisons,
        );
    };

    let mut ada = AdaLsh::for_dataset(&corpus, AdaLshConfig::new(rule.clone())).unwrap();
    let ada_out = ada.run(&corpus, k);
    report("adaLSH", &ada_out);

    let lsh_out = LshBlocking::new(rule.clone(), 1280).filter(&corpus, k);
    report("LSH1280", &lsh_out);

    let pairs_out = Pairs::new(rule.clone()).filter(&corpus, k);
    report("Pairs", &pairs_out);

    // --- Improving recall: ask for more clusters (k̂ > k) ---------------
    println!("\nrecall vs k̂ (gold = top-{k} stories):");
    for khat in [k, k + 5, k + 10, k + 15] {
        let out = ada.run(&corpus, khat);
        let m = set_metrics(&out.records(), &gold);
        println!(
            "  k̂={khat:<3} recall={:.3} precision={:.3} output={:.1}% of corpus",
            m.recall,
            m.precision,
            100.0 * out.records().len() as f64 / corpus.len() as f64
        );
    }

    // --- Recovery: pull back records the filter missed ------------------
    let mut stats = Stats::default();
    let recovered = rule_recovery(&corpus, &rule, &ada_out.clusters, &mut stats);
    let rec_records: Vec<u32> = recovered.iter().flatten().copied().collect();
    let m = set_metrics(&rec_records, &gold);
    println!(
        "\nafter rule-based recovery: recall {:.3} (was {:.3}), {} extra comparisons",
        m.recall,
        set_metrics(&ada_out.records(), &gold).recall,
        stats.pair_comparisons
    );
}
