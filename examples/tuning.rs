//! Tuning tour: how the sequence design knobs change behaviour.
//!
//! Sweeps the budget strategy (§5.2), the constraint slack ε (§5.1), and
//! the cost-model noise factor (Appendix E.2) on one corpus, showing the
//! time/accuracy consequences of each knob.
//!
//! ```sh
//! cargo run --release --example tuning
//! ```

use adalsh::datagen::spotsigs::{self, SpotSigsConfig};
use adalsh::prelude::*;

fn run(corpus: &Dataset, cfg: AdaLshConfig, label: &str) {
    match AdaLsh::for_dataset(corpus, cfg) {
        Ok(mut engine) => {
            let out = engine.run(corpus, 10);
            let m = set_metrics(&out.records(), &corpus.gold_records(10));
            println!(
                "  {label:<26} L={} time={:>9.3?} hashes={:<9} F1={:.3}",
                engine.num_levels(),
                out.wall,
                out.stats.hash_evals,
                m.f1
            );
        }
        Err(e) => println!("  {label:<26} design failed: {e}"),
    }
}

fn main() {
    let corpus = spotsigs::generate(&SpotSigsConfig::default());
    let rule = spotsigs::match_rule(0.4);
    println!(
        "{} articles, top sizes {:?}",
        corpus.len(),
        &corpus.entity_sizes()[..3]
    );

    println!("\nbudget strategy (§5.2):");
    for (label, strategy) in [
        (
            "Exponential(20, ×2)",
            BudgetStrategy::Exponential {
                start: 20,
                factor: 2,
            },
        ),
        (
            "Exponential(40, ×2)",
            BudgetStrategy::Exponential {
                start: 40,
                factor: 2,
            },
        ),
        (
            "Exponential(20, ×4)",
            BudgetStrategy::Exponential {
                start: 20,
                factor: 4,
            },
        ),
        ("Linear(320)", BudgetStrategy::Linear { step: 320 }),
        ("Linear(640)", BudgetStrategy::Linear { step: 640 }),
    ] {
        let mut cfg = AdaLshConfig::new(rule.clone());
        cfg.spec.strategy = strategy;
        run(&corpus, cfg, label);
    }

    println!("\nconstraint slack ε (§5.1):");
    for eps in [1e-4, 1e-3, 1e-2, 5e-2] {
        let mut cfg = AdaLshConfig::new(rule.clone());
        cfg.spec.epsilon = eps;
        run(&corpus, cfg, &format!("ε = {eps}"));
    }

    println!("\ncost-model noise nf (Appendix E.2):");
    for nf in [0.2, 0.5, 1.0, 2.0, 5.0] {
        let mut cfg = AdaLshConfig::new(rule.clone());
        cfg.cost_noise = nf;
        run(&corpus, cfg, &format!("nf = {nf}"));
    }

    println!("\nselection strategy (Theorem 1 ablation):");
    for (label, sel) in [
        ("LargestFirst (paper)", SelectionStrategy::LargestFirst),
        ("SmallestFirst", SelectionStrategy::SmallestFirst),
        ("Random", SelectionStrategy::Random),
        ("Fifo", SelectionStrategy::Fifo),
    ] {
        let mut cfg = AdaLshConfig::new(rule.clone());
        cfg.selection = sel;
        run(&corpus, cfg, label);
    }
}
