//! Multi-field entity resolution on publication records (the paper's
//! Cora setup): records with `title`, `authors`, and `rest` fields,
//! matched by the combined rule of Appendix C.4 —
//! `avg-jaccard(title, authors) ≥ 0.7 AND jaccard(rest) ≥ 0.2`.
//!
//! ```sh
//! cargo run --release --example publications
//! ```

use adalsh::datagen::cora::{self, CoraConfig};
use adalsh::prelude::*;

fn main() {
    let (dataset, texts) = cora::generate(&CoraConfig::default());
    let rule = cora::match_rule();
    let k = 3;
    println!(
        "{} publication records, {} distinct publications",
        dataset.len(),
        dataset.num_entities()
    );

    let mut engine = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
    println!("\ndesigned AND-rule sequence (per-level budgets):");
    for (i, level) in engine.levels().iter().enumerate() {
        println!("  H{} = {:?}", i + 1, level);
    }

    let out = engine.run(&dataset, k);
    println!(
        "\ntop-{k} most-duplicated publications ({:?}, {} hash evals):",
        out.wall, out.stats.hash_evals
    );
    for (rank, cluster) in out.clusters.iter().enumerate() {
        let rep = &texts[cluster[0] as usize];
        println!("\n#{} — {} duplicate records", rank + 1, cluster.len());
        println!("    title:   {}", rep.title);
        println!("    authors: {}", rep.authors);
        println!("    rest:    {}", rep.rest);
        // Show one noisy variant to make the dedup problem tangible.
        if cluster.len() > 1 {
            let var = &texts[cluster[1] as usize];
            println!("    variant: {}", var.title);
        }
    }

    let m = set_metrics(&out.records(), &dataset.gold_records(k));
    println!(
        "\nprecision {:.3}  recall {:.3}  F1 {:.3}",
        m.precision, m.recall, m.f1
    );

    // The ranked-cluster view (mAP/mAR) weighs the top of the list more.
    let (map, mar) = map_mar(&out.clusters, &dataset.ground_truth_clusters(), k);
    println!("mAP {map:.3}  mAR {mar:.3}");
}
