//! # adalsh — Top-K Entity Resolution with Adaptive Locality-Sensitive Hashing
//!
//! A from-scratch implementation of the adaLSH filtering system: given a
//! dataset of records, find — fast — the records belonging to the `k`
//! largest entities, without resolving the whole dataset.
//!
//! ## Quickstart
//!
//! ```
//! use adalsh::prelude::*;
//!
//! // Records: shingle sets (e.g. hashed tokens of near-duplicate docs).
//! let schema = Schema::single("tokens", FieldKind::Shingles);
//! let mk = |v: &[u64]| Record::single(FieldValue::Shingles(ShingleSet::new(v.to_vec())));
//! let records = vec![
//!     mk(&[1, 2, 3, 4]), mk(&[1, 2, 3, 5]), mk(&[1, 2, 3, 6]), // entity A
//!     mk(&[10, 11, 12]), mk(&[10, 11, 13]),                    // entity B
//!     mk(&[100, 200]),                                         // noise
//! ];
//! let dataset = Dataset::new(schema, records, vec![0, 0, 0, 1, 1, 2]);
//!
//! // Match rule: Jaccard distance at most 0.5.
//! let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.5);
//!
//! // Filter for the top-1 entity.
//! let mut engine = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule)).unwrap();
//! let out = engine.run(&dataset, 1);
//! assert_eq!(out.clusters[0].len(), 3);
//! ```
//!
//! ## Crate map
//!
//! * [`data`] — records, fields, distances, match rules, datasets;
//! * [`lsh`] — hash families, AND/OR amplification, scheme optimizers;
//! * [`core`] — the adaLSH engine (Algorithm 1), baselines, metrics,
//!   recovery;
//! * [`datagen`] — synthetic Cora / SpotSigs / PopularImages-like
//!   generators used by the experiments.

pub use adalsh_core as core;
pub use adalsh_data as data;
pub use adalsh_datagen as datagen;
pub use adalsh_lsh as lsh;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::core::algorithm::{
        AdaLsh, AdaLshConfig, FilterMethod, FilterOutput, SelectionStrategy,
    };
    pub use crate::core::baselines::{LshBlocking, Pairs};
    pub use crate::core::metrics::{map_mar, set_metrics, SpeedupModel};
    pub use crate::core::recovery::{perfect_recovery, rule_recovery};
    pub use crate::core::sequence::{BudgetStrategy, SequenceSpec};
    pub use crate::core::Stats;
    pub use crate::data::{
        Dataset, DenseVector, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema,
        ShingleSet,
    };
}
