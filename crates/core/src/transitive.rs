//! Transitive hashing functions (paper Definition 1, Appendix B.2).
//!
//! Applying sequence function `Hᵢ` to a cluster `S` hashes every record
//! of `S` into `Hᵢ`'s tables and outputs one cluster per connected
//! component of the "shared a bucket" graph. Tables are **fresh per
//! invocation** (Appendix B.2) so clusters from different invocations can
//! never merge. Components are maintained with the parent-pointer
//! [`Forest`] using the four insertion cases of Figure 19:
//!
//! 1. bucket empty, record not yet in a tree → new singleton tree;
//! 2. bucket empty, record already in a tree → just record the occupant;
//! 3. bucket occupied, record not in a tree → attach the record as a new
//!    leaf of the occupant's tree;
//! 4. bucket occupied, record in a tree → merge the two trees under a new
//!    root (no-op if they are already the same tree).
//!
//! Bucket lookup starts from the record *last added* to the bucket — its
//! root path is the shortest (Appendix B.2) — which the map realizes by
//! always storing the most recent record per bucket.

use std::collections::HashMap;

use adalsh_data::{RecordStore, RecordView};
use adalsh_lsh::mix::combine;

use crate::hashing::{HashScratch, RecordHashState, SequenceHasher};
use crate::ppt::Forest;
use crate::stats::Stats;

/// Minimum estimated new hash evaluations before phase 1 fans out to
/// worker threads. Below this, thread spawn/join overhead (~tens of µs)
/// rivals the hashing itself; the estimate sums each record's
/// *remaining* budget `budget(H_to) − budget(H_reached)`, which is exact
/// for the classic scheme (every remaining slot is evaluated) and an
/// upper bound for DOPH.
const MIN_PARALLEL_EVALS: u64 = 1 << 15;

/// Applies sequence function `H_to_level` to `cluster` (record ids),
/// advancing each record's incremental hash state as needed, and returns
/// the output clusters (record-id lists). Records already at or past
/// `to_level` contribute their persisted keys without any hashing — the
/// normal case when a query re-runs over states advanced by an earlier
/// query (Property 4 across runs).
///
/// # Panics
/// Panics if `to_level` is out of range for the hasher.
pub fn apply_transitive(
    hasher: &SequenceHasher,
    states: &mut [RecordHashState],
    store: &dyn RecordStore,
    cluster: &[u32],
    to_level: usize,
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    apply_transitive_threaded(hasher, states, store, cluster, to_level, 1, stats)
}

/// Like [`apply_transitive`], hashing records on up to `threads` worker
/// threads. Hash evaluation is embarrassingly parallel (each record's
/// state is independent and the hasher is immutable after construction);
/// bucket insertion and cluster maintenance stay sequential — they are a
/// small fraction of the work for any non-trivial scheme. Clusters whose
/// estimated hashing work falls under `MIN_PARALLEL_EVALS` are
/// processed sequentially regardless of `threads`. Output and statistics
/// are identical to the sequential path.
///
/// The estimate and the chunking are both **remaining-work aware**:
/// records already at or past `to_level` cost nothing, partially
/// advanced records cost the budget delta. Workers receive contiguous
/// chunks of approximately equal estimated work rather than equal record
/// counts, so a cluster mixing fresh and already-hashed records (the
/// normal incremental-query shape) does not strand all the real work on
/// one thread.
pub fn apply_transitive_threaded(
    hasher: &SequenceHasher,
    states: &mut [RecordHashState],
    store: &dyn RecordStore,
    cluster: &[u32],
    to_level: usize,
    threads: usize,
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    stats.transitive_calls += 1;

    // Phase 1: advance every record's hash state to `to_level`.
    let threads = threads.max(1).min(cluster.len().max(1));
    let target_budget = hasher.level(to_level).budget();
    let remaining = |state: &RecordHashState| -> u64 {
        let reached = usize::from(state.level);
        if reached >= to_level {
            return 0;
        }
        let done = if reached == 0 {
            0
        } else {
            hasher.level(reached).budget()
        };
        target_budget.saturating_sub(done)
    };
    let costs: Vec<u64> = cluster
        .iter()
        .map(|&rid| remaining(&states[rid as usize]))
        .collect();
    let est_evals: u64 = costs.iter().sum();
    if threads == 1 || est_evals < MIN_PARALLEL_EVALS {
        let mut scratch = HashScratch::default();
        for &rid in cluster {
            hasher.advance_with_scratch(
                &RecordView::new(store, rid),
                &mut states[rid as usize],
                to_level,
                stats,
                &mut scratch,
            );
        }
    } else {
        // Pull the touched states out so each worker owns a disjoint
        // chunk; put them back afterwards.
        let mut owned: Vec<(u32, RecordHashState)> = cluster
            .iter()
            .map(|&rid| (rid, std::mem::take(&mut states[rid as usize])))
            .collect();
        // Cut `owned` into at most `threads` contiguous chunks carrying a
        // fair share of the remaining estimated work each: chunk `t` takes
        // records until it reaches `left / chunks_left` estimated evals
        // (recomputed per cut, so an oversized early chunk shrinks the
        // targets of later ones instead of starving the last thread).
        let per_thread: Vec<Stats> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut rest: &mut [(u32, RecordHashState)] = &mut owned;
            let mut cost_rest: &[u64] = &costs;
            let mut left = est_evals;
            for t in 0..threads {
                if rest.is_empty() {
                    break;
                }
                let chunks_left = (threads - t) as u64;
                let cut = if chunks_left == 1 {
                    rest.len()
                } else {
                    let target = left.div_ceil(chunks_left);
                    let mut acc = 0u64;
                    let mut cut = 0usize;
                    while cut < rest.len() && (cut == 0 || acc < target) {
                        acc += cost_rest[cut];
                        cut += 1;
                    }
                    left -= acc;
                    cut
                };
                let (chunk, tail) = rest.split_at_mut(cut);
                rest = tail;
                cost_rest = &cost_rest[cut..];
                handles.push(scope.spawn(move || {
                    let mut local = Stats::default();
                    let mut scratch = HashScratch::default();
                    for (rid, state) in chunk {
                        hasher.advance_with_scratch(
                            &RecordView::new(store, *rid),
                            state,
                            to_level,
                            &mut local,
                            &mut scratch,
                        );
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("hash worker panicked"))
                .collect()
        });
        for s in &per_thread {
            stats.merge(s);
        }
        for (rid, state) in owned {
            states[rid as usize] = state;
        }
    }

    // Phase 2: bucket insertion and component maintenance (sequential).
    let mut forest = Forest::new(cluster.len());
    // Fresh tables for this invocation: bucket → last-added record slot.
    let mut buckets: HashMap<u64, u32> = HashMap::with_capacity(cluster.len() * 2);

    for (slot, &rid) in cluster.iter().enumerate() {
        let slot = slot as u32;
        let state = &states[rid as usize];
        for (table_tag, key) in hasher.keys(state, to_level) {
            let bucket = combine(table_tag, key);
            stats.bucket_inserts += 1;
            match buckets.entry(bucket) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    // Cases 1 and 2.
                    if forest.leaf_of(slot).is_none() {
                        forest.add_singleton(slot);
                    }
                    v.insert(slot);
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let occupant = *o.get();
                    if occupant != slot {
                        let r2 = forest
                            .find_root_of_slot(occupant)
                            .expect("bucket occupants are always in a tree");
                        match forest.leaf_of(slot) {
                            // Case 3.
                            None => {
                                forest.attach_leaf(r2, slot);
                            }
                            // Case 4.
                            Some(leaf) => {
                                let r1 = forest.find_root(leaf);
                                if r1 != r2 {
                                    forest.merge_roots(r1, r2);
                                }
                            }
                        }
                        o.insert(slot);
                    }
                }
            }
        }
    }

    forest
        .clusters()
        .into_iter()
        .map(|slots| slots.into_iter().map(|s| cluster[s as usize]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::{HashPart, LevelScheme};
    use adalsh_data::{Dataset, FieldKind, FieldValue, Record, Schema, ShingleSet};

    /// Builds a dataset of shingle records from the raw sets.
    fn dataset(sets: &[&[u64]]) -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records = sets
            .iter()
            .map(|s| Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec()))))
            .collect();
        let gt = (0..sets.len() as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn hasher(levels: Vec<LevelScheme>) -> SequenceHasher {
        SequenceHasher::new(vec![HashPart::shingles(0, 77)], levels)
    }

    fn sorted(mut clusters: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        clusters.iter_mut().for_each(|c| c.sort_unstable());
        clusters.sort();
        clusters
    }

    #[test]
    fn identical_records_cluster_together() {
        let d = dataset(&[&[1, 2, 3], &[1, 2, 3], &[100, 200, 300]]);
        let h = hasher(vec![LevelScheme::Shared { ws: vec![2], z: 8 }]);
        let mut states = vec![RecordHashState::default(); d.len()];
        let mut st = Stats::default();
        let out = apply_transitive(&h, &mut states, &d, &[0, 1, 2], 1, &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1], vec![2]]);
        assert_eq!(st.transitive_calls, 1);
        assert!(st.hash_evals > 0 && st.bucket_inserts > 0);
    }

    #[test]
    fn all_disjoint_records_stay_singletons() {
        let sets: Vec<Vec<u64>> = (0..5)
            .map(|i| ((i * 100)..(i * 100 + 20)).collect())
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(|v| v.as_slice()).collect();
        let d = dataset(&refs);
        let h = hasher(vec![LevelScheme::Shared { ws: vec![4], z: 10 }]);
        let mut states = vec![RecordHashState::default(); d.len()];
        let mut st = Stats::default();
        let out = apply_transitive(&h, &mut states, &d, &[0, 1, 2, 3, 4], 1, &mut st);
        assert_eq!(out.len(), 5, "disjoint sets must not merge");
    }

    #[test]
    fn transitivity_chains_clusters() {
        // a ~ b (2/3 overlap), b ~ c (2/3 overlap), a ∩ c smaller: with a
        // permissive scheme all three should land in one cluster via b.
        let d = dataset(&[&[1, 2, 3], &[2, 3, 4], &[3, 4, 5]]);
        let h = hasher(vec![LevelScheme::Shared { ws: vec![1], z: 30 }]);
        let mut states = vec![RecordHashState::default(); d.len()];
        let mut st = Stats::default();
        let out = apply_transitive(&h, &mut states, &d, &[0, 1, 2], 1, &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn later_levels_split_coarse_clusters() {
        // Moderate overlap (1/3): a w=1,z=20 scheme merges them; a much
        // stricter w=16,z=4 scheme should split them apart.
        let d = dataset(&[&[1, 2, 3, 4], &[3, 4, 50, 60], &[1, 2, 3, 4]]);
        let levels = vec![
            LevelScheme::Shared { ws: vec![1], z: 20 },
            LevelScheme::Shared {
                ws: vec![16],
                z: 20,
            },
        ];
        let h = hasher(levels);
        let mut states = vec![RecordHashState::default(); d.len()];
        let mut st = Stats::default();
        let coarse = apply_transitive(&h, &mut states, &d, &[0, 1, 2], 1, &mut st);
        assert_eq!(sorted(coarse.clone()), vec![vec![0, 1, 2]]);
        // Apply the next level to the merged cluster.
        let merged = &coarse[0];
        let fine = apply_transitive(&h, &mut states, &d, merged, 2, &mut st);
        let fine = sorted(fine);
        assert!(
            fine.contains(&vec![0, 2]),
            "identical pair must stay together: {fine:?}"
        );
        assert_eq!(fine.len(), 2, "moderate-overlap record must split off");
    }

    #[test]
    fn invocations_use_fresh_tables() {
        // The same records processed in two separate invocations must not
        // see each other's buckets: process {0} then {1} — identical
        // records, but separate invocations, so two singleton outputs.
        let d = dataset(&[&[1, 2, 3], &[1, 2, 3]]);
        let h = hasher(vec![LevelScheme::Shared { ws: vec![2], z: 4 }]);
        let mut states = vec![RecordHashState::default(); d.len()];
        let mut st = Stats::default();
        let a = apply_transitive(&h, &mut states, &d, &[0], 1, &mut st);
        let b = apply_transitive(&h, &mut states, &d, &[1], 1, &mut st);
        assert_eq!(a, vec![vec![0]]);
        assert_eq!(b, vec![vec![1]]);
    }

    #[test]
    fn output_partitions_input() {
        let sets: Vec<Vec<u64>> = (0..20)
            .map(|i| vec![i / 3 * 10, i / 3 * 10 + 1, i])
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(|v| v.as_slice()).collect();
        let d = dataset(&refs);
        let ids: Vec<u32> = (0..20).collect();
        let h = hasher(vec![LevelScheme::Shared { ws: vec![2], z: 6 }]);
        let mut states = vec![RecordHashState::default(); d.len()];
        let mut st = Stats::default();
        let out = apply_transitive(&h, &mut states, &d, &ids, 1, &mut st);
        let mut all: Vec<u32> = out.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, ids, "output must partition the input exactly");
    }

    #[test]
    fn threaded_output_and_stats_identical_across_thread_counts() {
        // Large enough to clear MIN_PARALLEL_EVALS (budget 180/record ×
        // 300 records ≈ 54k evals), with half the records pre-advanced to
        // level 1 so the work-balanced chunking sees mixed per-record
        // costs. Output clusters and Stats must be identical at every
        // thread count.
        let sets: Vec<Vec<u64>> = (0..300)
            .map(|i| {
                let e = i / 10 * 1000;
                (0..40).map(|j| e + j + (i % 10) / 5).collect()
            })
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(|v| v.as_slice()).collect();
        let d = dataset(&refs);
        let ids: Vec<u32> = (0..300).collect();
        let levels = vec![
            LevelScheme::Shared { ws: vec![2], z: 30 },
            LevelScheme::Shared { ws: vec![3], z: 60 },
        ];
        let run = |threads: usize| {
            let h = hasher(levels.clone());
            let mut states = vec![RecordHashState::default(); d.len()];
            let mut st = Stats::default();
            // Pre-advance the even records to level 1 sequentially, so the
            // threaded call finds records at different levels.
            let evens: Vec<u32> = ids.iter().copied().filter(|i| i % 2 == 0).collect();
            apply_transitive(&h, &mut states, &d, &evens, 1, &mut st);
            let out = apply_transitive_threaded(&h, &mut states, &d, &ids, 2, threads, &mut st);
            (sorted(out), st, states)
        };
        let (out1, st1, states1) = run(1);
        for threads in [2, 3, 5, 8] {
            let (out, st, states) = run(threads);
            assert_eq!(out, out1, "clusters diverged at {threads} threads");
            assert_eq!(st, st1, "stats diverged at {threads} threads");
            assert_eq!(states, states1, "states diverged at {threads} threads");
        }
    }

    #[test]
    fn single_record_cluster() {
        let d = dataset(&[&[1, 2]]);
        let h = hasher(vec![LevelScheme::Shared { ws: vec![2], z: 3 }]);
        let mut states = vec![RecordHashState::default(); 1];
        let mut st = Stats::default();
        let out = apply_transitive(&h, &mut states, &d, &[0], 1, &mut st);
        assert_eq!(out, vec![vec![0]]);
    }
}
