//! Accuracy-improvement processes (paper §6.1.2, §6.2.1, §7.3).
//!
//! Two levers raise the filtering output's accuracy:
//!
//! 1. **Return more clusters** — run the filter with `k̂ > k` and
//!    evaluate against the top-`k` gold (handled by simply passing `k̂`
//!    to the filter; the experiments sweep it).
//! 2. **Recovery** — after ER on the filtering output, fetch records
//!    that were mistakenly excluded. The paper evaluates a *perfect*
//!    recovery (§6.2.1): for each entity referenced by an output record,
//!    collect *all* that entity's records from the whole dataset; its
//!    run time is modeled by the benchmark recovery algorithm
//!    ([`crate::metrics::SpeedupModel::recovery_time`]). A *rule-based*
//!    recovery is also provided for users without ground truth: every
//!    excluded record is compared against output-cluster members under
//!    the match rule.

use std::collections::HashSet;

use adalsh_data::{Dataset, MatchRule};

use crate::stats::Stats;

/// The paper's perfect recovery (§6.2.1): for each entity referenced by
/// any record in `output_records`, return that entity's complete
/// ground-truth cluster. Clusters are sorted by descending size (ties by
/// first record id).
///
/// If *all* records of a top-k entity were filtered out, that entity
/// cannot be recovered (§6.1.2's caveat) — it simply has no reference in
/// the output.
pub fn perfect_recovery(dataset: &Dataset, output_records: &[u32]) -> Vec<Vec<u32>> {
    let entities: HashSet<u32> = output_records
        .iter()
        .map(|&r| dataset.entity_of(r))
        .collect();
    let mut clusters: Vec<Vec<u32>> = dataset
        .ground_truth_clusters()
        .into_iter()
        .filter(|c| entities.contains(&dataset.entity_of(c[0])))
        .collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    clusters
}

/// The "perfect ER algorithm applied to the reduced dataset" of §6.2 /
/// §7.3.3: groups the *output records only* by their true entity —
/// unlike [`perfect_recovery`], no records outside the output are added.
/// This is the clustering whose mAP/mAR Figure 13 reports. Clusters are
/// sorted descending by size (ties by first record id).
pub fn perfect_er_on_output(dataset: &Dataset, output_records: &[u32]) -> Vec<Vec<u32>> {
    let mut by_entity: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for &r in output_records {
        by_entity.entry(dataset.entity_of(r)).or_default().push(r);
    }
    let mut clusters: Vec<Vec<u32>> = by_entity.into_values().collect();
    for c in &mut clusters {
        c.sort_unstable();
        c.dedup();
    }
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    clusters
}

/// Rule-based recovery: compares every excluded record against the
/// members of each output cluster (the benchmark recovery algorithm's
/// work, §6.2.2) and adds it to the first cluster containing a matching
/// record. Returns the augmented clusters (descending size) and counts
/// the comparisons in `stats`.
pub fn rule_recovery(
    dataset: &Dataset,
    rule: &MatchRule,
    clusters: &[Vec<u32>],
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    let included: HashSet<u32> = clusters.iter().flatten().copied().collect();
    let mut augmented: Vec<Vec<u32>> = clusters.to_vec();
    let per_pair = rule.num_elementary_distances() as u64;
    for r in 0..dataset.len() as u32 {
        if included.contains(&r) {
            continue;
        }
        'next_record: for cluster in &mut augmented {
            for i in 0..cluster.len() {
                let m = cluster[i];
                stats.pair_comparisons += 1;
                stats.distance_evals += per_pair;
                if rule.matches(dataset.record(r), dataset.record(m)) {
                    cluster.push(r);
                    break 'next_record;
                }
            }
        }
    }
    for c in &mut augmented {
        c.sort_unstable();
    }
    augmented.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    augmented
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    /// 3 entities: e0 = {0,1,2}, e1 = {3,4}, e2 = {5}; records of an
    /// entity share their shingles exactly.
    fn toy() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let mk = |v: &[u64]| Record::single(FieldValue::Shingles(ShingleSet::new(v.to_vec())));
        Dataset::new(
            schema,
            vec![
                mk(&[1, 2, 3]),
                mk(&[1, 2, 3]),
                mk(&[1, 2, 3]),
                mk(&[10, 11]),
                mk(&[10, 11]),
                mk(&[99]),
            ],
            vec![0, 0, 0, 1, 1, 2],
        )
    }

    #[test]
    fn perfect_recovery_completes_entities() {
        let d = toy();
        // Output missed records 2 and 4.
        let rec = perfect_recovery(&d, &[0, 1, 3]);
        assert_eq!(rec, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn perfect_recovery_cannot_resurrect_absent_entities() {
        let d = toy();
        let rec = perfect_recovery(&d, &[5]);
        assert_eq!(rec, vec![vec![5]]);
    }

    #[test]
    fn perfect_recovery_orders_by_size() {
        let d = toy();
        let rec = perfect_recovery(&d, &[3, 0]);
        assert_eq!(rec[0].len(), 3);
        assert_eq!(rec[1].len(), 2);
    }

    #[test]
    fn perfect_er_on_output_groups_only_output_records() {
        let d = toy();
        // Output holds parts of entities 0 and 1.
        let c = perfect_er_on_output(&d, &[0, 1, 3]);
        assert_eq!(c, vec![vec![0, 1], vec![3]]);
        // Unlike perfect_recovery, records 2 and 4 are NOT added.
    }

    #[test]
    fn perfect_er_on_output_dedups_and_ranks() {
        let d = toy();
        let c = perfect_er_on_output(&d, &[3, 4, 0, 0]);
        assert_eq!(c, vec![vec![3, 4], vec![0]]);
    }

    #[test]
    fn rule_recovery_pulls_in_matching_records() {
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let mut st = Stats::default();
        let rec = rule_recovery(&d, &rule, &[vec![0, 1], vec![3]], &mut st);
        assert_eq!(rec, vec![vec![0, 1, 2], vec![3, 4]]);
        assert!(st.pair_comparisons > 0);
    }

    #[test]
    fn rule_recovery_leaves_nonmatching_records_out() {
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let mut st = Stats::default();
        let rec = rule_recovery(&d, &rule, &[vec![0, 1, 2]], &mut st);
        // Records 3, 4, 5 don't match entity 0's shingles.
        assert_eq!(rec, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn rule_recovery_counts_comparisons() {
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.99);
        let mut st = Stats::default();
        // One output cluster {5}; excluded records 0..4 each compare once
        // (they all "match" at threshold 0.99? no: jaccard distance 1.0 >
        // 0.99 ⇒ no match ⇒ each compares against the single member).
        let _ = rule_recovery(&d, &rule, &[vec![5]], &mut st);
        assert_eq!(st.pair_comparisons, 5);
    }
}
