//! Accuracy-improvement processes (paper §6.1.2, §6.2.1, §7.3).
//!
//! Two levers raise the filtering output's accuracy:
//!
//! 1. **Return more clusters** — run the filter with `k̂ > k` and
//!    evaluate against the top-`k` gold (handled by simply passing `k̂`
//!    to the filter; the experiments sweep it).
//! 2. **Recovery** — after ER on the filtering output, fetch records
//!    that were mistakenly excluded. The paper evaluates a *perfect*
//!    recovery (§6.2.1): for each entity referenced by an output record,
//!    collect *all* that entity's records from the whole store; its
//!    run time is modeled by the benchmark recovery algorithm
//!    ([`crate::metrics::SpeedupModel::recovery_time`]). A *rule-based*
//!    recovery is also provided for users without ground truth: every
//!    excluded record is compared against output-cluster members under
//!    the match rule.

use std::collections::HashSet;

use adalsh_data::{MatchRule, RecordStore};
use adalsh_obs::TraceSink;

use crate::oracle::{emit_oracle_call, PairwiseOracle, SpendLedger};
use crate::stats::Stats;

/// The paper's perfect recovery (§6.2.1): for each entity referenced by
/// any record in `output_records`, return that entity's complete
/// ground-truth cluster. Clusters are sorted by descending size (ties by
/// first record id).
///
/// If *all* records of a top-k entity were filtered out, that entity
/// cannot be recovered (§6.1.2's caveat) — it simply has no reference in
/// the output.
pub fn perfect_recovery(store: &dyn RecordStore, output_records: &[u32]) -> Vec<Vec<u32>> {
    let entities: HashSet<u32> = output_records.iter().map(|&r| store.entity_of(r)).collect();
    let mut clusters: Vec<Vec<u32>> = store
        .ground_truth_clusters()
        .into_iter()
        .filter(|c| entities.contains(&store.entity_of(c[0])))
        .collect();
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    clusters
}

/// The "perfect ER algorithm applied to the reduced store" of §6.2 /
/// §7.3.3: groups the *output records only* by their true entity —
/// unlike [`perfect_recovery`], no records outside the output are added.
/// This is the clustering whose mAP/mAR Figure 13 reports. Clusters are
/// sorted descending by size (ties by first record id).
pub fn perfect_er_on_output(store: &dyn RecordStore, output_records: &[u32]) -> Vec<Vec<u32>> {
    let mut by_entity: std::collections::BTreeMap<u32, Vec<u32>> = Default::default();
    for &r in output_records {
        by_entity.entry(store.entity_of(r)).or_default().push(r);
    }
    let mut clusters: Vec<Vec<u32>> = by_entity.into_values().collect();
    for c in &mut clusters {
        c.sort_unstable();
        c.dedup();
    }
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    clusters
}

/// Rule-based recovery: compares every excluded record against the
/// members of each output cluster (the benchmark recovery algorithm's
/// work, §6.2.2) and adds it to the first cluster containing a matching
/// record. Returns the augmented clusters (descending size) and counts
/// the comparisons in `stats`.
pub fn rule_recovery(
    store: &dyn RecordStore,
    rule: &MatchRule,
    clusters: &[Vec<u32>],
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    let included: HashSet<u32> = clusters.iter().flatten().copied().collect();
    let mut augmented: Vec<Vec<u32>> = clusters.to_vec();
    let per_pair = rule.num_elementary_distances() as u64;
    for r in 0..store.len() as u32 {
        if included.contains(&r) {
            continue;
        }
        'next_record: for cluster in &mut augmented {
            for i in 0..cluster.len() {
                let m = cluster[i];
                stats.pair_comparisons += 1;
                stats.distance_evals += per_pair;
                if rule.matches_in(store, r, m) {
                    cluster.push(r);
                    break 'next_record;
                }
            }
        }
    }
    for c in &mut augmented {
        c.sort_unstable();
    }
    augmented.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    augmented
}

/// [`rule_recovery`] through a [`PairwiseOracle`]: every excluded-record
/// vs cluster-member comparison is one adjudication, settled through the
/// ledger **in the sequential scan order** (recovery is single-threaded,
/// so that order is the canonical one). Budget exhaustion degrades the
/// remaining comparisons to the cheap rule rather than aborting — under
/// a zero-noise oracle the output is identical to [`rule_recovery`]
/// regardless of budget, because the fallback *is* the rule.
///
/// One `oracle_call` trace event is emitted per settled comparison when
/// the sink is enabled (recovery runs outside engine run segments; the
/// event is segment-free by schema).
pub fn rule_recovery_oracle(
    store: &dyn RecordStore,
    oracle: &dyn PairwiseOracle,
    clusters: &[Vec<u32>],
    ledger: &mut SpendLedger,
    sink: &TraceSink,
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    let included: HashSet<u32> = clusters.iter().flatten().copied().collect();
    let mut augmented: Vec<Vec<u32>> = clusters.to_vec();
    let per_pair = oracle.num_elementary_distances() as u64;
    let traced = sink.enabled();
    for r in 0..store.len() as u32 {
        if included.contains(&r) {
            continue;
        }
        'next_record: for cluster in &mut augmented {
            for i in 0..cluster.len() {
                let m = cluster[i];
                stats.pair_comparisons += 1;
                stats.distance_evals += per_pair;
                let adj = oracle.adjudicate(store, r, m);
                let settled = ledger.settle(r, m, &adj);
                if traced {
                    emit_oracle_call(sink, &settled);
                }
                if settled.matched {
                    cluster.push(r);
                    break 'next_record;
                }
            }
        }
    }
    for c in &mut augmented {
        c.sort_unstable();
    }
    augmented.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    augmented
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    /// 3 entities: e0 = {0,1,2}, e1 = {3,4}, e2 = {5}; records of an
    /// entity share their shingles exactly.
    fn toy() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let mk = |v: &[u64]| Record::single(FieldValue::Shingles(ShingleSet::new(v.to_vec())));
        Dataset::new(
            schema,
            vec![
                mk(&[1, 2, 3]),
                mk(&[1, 2, 3]),
                mk(&[1, 2, 3]),
                mk(&[10, 11]),
                mk(&[10, 11]),
                mk(&[99]),
            ],
            vec![0, 0, 0, 1, 1, 2],
        )
    }

    #[test]
    fn perfect_recovery_completes_entities() {
        let d = toy();
        // Output missed records 2 and 4.
        let rec = perfect_recovery(&d, &[0, 1, 3]);
        assert_eq!(rec, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn perfect_recovery_cannot_resurrect_absent_entities() {
        let d = toy();
        let rec = perfect_recovery(&d, &[5]);
        assert_eq!(rec, vec![vec![5]]);
    }

    #[test]
    fn perfect_recovery_orders_by_size() {
        let d = toy();
        let rec = perfect_recovery(&d, &[3, 0]);
        assert_eq!(rec[0].len(), 3);
        assert_eq!(rec[1].len(), 2);
    }

    #[test]
    fn perfect_er_on_output_groups_only_output_records() {
        let d = toy();
        // Output holds parts of entities 0 and 1.
        let c = perfect_er_on_output(&d, &[0, 1, 3]);
        assert_eq!(c, vec![vec![0, 1], vec![3]]);
        // Unlike perfect_recovery, records 2 and 4 are NOT added.
    }

    #[test]
    fn perfect_er_on_output_dedups_and_ranks() {
        let d = toy();
        let c = perfect_er_on_output(&d, &[3, 4, 0, 0]);
        assert_eq!(c, vec![vec![3, 4], vec![0]]);
    }

    #[test]
    fn rule_recovery_pulls_in_matching_records() {
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let mut st = Stats::default();
        let rec = rule_recovery(&d, &rule, &[vec![0, 1], vec![3]], &mut st);
        assert_eq!(rec, vec![vec![0, 1, 2], vec![3, 4]]);
        assert!(st.pair_comparisons > 0);
    }

    #[test]
    fn rule_recovery_leaves_nonmatching_records_out() {
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let mut st = Stats::default();
        let rec = rule_recovery(&d, &rule, &[vec![0, 1, 2]], &mut st);
        // Records 3, 4, 5 don't match entity 0's shingles.
        assert_eq!(rec, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn rule_recovery_counts_comparisons() {
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.99);
        let mut st = Stats::default();
        // One output cluster {5}; excluded records 0..4 each compare once
        // (they all "match" at threshold 0.99? no: jaccard distance 1.0 >
        // 0.99 ⇒ no match ⇒ each compares against the single member).
        let _ = rule_recovery(&d, &rule, &[vec![5]], &mut st);
        assert_eq!(st.pair_comparisons, 5);
    }

    #[test]
    fn oracle_recovery_with_exact_oracle_equals_rule_recovery() {
        use crate::oracle::{ExactOracle, SpendLedger};
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let clusters = vec![vec![0, 1], vec![3]];
        let mut st_rule = Stats::default();
        let plain = rule_recovery(&d, &rule, &clusters, &mut st_rule);
        let oracle = ExactOracle::new(&rule);
        let mut ledger = SpendLedger::new(None);
        let mut st = Stats::default();
        let out = rule_recovery_oracle(
            &d,
            &oracle,
            &clusters,
            &mut ledger,
            &TraceSink::disabled(),
            &mut st,
        );
        assert_eq!(out, plain);
        assert_eq!(st, st_rule);
        assert_eq!(ledger.spend().spent, 0);
    }

    #[test]
    fn oracle_recovery_degrades_under_budget_and_stays_correct_at_zero_noise() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, SpendLedger};
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let clusters = vec![vec![0, 1], vec![3]];
        let cfg = NoisyOracleConfig {
            budget: Some(1),
            ..NoisyOracleConfig::default()
        };
        let oracle = NoisyOracle::new(&rule, cfg.clone());
        let mut ledger = SpendLedger::new(cfg.budget);
        let mut st = Stats::default();
        let out = rule_recovery_oracle(
            &d,
            &oracle,
            &clusters,
            &mut ledger,
            &TraceSink::disabled(),
            &mut st,
        );
        // Zero noise ⇒ the degraded fallback is the rule itself, so the
        // augmented clusters equal plain rule recovery.
        let mut st_rule = Stats::default();
        assert_eq!(out, rule_recovery(&d, &rule, &clusters, &mut st_rule));
        let spend = ledger.spend();
        assert_eq!(spend.spent, 1, "budget cap hit");
        assert!(spend.degraded > 0, "tail comparisons degraded");
        assert_eq!(spend.calls, st.pair_comparisons, "one settle per charge");
    }

    #[test]
    fn oracle_recovery_marks_degraded_verdicts_under_total_fault_injection() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, SpendLedger};
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let clusters = vec![vec![0, 1], vec![3]];
        // Every attempt faults: every settled comparison degrades to the
        // rule, and the run still completes with the right answer.
        let cfg = NoisyOracleConfig {
            fault_rate: 1.0,
            max_retries: 1,
            ..NoisyOracleConfig::default()
        };
        let oracle = NoisyOracle::new(&rule, cfg);
        let mut ledger = SpendLedger::new(None);
        let mut st = Stats::default();
        let out = rule_recovery_oracle(
            &d,
            &oracle,
            &clusters,
            &mut ledger,
            &TraceSink::disabled(),
            &mut st,
        );
        assert_eq!(out, vec![vec![0, 1, 2], vec![3, 4]]);
        let spend = ledger.spend();
        assert_eq!(spend.degraded, spend.calls, "every verdict was degraded");
        assert!(spend.retries > 0 && spend.timeouts + spend.transient_errors > 0);
    }

    #[test]
    fn oracle_recovery_empty_output_is_a_no_op() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, SpendLedger};
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        let oracle = NoisyOracle::new(&rule, NoisyOracleConfig::default());
        let mut ledger = SpendLedger::new(Some(10));
        let mut st = Stats::default();
        // No output clusters: nothing to compare against, nothing spent.
        let out = rule_recovery_oracle(
            &d,
            &oracle,
            &[],
            &mut ledger,
            &TraceSink::disabled(),
            &mut st,
        );
        assert!(out.is_empty());
        assert_eq!(st.pair_comparisons, 0);
        assert_eq!(ledger.spend().calls, 0);
    }

    #[test]
    fn oracle_recovery_cannot_resurrect_all_excluded_entities() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, SpendLedger};
        let d = toy();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.1);
        // Output holds only entity 2 ({5}); entities 0 and 1 are entirely
        // excluded. Their records compare against {5}, never match, and
        // no new cluster is created for them (§6.1.2's caveat).
        let oracle = NoisyOracle::new(&rule, NoisyOracleConfig::default());
        let mut ledger = SpendLedger::new(None);
        let mut st = Stats::default();
        let out = rule_recovery_oracle(
            &d,
            &oracle,
            &[vec![5]],
            &mut ledger,
            &TraceSink::disabled(),
            &mut st,
        );
        assert_eq!(out, vec![vec![5]]);
        assert_eq!(ledger.spend().calls, 5, "records 0..4 each settled once");
    }

    #[test]
    fn oracle_recovery_after_parallel_pairwise_is_thread_invariant() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, SpendLedger};
        use crate::pairwise::apply_pairwise_oracle;
        // Recovery itself is sequential; the determinism claim is about
        // the whole noisy pipeline — parallel oracle pairwise feeding
        // recovery must produce identical clusters and spend at any
        // thread count.
        let schema = adalsh_data::Schema::single("s", adalsh_data::FieldKind::Shingles);
        let mk =
            |v: Vec<u64>| adalsh_data::Record::single(FieldValue::Shingles(ShingleSet::new(v)));
        let records: Vec<_> = (0..24u64)
            .map(|i| mk((i / 4 * 10..i / 4 * 10 + 7).collect()))
            .collect();
        let gt = (0..24).map(|i| (i / 4) as u32).collect();
        let d = Dataset::new(schema, records, gt);
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
        let cfg = NoisyOracleConfig {
            false_match_rate: 0.1,
            false_non_match_rate: 0.1,
            fault_rate: 0.15,
            seed: 5,
            budget: Some(200),
            ..NoisyOracleConfig::default()
        };
        let ids: Vec<u32> = (0..16).collect(); // records 16..24 excluded
        let run = |threads: usize| {
            let oracle = NoisyOracle::new(&rule, cfg.clone());
            let mut ledger = SpendLedger::new(cfg.budget);
            let mut st = Stats::default();
            let sink = TraceSink::disabled();
            let (clusters, _) =
                apply_pairwise_oracle(&d, &oracle, &ids, threads, 64, &mut ledger, &sink, &mut st);
            let out = rule_recovery_oracle(&d, &oracle, &clusters, &mut ledger, &sink, &mut st);
            (out, st, ledger.into_spend())
        };
        let seq = run(1);
        for threads in [2usize, 4, 8] {
            assert_eq!(run(threads), seq, "threads={threads}");
        }
    }
}
