//! Operation counters shared by every filtering method.
//!
//! Wall-clock time depends on the machine; these counters are the
//! hardware-independent cost ledger the experiments report alongside it:
//! elementary hash evaluations (the unit of the paper's `costᵢ`) and
//! elementary distance computations (the unit of `cost_P`).

use serde::{Deserialize, Serialize};

/// Counters accumulated during a filtering run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Stats {
    /// Elementary hash-function evaluations (one per `(function, record)`
    /// application, before any AND/OR combination).
    pub hash_evals: u64,
    /// Elementary distance evaluations performed by the pairwise
    /// computation function `P` (one per field distance).
    pub distance_evals: u64,
    /// Record-pair comparisons performed by `P` (a comparison may cost
    /// several `distance_evals` under multi-field rules).
    pub pair_comparisons: u64,
    /// Hash-table bucket insertions.
    pub bucket_inserts: u64,
    /// Invocations of a transitive hashing function.
    pub transitive_calls: u64,
    /// Invocations of the pairwise computation function.
    pub pairwise_calls: u64,
    /// Rounds of the main loop (cluster selections).
    pub rounds: u64,
    /// Modeled cost in the units of the paper's Definition 3, accumulated
    /// with the active [`crate::cost::CostModel`].
    pub modeled_cost: f64,
}

impl Stats {
    /// Adds another stats block into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.hash_evals += other.hash_evals;
        self.distance_evals += other.distance_evals;
        self.pair_comparisons += other.pair_comparisons;
        self.bucket_inserts += other.bucket_inserts;
        self.transitive_calls += other.transitive_calls;
        self.pairwise_calls += other.pairwise_calls;
        self.rounds += other.rounds;
        self.modeled_cost += other.modeled_cost;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_fields() {
        let mut a = Stats {
            hash_evals: 1,
            distance_evals: 2,
            pair_comparisons: 3,
            bucket_inserts: 4,
            transitive_calls: 5,
            pairwise_calls: 6,
            rounds: 7,
            modeled_cost: 1.5,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.hash_evals, 2);
        assert_eq!(a.distance_evals, 4);
        assert_eq!(a.rounds, 14);
        assert!((a.modeled_cost - 3.0).abs() < 1e-12);
    }

    #[test]
    fn default_is_zero() {
        let s = Stats::default();
        assert_eq!(s.hash_evals, 0);
        assert_eq!(s.modeled_cost, 0.0);
    }
}
