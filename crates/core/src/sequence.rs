//! Designing the function sequence `H₁ … H_L` (paper §5).
//!
//! §5.2's two budget-selection strategies pick each function's total
//! hash-function budget; §5.1's Program (1)–(3) (and the Appendix-C
//! generalizations) pick the `(w, z)` shape for that budget. The designer
//! here walks a [`adalsh_data::MatchRule`], derives the elementary hash
//! parts, and solves the right program per level — threading the
//! monotonicity constraints `wᵢ ≤ wᵢ₊₁`, `zᵢ ≤ zᵢ₊₁` (§4.1 /
//! Appendix C.1's `w ≥ w′, u ≥ u′`) through so incremental computation
//! stays valid.
//!
//! Supported rule shapes (everything the paper's experiments use, and the
//! Appendix-C.4 combination of a weighted average under an AND):
//!
//! * `Threshold` — single-field scheme;
//! * `WeightedAverage` — single scheme over a Definition-7 part;
//! * `And([...])` of thresholds/weighted averages — shared-table scheme;
//! * `Or([a, b])` of two thresholds/weighted averages — per-part tables.

use adalsh_data::{FieldDistance, MatchRule, Schema};
use adalsh_lsh::mix::derive_seed;
use adalsh_lsh::multifield::{optimize_and2, optimize_or2, FieldSpec};
use adalsh_lsh::scheme::WzScheme;

use crate::hashing::{HashPart, LevelScheme};

/// §5.2 budget-selection strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetStrategy {
    /// Budget multiplies by `factor` per level (`start, start·f, …`).
    /// The paper's default: start 20, factor 2.
    Exponential {
        /// Budget of `H₁`.
        start: u64,
        /// Per-level multiplier.
        factor: u64,
    },
    /// Budget grows by a constant `step` (`step, 2·step, 3·step, …`).
    Linear {
        /// Budget of `H₁` and the per-level increment.
        step: u64,
    },
}

impl BudgetStrategy {
    /// The paper's default mode: Exponential starting at 20 hash
    /// functions, doubling each level (§6.1.1).
    pub fn default_exponential() -> Self {
        BudgetStrategy::Exponential {
            start: 20,
            factor: 2,
        }
    }

    /// Budget of sequence function `Hᵢ` (`i` is 1-based).
    ///
    /// # Panics
    /// Panics if `i == 0`.
    pub fn budget(&self, i: usize) -> u64 {
        assert!(i >= 1, "levels are 1-based");
        match *self {
            BudgetStrategy::Exponential { start, factor } => {
                start.saturating_mul(factor.saturating_pow(i as u32 - 1))
            }
            BudgetStrategy::Linear { step } => step.saturating_mul(i as u64),
        }
    }
}

/// Designer inputs beyond the rule itself.
#[derive(Debug, Clone, Copy)]
pub struct SequenceSpec {
    /// Constraint-(3) slack `ε` (paper Example 5 uses 0.001).
    pub epsilon: f64,
    /// Budget schedule.
    pub strategy: BudgetStrategy,
    /// Design levels until the budget reaches/exceeds this value.
    pub max_budget: u64,
    /// Seed for the hash parts.
    pub seed: u64,
}

impl Default for SequenceSpec {
    fn default() -> Self {
        Self {
            epsilon: 1e-3,
            strategy: BudgetStrategy::default_exponential(),
            max_budget: 2560,
            seed: 0x5EED,
        }
    }
}

/// A designed sequence: the elementary parts and per-level schemes, ready
/// for [`crate::hashing::SequenceHasher::new`].
#[derive(Debug)]
pub struct DesignedSequence {
    /// Elementary hash sources, one per rule part.
    pub parts: Vec<HashPart>,
    /// Scheme of every sequence function, in order.
    pub levels: Vec<LevelScheme>,
}

/// Normalized view of the rule for scheme design.
enum RuleShape {
    /// One elementary part with one threshold.
    Single { dthr: f64 },
    /// Shared tables over several parts (AND rule), per-part thresholds.
    And { dthrs: Vec<f64> },
    /// Per-part tables (OR rule), per-part thresholds.
    Or { dthrs: Vec<f64> },
}

fn linear_p(x: f64) -> f64 {
    1.0 - x
}

/// Designs the sequence for `rule` against `schema`.
///
/// `dense_dims[f]` must give the vector dimension of every dense field
/// `f` referenced by the rule (ignored entries may be 0).
pub fn design(
    rule: &MatchRule,
    schema: &Schema,
    dense_dims: &[usize],
    spec: &SequenceSpec,
) -> Result<DesignedSequence, String> {
    rule.validate(schema)?;

    // Leaf-part builder with resolved dims.
    let build_leaf = |r: &MatchRule, seed: u64| -> Result<(HashPart, f64), String> {
        match r {
            MatchRule::Threshold {
                field,
                metric: FieldDistance::Angular,
                dthr,
            } => {
                let dim = *dense_dims
                    .get(*field)
                    .filter(|&&d| d > 0)
                    .ok_or_else(|| format!("missing dense dim for field {field}"))?;
                Ok((HashPart::dense(*field, dim, seed), *dthr))
            }
            MatchRule::Threshold {
                field,
                metric: FieldDistance::Jaccard,
                dthr,
            } => Ok((HashPart::shingles(*field, seed), *dthr)),
            MatchRule::WeightedAverage { parts, dthr } => {
                let comps: Vec<(usize, FieldDistance, f64)> = parts
                    .iter()
                    .map(|p| (p.field, p.metric, p.weight))
                    .collect();
                let dims: Vec<usize> = parts
                    .iter()
                    .map(|p| dense_dims.get(p.field).copied().unwrap_or(0))
                    .collect();
                Ok((HashPart::weighted(&comps, &dims, seed), *dthr))
            }
            other => Err(format!("not a leaf rule: {other:?}")),
        }
    };

    // Normalize the rule shape.
    let (parts, shape): (Vec<HashPart>, RuleShape) = match rule {
        MatchRule::Threshold { .. } | MatchRule::WeightedAverage { .. } => {
            let (part, dthr) = build_leaf(rule, derive_seed(spec.seed, 0))?;
            (vec![part], RuleShape::Single { dthr })
        }
        MatchRule::And(children) => {
            let mut parts = Vec::new();
            let mut dthrs = Vec::new();
            for (i, child) in children.iter().enumerate() {
                let (part, dthr) = build_leaf(child, derive_seed(spec.seed, i as u64))?;
                parts.push(part);
                dthrs.push(dthr);
            }
            if parts.len() == 1 {
                (parts, RuleShape::Single { dthr: dthrs[0] })
            } else if parts.len() == 2 {
                (parts, RuleShape::And { dthrs })
            } else {
                return Err("AND rules with more than two parts are not supported; \
                            combine fields with a weighted average first (Appendix C.4)"
                    .into());
            }
        }
        MatchRule::Or(children) => {
            let mut parts = Vec::new();
            let mut dthrs = Vec::new();
            for (i, child) in children.iter().enumerate() {
                let (part, dthr) = build_leaf(child, derive_seed(spec.seed, i as u64))?;
                parts.push(part);
                dthrs.push(dthr);
            }
            if parts.len() == 1 {
                (parts, RuleShape::Single { dthr: dthrs[0] })
            } else if parts.len() == 2 {
                (parts, RuleShape::Or { dthrs })
            } else {
                return Err("OR rules with more than two parts are not supported".into());
            }
        }
    };

    // Walk the budget schedule.
    let mut levels: Vec<LevelScheme> = Vec::new();
    let mut i = 1usize;
    loop {
        let budget = spec.strategy.budget(i);
        let scheme = match &shape {
            RuleShape::Single { dthr } => {
                let (min_w, min_z) = match levels.last() {
                    Some(LevelScheme::Shared { ws, z }) => (ws[0], *z),
                    _ => (1, 1),
                };
                single_scheme_le(budget, *dthr, spec.epsilon, min_w, min_z).map(|s| {
                    LevelScheme::Shared {
                        ws: vec![s.w],
                        z: s.z,
                    }
                })
            }
            RuleShape::And { dthrs } => {
                let (min_ws, min_z) = match levels.last() {
                    Some(LevelScheme::Shared { ws, z }) => ([ws[0], ws[1]], *z),
                    _ => ([1, 1], 1),
                };
                let fields = [
                    FieldSpec {
                        dthr: dthrs[0],
                        p: &linear_p,
                    },
                    FieldSpec {
                        dthr: dthrs[1],
                        p: &linear_p,
                    },
                ];
                // Program (4)–(6) needs (w+u) | budget; if the exact budget
                // is unlucky, retreat a little.
                let mut found = None;
                let floor = levels
                    .last()
                    .map(|l| l.budget() + 1)
                    .unwrap_or(2)
                    .max(budget.saturating_sub(budget / 8));
                let mut b = budget;
                while b >= floor {
                    if let Some(s) = optimize_and2(b, &fields, spec.epsilon, min_ws, min_z) {
                        found = Some(LevelScheme::Shared { ws: s.ws, z: s.z });
                        break;
                    }
                    b -= 1;
                }
                found
            }
            RuleShape::Or { dthrs } => {
                match levels.last() {
                    None => {
                        // First level: full Program (7)–(10) search.
                        let fields = [
                            FieldSpec {
                                dthr: dthrs[0],
                                p: &linear_p,
                            },
                            FieldSpec {
                                dthr: dthrs[1],
                                p: &linear_p,
                            },
                        ];
                        optimize_or2(budget, &fields, spec.epsilon, [(1, 1), (1, 1)])
                            .map(|s| LevelScheme::PerPart { parts: s.parts })
                    }
                    Some(LevelScheme::PerPart { parts: prev }) => {
                        // Later levels: keep the budget split proportional
                        // to the first level's and grow each part under
                        // its own monotonicity constraints.
                        let prev_total: u64 = prev.iter().map(WzScheme::budget).sum();
                        let mut grown = Vec::with_capacity(prev.len());
                        for (p, prev_s) in prev.iter().enumerate() {
                            let share = (budget as f64 * prev_s.budget() as f64 / prev_total as f64)
                                .round() as u64;
                            let s = single_scheme_le(
                                share.max(prev_s.budget()),
                                dthrs[p],
                                spec.epsilon,
                                prev_s.w,
                                prev_s.z,
                            );
                            match s {
                                Some(s) => grown.push(s),
                                None => {
                                    grown.clear();
                                    break;
                                }
                            }
                        }
                        (!grown.is_empty()).then_some(LevelScheme::PerPart { parts: grown })
                    }
                    Some(LevelScheme::Shared { .. }) => unreachable!("shape is uniform"),
                }
            }
        };
        match scheme {
            Some(s) => {
                if let Some(prev) = levels.last() {
                    debug_assert!(s.extends(prev), "designer produced a shrinking level");
                }
                levels.push(s);
            }
            None if levels.is_empty() => {
                // H₁'s budget can be too small to satisfy constraint (3);
                // skip ahead to the first feasible budget.
                if budget > spec.max_budget {
                    return Err(format!(
                        "no feasible scheme up to max_budget {}",
                        spec.max_budget
                    ));
                }
            }
            None => {
                return Err(format!(
                    "level {i} (budget {budget}) became infeasible after a feasible prefix"
                ));
            }
        }
        if budget >= spec.max_budget {
            break;
        }
        i += 1;
    }
    if levels.is_empty() {
        return Err("empty sequence design".into());
    }
    Ok(DesignedSequence { parts, levels })
}

/// Largest feasible `w` with `z = ⌊budget/w⌋`, honoring `w ≥ min_w`,
/// `z ≥ min_z` — the §5.1 selection adapted to the `w·z ≤ budget` form
/// (monotonicity-safe for any budget schedule).
fn single_scheme_le(
    budget: u64,
    dthr: f64,
    epsilon: f64,
    min_w: u32,
    min_z: u32,
) -> Option<WzScheme> {
    let p_thr = linear_p(dthr);
    let feasible = |w: u32, z: u32| -> bool {
        1.0 - (1.0 - p_thr.powi(w as i32)).powi(z as i32) >= 1.0 - epsilon
    };
    let mut best: Option<WzScheme> = None;
    let mut w = min_w.max(1);
    while u64::from(w) <= budget {
        let z = (budget / u64::from(w)) as u32;
        if z < min_z.max(1) {
            break;
        }
        if !feasible(w, z) {
            break; // monotone: larger w only gets worse
        }
        best = Some(WzScheme::new(w, z));
        w += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::FieldKind;

    fn shingle_schema() -> Schema {
        Schema::single("s", FieldKind::Shingles)
    }

    #[test]
    fn exponential_budgets() {
        let s = BudgetStrategy::default_exponential();
        assert_eq!(s.budget(1), 20);
        assert_eq!(s.budget(2), 40);
        assert_eq!(s.budget(3), 80);
        assert_eq!(s.budget(5), 320);
    }

    #[test]
    fn linear_budgets() {
        let s = BudgetStrategy::Linear { step: 100 };
        assert_eq!(s.budget(1), 100);
        assert_eq!(s.budget(2), 200);
        assert_eq!(s.budget(3), 300);
    }

    #[test]
    fn single_field_design_monotone() {
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
        let spec = SequenceSpec {
            max_budget: 640,
            ..SequenceSpec::default()
        };
        let d = design(&rule, &shingle_schema(), &[0], &spec).expect("design");
        assert!(d.levels.len() >= 4, "20→640 doubles at least 5 times");
        for pair in d.levels.windows(2) {
            assert!(pair[1].extends(&pair[0]));
            assert!(pair[1].budget() > pair[0].budget());
        }
        // Budgets approximately follow the schedule (≤ budget, ≥ 3/4).
        for (i, lvl) in d.levels.iter().enumerate() {
            let target = spec.strategy.budget(i + 1);
            assert!(lvl.budget() <= target);
            assert!(lvl.budget() * 4 >= target * 3, "budget underuse at {i}");
        }
    }

    #[test]
    fn later_levels_are_sharper() {
        // w must grow along the sequence for a Jaccard threshold of 0.4.
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
        let spec = SequenceSpec {
            max_budget: 1280,
            ..SequenceSpec::default()
        };
        let d = design(&rule, &shingle_schema(), &[0], &spec).unwrap();
        let first_w = match &d.levels[0] {
            LevelScheme::Shared { ws, .. } => ws[0],
            _ => unreachable!(),
        };
        let last_w = match d.levels.last().unwrap() {
            LevelScheme::Shared { ws, .. } => ws[0],
            _ => unreachable!(),
        };
        assert!(last_w > first_w, "{first_w} vs {last_w}");
    }

    #[test]
    fn and_rule_design() {
        let schema = Schema::new(vec![("a", FieldKind::Shingles), ("b", FieldKind::Shingles)]);
        let rule = MatchRule::And(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.3),
            MatchRule::threshold(1, FieldDistance::Jaccard, 0.8),
        ]);
        let spec = SequenceSpec {
            max_budget: 320,
            ..SequenceSpec::default()
        };
        let d = design(&rule, &schema, &[0, 0], &spec).expect("design");
        assert_eq!(d.parts.len(), 2);
        for lvl in &d.levels {
            match lvl {
                LevelScheme::Shared { ws, z } => {
                    assert_eq!(ws.len(), 2);
                    assert!(*z >= 1);
                }
                _ => panic!("AND must use shared tables"),
            }
        }
        for pair in d.levels.windows(2) {
            assert!(pair[1].extends(&pair[0]));
        }
    }

    #[test]
    fn or_rule_design() {
        let schema = Schema::new(vec![("a", FieldKind::Shingles), ("b", FieldKind::Shingles)]);
        let rule = MatchRule::Or(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.3),
            MatchRule::threshold(1, FieldDistance::Jaccard, 0.2),
        ]);
        let spec = SequenceSpec {
            max_budget: 320,
            ..SequenceSpec::default()
        };
        let d = design(&rule, &schema, &[0, 0], &spec).expect("design");
        for lvl in &d.levels {
            assert!(matches!(lvl, LevelScheme::PerPart { parts } if parts.len() == 2));
        }
        for pair in d.levels.windows(2) {
            assert!(pair[1].extends(&pair[0]));
        }
    }

    #[test]
    fn weighted_average_design() {
        use adalsh_data::rule::WeightedPart;
        let schema = Schema::new(vec![("a", FieldKind::Shingles), ("b", FieldKind::Shingles)]);
        let rule = MatchRule::WeightedAverage {
            parts: vec![
                WeightedPart {
                    field: 0,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
                WeightedPart {
                    field: 1,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
            ],
            dthr: 0.3,
        };
        let spec = SequenceSpec {
            max_budget: 160,
            ..SequenceSpec::default()
        };
        let d = design(&rule, &schema, &[0, 0], &spec).expect("design");
        assert_eq!(d.parts.len(), 1, "weighted average is one part");
        assert!(matches!(d.parts[0], HashPart::Weighted { .. }));
    }

    #[test]
    fn angular_rule_needs_dims() {
        let schema = Schema::single("v", FieldKind::Dense);
        let rule = MatchRule::threshold(0, FieldDistance::Angular, 3.0 / 180.0);
        let spec = SequenceSpec::default();
        assert!(design(&rule, &schema, &[0], &spec).is_err());
        let d = design(&rule, &schema, &[64], &spec).expect("with dims");
        assert!(!d.levels.is_empty());
    }

    #[test]
    fn three_part_and_rejected() {
        let schema = Schema::new(vec![
            ("a", FieldKind::Shingles),
            ("b", FieldKind::Shingles),
            ("c", FieldKind::Shingles),
        ]);
        let rule = MatchRule::And(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.3),
            MatchRule::threshold(1, FieldDistance::Jaccard, 0.3),
            MatchRule::threshold(2, FieldDistance::Jaccard, 0.3),
        ]);
        assert!(design(&rule, &schema, &[0, 0, 0], &SequenceSpec::default()).is_err());
    }

    #[test]
    fn single_scheme_le_respects_bounds() {
        let s = single_scheme_le(100, 0.4, 0.01, 2, 5).unwrap();
        assert!(s.w >= 2 && s.z >= 5);
        assert!(s.budget() <= 100);
        // Infeasible when min_z forces too few functions per table…
        // actually min_z large keeps z high which HELPS feasibility; an
        // infeasible case is a tiny budget with strict epsilon:
        assert!(single_scheme_le(2, 0.5, 1e-12, 1, 1).is_none());
    }
}
