//! # adalsh-core
//!
//! Adaptive LSH top-k entity-resolution filtering (the paper's primary
//! contribution), plus its baselines, accuracy metrics, and recovery
//! processes.
//!
//! The central entry point is [`algorithm::AdaLsh`], implementing
//! Algorithm 1: a sequence of transitive hashing functions of increasing
//! accuracy/cost is applied adaptively — the largest unresolved cluster
//! is processed each round, jumping to exact pairwise computation when a
//! cost model says hashing stopped paying — until the `k` largest
//! clusters are trustworthy.
//!
//! Module map (paper section in parentheses):
//!
//! * [`ppt`] — parent-pointer trees (App. B.1–B.2)
//! * [`bins`] — bin-based largest-cluster index (App. B.1, B.4)
//! * [`hashing`] — incremental per-record hashing state (§2.2 P4, App. B.2)
//! * [`transitive`] — transitive hashing functions (Def. 1)
//! * [`pairwise`] — pairwise computation function `P` (Def. 2, App. B.3)
//! * [`cost`] — cost model (Def. 3, App. E.2)
//! * [`sequence`] — budget strategies and sequence design (§5)
//! * [`algorithm`] — Algorithm 1, incremental mode, selection ablations (§4)
//! * [`baselines`] — Pairs and LSH-X blocking baselines (§6.1.1, App. E.1)
//! * [`metrics`] — accuracy/performance metrics (§6.2)
//! * [`oracle`] — pluggable noisy/fault-injected pairwise adjudication
//! * [`recovery`] — k̂ > k output and recovery processes (§6.1.2)
//! * [`stats`] — operation counters

pub mod algorithm;
pub mod baselines;
pub mod bins;
pub mod cost;
pub mod hashing;
pub mod metrics;
pub mod online;
pub mod oracle;
pub mod pairwise;
pub mod ppt;
pub mod recovery;
pub mod sequence;
pub mod stats;
pub mod transitive;

pub use adalsh_lsh::MinhashScheme;
pub use adalsh_obs::TraceSink;
pub use algorithm::{AdaLsh, AdaLshConfig, FilterOutput, SelectionStrategy};
pub use baselines::{LshBlocking, Pairs};
pub use cost::CostModel;
pub use online::{OnlineAdaLsh, OnlineSnapshot};
pub use oracle::{
    Adjudication, ExactOracle, NoisyOracle, NoisyOracleConfig, OracleMode, OracleSpend,
    PairwiseOracle, SpendLedger, VerdictOverlay,
};
pub use pairwise::PairwiseTrace;
pub use sequence::{design, BudgetStrategy, SequenceSpec};
pub use stats::Stats;
