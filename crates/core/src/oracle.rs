//! Pluggable pairwise adjudication oracles (ROADMAP item 4).
//!
//! The paper treats the pairwise function `P` as the expensive, fallible
//! stage that adaptive LSH exists to shield — a crowdsourced judge in
//! Mazumdar & Saha's setting, an LLM call in the in-context clustering
//! one. This module generalizes today's free, exact [`MatchRule`] path
//! into a [`PairwiseOracle`] trait and supplies two implementations:
//!
//! * [`ExactOracle`] — the rule itself: one attempt, zero spend, no
//!   faults. Wrapping the exact path keeps one code shape for both.
//! * [`NoisyOracle`] — the rule plus a **deterministic** error model
//!   (false-match / false-non-match rates), a modeled latency/cost
//!   model, and injectable faults (timeouts, transient errors, hangs).
//!
//! # Determinism contract
//!
//! Every adjudication outcome is a *pure function* of the oracle seed
//! and the unordered record-id pair: noise, faults, retry jitter, and
//! vote draws all derive from `derive_seed(seed, pair)` chains
//! ([`adalsh_lsh::mix`]), never from wall clocks or thread identity.
//! Latency is **modeled** (accumulated simulated microseconds; a hang is
//! a call whose modeled latency blows past the deadline), so tests run
//! fast and replay bit-identically. Speculative parallel evaluation is
//! therefore safe: workers may adjudicate the same pair in any order on
//! any thread and always obtain the same [`Adjudication`].
//!
//! # Resilience layer
//!
//! One adjudication internally runs a slot of bounded retries with
//! exponential backoff + deterministic jitter under a per-adjudication
//! modeled deadline; a low-confidence verdict (noise draw within the
//! confidence margin of the flip threshold) triggers odd-`n`
//! majority-vote re-adjudication. If every retry faults or the deadline
//! expires, the slot *degrades locally*: the cheap rule's verdict is
//! used and the call is marked degraded rather than aborting the run.
//!
//! # Budgets and the ledger
//!
//! Spend accounting is split from sampling on purpose. Adjudications are
//! computed speculatively (possibly in parallel), but **budget charging
//! and budget-driven degradation happen only in [`SpendLedger::settle`],
//! called from the sequential canonical fold order** — exactly where
//! `Stats` charges happen today. That makes verdicts, clusters, `Stats`,
//! and the oracle spend bit-identical across thread counts, block sizes,
//! and retry schedules. A settled call that would exceed the budget
//! falls back to the cheap rule for free and is counted degraded.
//!
//! Oracle counters live in [`OracleSpend`], **not** in
//! [`crate::stats::Stats`]: the zero-noise noisy path must stay
//! bit-identical to the exact path in `Stats`, and it does because the
//! ledger is a separate book.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use adalsh_data::{MatchRule, RecordStore};
use adalsh_lsh::mix::derive_seed;
use adalsh_obs::{TraceSink, Value};
use serde::{Deserialize, Serialize};

/// Upper bound on individually-tracked degraded pairs in a ledger (the
/// counters keep counting past it; only the id list is capped, so a
/// pathological run cannot balloon the ledger).
pub const DEGRADED_PAIR_TRACK_CAP: usize = 1024;

/// Which oracle adjudicates pairwise verdicts in an engine run.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum OracleMode {
    /// The match rule itself: free, exact, infallible — today's path,
    /// byte-for-byte.
    #[default]
    Exact,
    /// A [`NoisyOracle`] built from this configuration, with a
    /// per-run [`SpendLedger`] enforcing its budget.
    Noisy(NoisyOracleConfig),
}

/// Configuration of a [`NoisyOracle`]: error model, fault injection,
/// latency/cost model, and the resilience-layer knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct NoisyOracleConfig {
    /// Probability a true non-match is reported as a match.
    pub false_match_rate: f64,
    /// Probability a true match is reported as a non-match.
    pub false_non_match_rate: f64,
    /// Per-attempt probability of an injected fault (split evenly into
    /// timeouts and transient errors on an independent seeded bit).
    pub fault_rate: f64,
    /// Per-attempt probability of a hang: the call never returns and is
    /// reaped by the deadline (modeled latency 10× the timeout; counted
    /// as a timeout).
    pub hang_rate: f64,
    /// Seed all per-pair randomness derives from.
    pub seed: u64,
    /// Majority-vote width for low-confidence verdicts (forced odd).
    pub votes: u32,
    /// Bounded retries per adjudication slot beyond the first attempt.
    pub max_retries: u32,
    /// Modeled per-call timeout in microseconds.
    pub timeout_micros: u64,
    /// Modeled latency of one successful call in microseconds.
    pub latency_micros: u64,
    /// Modeled per-adjudication deadline across all its attempts; once
    /// the accumulated modeled clock passes it, remaining slots degrade
    /// instead of retrying.
    pub deadline_micros: u64,
    /// Spend units charged per call attempt (including faulted attempts
    /// and vote calls).
    pub cost_per_call: u64,
    /// Total spend budget for one run's ledger; `None` = unlimited.
    pub budget: Option<u64>,
    /// Chaos-test hook: adjudicating any pair touching this record id
    /// panics, simulating an oracle client crashing the resolver thread.
    /// Never set outside fault-injection tests.
    pub panic_on_record: Option<u32>,
}

impl Default for NoisyOracleConfig {
    fn default() -> Self {
        Self {
            false_match_rate: 0.0,
            false_non_match_rate: 0.0,
            fault_rate: 0.0,
            hang_rate: 0.0,
            seed: 42,
            votes: 3,
            max_retries: 3,
            timeout_micros: 50_000,
            latency_micros: 1_000,
            deadline_micros: 400_000,
            cost_per_call: 1,
            budget: None,
            panic_on_record: None,
        }
    }
}

/// The outcome of adjudicating one record pair — a pure function of
/// (oracle seed, unordered pair), so it may be computed speculatively on
/// any thread. Budget is *not* applied here; see [`SpendLedger::settle`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Adjudication {
    /// The oracle's verdict after retries and majority voting.
    pub matched: bool,
    /// The cheap rule's verdict (the degradation fallback; for
    /// [`ExactOracle`] it equals `matched`).
    pub rule_matched: bool,
    /// Total call attempts, including faulted attempts and vote calls.
    pub attempts: u64,
    /// Attempts that were retries after a fault.
    pub retries: u64,
    /// Majority-vote calls triggered by a low-confidence first verdict.
    pub votes: u64,
    /// Attempts that timed out (including hangs reaped by the deadline).
    pub timeouts: u64,
    /// Attempts that failed with a transient error.
    pub transient_errors: u64,
    /// True when some slot exhausted its retries or deadline and fell
    /// back to the cheap rule.
    pub degraded: bool,
    /// Spend units consumed by all attempts.
    pub spend: u64,
    /// Modeled wall time of the whole adjudication in microseconds.
    pub latency_micros: u64,
}

/// A pairwise adjudicator: given a record pair, produce a match verdict
/// plus its cost/fault accounting. Implementations must be deterministic
/// in `(a, b)` and safe to call concurrently ([`Sync`]) — the wavefront
/// evaluates blocks speculatively on worker threads.
pub trait PairwiseOracle: Sync {
    /// Adjudicates the unordered pair `(a, b)` of record ids.
    fn adjudicate(&self, store: &dyn RecordStore, a: u32, b: u32) -> Adjudication;

    /// Elementary distance computations per adjudicated pair, charged to
    /// `Stats::distance_evals` exactly like the rule-based path.
    fn num_elementary_distances(&self) -> usize;
}

/// The exact oracle: the match rule, verbatim. One attempt, zero spend,
/// zero faults — wrapping lets rule-based call sites share the oracle
/// code shape while staying bit-identical to the direct path.
pub struct ExactOracle<'r> {
    rule: &'r MatchRule,
}

impl<'r> ExactOracle<'r> {
    /// Wraps a match rule.
    pub fn new(rule: &'r MatchRule) -> Self {
        Self { rule }
    }
}

impl PairwiseOracle for ExactOracle<'_> {
    fn adjudicate(&self, store: &dyn RecordStore, a: u32, b: u32) -> Adjudication {
        let matched = self.rule.matches_in(store, a, b);
        Adjudication {
            matched,
            rule_matched: matched,
            attempts: 1,
            ..Adjudication::default()
        }
    }

    fn num_elementary_distances(&self) -> usize {
        self.rule.num_elementary_distances()
    }
}

/// A fault-injected noisy judge around a match rule. See the module docs
/// for the determinism contract and resilience semantics.
pub struct NoisyOracle<'r> {
    rule: &'r MatchRule,
    cfg: NoisyOracleConfig,
    overlay: Option<Arc<VerdictOverlay>>,
}

impl<'r> NoisyOracle<'r> {
    /// Builds a noisy oracle over `rule` (the rule supplies the ground
    /// verdict that noise is applied to, and the degradation fallback).
    pub fn new(rule: &'r MatchRule, cfg: NoisyOracleConfig) -> Self {
        Self {
            rule,
            cfg,
            overlay: None,
        }
    }

    /// Attaches an external-verdict overlay, consulted before any noise
    /// is sampled: an overlay verdict is authoritative and costs nothing
    /// (the external judge already paid).
    pub fn with_overlay(mut self, overlay: Option<Arc<VerdictOverlay>>) -> Self {
        self.overlay = overlay;
        self
    }

    /// One adjudication slot: bounded retries with exponential backoff +
    /// deterministic jitter under the shared modeled deadline. Returns
    /// `(verdict, low_confidence)`; on retry/deadline exhaustion the
    /// slot degrades to the cheap rule's verdict.
    fn call_slot(
        &self,
        pair_seed: u64,
        slot: u64,
        truth: bool,
        adj: &mut Adjudication,
    ) -> (bool, bool) {
        let slot_seed = derive_seed(pair_seed, slot);
        for attempt in 0..=self.cfg.max_retries as u64 {
            if attempt > 0 && adj.latency_micros >= self.cfg.deadline_micros {
                break; // deadline expired mid-slot: stop retrying
            }
            let attempt_seed = derive_seed(slot_seed, attempt);
            adj.attempts += 1;
            adj.spend += self.cfg.cost_per_call;
            if attempt > 0 {
                adj.retries += 1;
                // Exponential backoff with deterministic jitter, modeled.
                let base = self.cfg.latency_micros.max(1);
                let backoff = base.saturating_mul(1 << attempt.min(20));
                let jitter = derive_seed(attempt_seed, 0xB0FF) % base;
                adj.latency_micros = adj.latency_micros.saturating_add(backoff + jitter);
            }
            let fault = unit(derive_seed(attempt_seed, 1));
            if fault < self.cfg.hang_rate {
                // Hang: the call never returns; the deadline reaps it.
                adj.timeouts += 1;
                adj.latency_micros = adj
                    .latency_micros
                    .saturating_add(self.cfg.timeout_micros.saturating_mul(10));
                continue;
            }
            if fault < self.cfg.hang_rate + self.cfg.fault_rate {
                if derive_seed(attempt_seed, 2) & 1 == 0 {
                    adj.timeouts += 1;
                    adj.latency_micros = adj.latency_micros.saturating_add(self.cfg.timeout_micros);
                } else {
                    adj.transient_errors += 1;
                    adj.latency_micros = adj.latency_micros.saturating_add(self.cfg.latency_micros);
                }
                continue;
            }
            // Successful call: modeled latency plus a noisy verdict. A
            // draw inside the confidence margin (within 2× beyond the
            // flip region) is low-confidence and triggers re-voting.
            adj.latency_micros = adj.latency_micros.saturating_add(self.cfg.latency_micros);
            let noise = unit(derive_seed(attempt_seed, 3));
            let rate = if truth {
                self.cfg.false_non_match_rate
            } else {
                self.cfg.false_match_rate
            };
            let verdict = if noise < rate { !truth } else { truth };
            let low_confidence = rate > 0.0 && noise < (3.0 * rate).min(0.5);
            return (verdict, low_confidence);
        }
        // Every retry faulted (or the deadline expired): degrade the
        // slot to the cheap rule instead of failing the run.
        adj.degraded = true;
        (truth, false)
    }
}

impl PairwiseOracle for NoisyOracle<'_> {
    fn adjudicate(&self, store: &dyn RecordStore, a: u32, b: u32) -> Adjudication {
        if let Some(target) = self.cfg.panic_on_record {
            if a == target || b == target {
                panic!("injected oracle fault: adjudication touching record {target}");
            }
        }
        let truth = self.rule.matches_in(store, a, b);
        let mut adj = Adjudication {
            rule_matched: truth,
            ..Adjudication::default()
        };
        if let Some(overlay) = &self.overlay {
            if let Some(verdict) = overlay.get(a, b) {
                // Authoritative external verdict: zero attempts, zero spend.
                adj.matched = verdict;
                return adj;
            }
        }
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let pair_seed = derive_seed(derive_seed(self.cfg.seed, lo as u64), hi as u64);
        let (first, low_confidence) = self.call_slot(pair_seed, 0, truth, &mut adj);
        let mut verdict = first;
        if low_confidence {
            let n = (self.cfg.votes | 1).max(1);
            let mut ayes = 0u32;
            for vote in 0..n {
                let (v, _) = self.call_slot(pair_seed, 1 + vote as u64, truth, &mut adj);
                adj.votes += 1;
                if v {
                    ayes += 1;
                }
            }
            verdict = 2 * ayes > n;
        }
        adj.matched = verdict;
        adj
    }

    fn num_elementary_distances(&self) -> usize {
        self.rule.num_elementary_distances()
    }
}

/// Maps a mixed 64-bit seed to a unit float in `[0, 1)` (53 mantissa
/// bits, the standard shift construction).
fn unit(seed: u64) -> f64 {
    (seed >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Cumulative oracle accounting for one run — deliberately **outside**
/// [`crate::stats::Stats`] so the zero-noise noisy path stays
/// bit-identical to the exact path in `Stats`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OracleSpend {
    /// Pairs settled through the ledger (charged pairs only; speculative
    /// evaluations folded away are never settled).
    pub calls: u64,
    /// Total call attempts across settled pairs.
    pub attempts: u64,
    /// Retry attempts across settled pairs.
    pub retries: u64,
    /// Majority-vote calls across settled pairs.
    pub votes: u64,
    /// Timed-out attempts (including hangs reaped by the deadline).
    pub timeouts: u64,
    /// Transient-error attempts.
    pub transient_errors: u64,
    /// Pairs answered by the cheap-rule fallback (retry/deadline
    /// exhaustion or budget exhaustion).
    pub degraded: u64,
    /// Spend units consumed.
    pub spent: u64,
    /// Modeled oracle wall time in microseconds.
    pub latency_micros: u64,
    /// The budget this ledger enforced (`None` = unlimited).
    pub budget: Option<u64>,
    /// Record-id pairs that were settled degraded, capped at
    /// [`DEGRADED_PAIR_TRACK_CAP`] (counters keep counting past the cap).
    pub degraded_pairs: Vec<(u32, u32)>,
}

/// One settled (budget-applied) oracle call, as folded into the forest
/// and emitted as an `oracle_call` trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SettledCall {
    /// The verdict actually applied to the forest.
    pub matched: bool,
    /// True when this pair was answered by the cheap-rule fallback.
    pub degraded: bool,
    /// Attempts charged (0 when the budget forced a free fallback).
    pub attempts: u64,
    /// Retries charged.
    pub retries: u64,
    /// Vote calls charged.
    pub votes: u64,
    /// Timeouts charged.
    pub timeouts: u64,
    /// Transient errors charged.
    pub transient_errors: u64,
    /// Spend units charged.
    pub spend: u64,
    /// Modeled latency charged in microseconds.
    pub latency_micros: u64,
}

/// The per-run spend book. All budget decisions happen here, in the
/// sequential canonical fold order, which is what makes oracle runs
/// bit-identical across thread counts (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct SpendLedger {
    spend: OracleSpend,
}

impl SpendLedger {
    /// A fresh ledger enforcing `budget` (`None` = unlimited).
    pub fn new(budget: Option<u64>) -> Self {
        Self {
            spend: OracleSpend {
                budget,
                ..OracleSpend::default()
            },
        }
    }

    /// Remaining budget, if one is set.
    pub fn remaining(&self) -> Option<u64> {
        self.spend
            .budget
            .map(|b| b.saturating_sub(self.spend.spent))
    }

    /// Settles one adjudication for the unordered pair `(a, b)`: charges
    /// its spend if the budget allows, otherwise degrades the pair to
    /// the cheap rule's free verdict. **Must be called in the canonical
    /// fold order** — the budget cutoff point is order-dependent, and the
    /// canonical order is what every thread count replays identically.
    pub fn settle(&mut self, a: u32, b: u32, adj: &Adjudication) -> SettledCall {
        let over_budget = self
            .spend
            .budget
            .is_some_and(|b| self.spend.spent.saturating_add(adj.spend) > b);
        let settled = if over_budget {
            SettledCall {
                matched: adj.rule_matched,
                degraded: true,
                attempts: 0,
                retries: 0,
                votes: 0,
                timeouts: 0,
                transient_errors: 0,
                spend: 0,
                latency_micros: 0,
            }
        } else {
            SettledCall {
                matched: adj.matched,
                degraded: adj.degraded,
                attempts: adj.attempts,
                retries: adj.retries,
                votes: adj.votes,
                timeouts: adj.timeouts,
                transient_errors: adj.transient_errors,
                spend: adj.spend,
                latency_micros: adj.latency_micros,
            }
        };
        self.spend.calls += 1;
        self.spend.attempts += settled.attempts;
        self.spend.retries += settled.retries;
        self.spend.votes += settled.votes;
        self.spend.timeouts += settled.timeouts;
        self.spend.transient_errors += settled.transient_errors;
        self.spend.spent += settled.spend;
        self.spend.latency_micros += settled.latency_micros;
        if settled.degraded {
            self.spend.degraded += 1;
            if self.spend.degraded_pairs.len() < DEGRADED_PAIR_TRACK_CAP {
                let pair = if a <= b { (a, b) } else { (b, a) };
                self.spend.degraded_pairs.push(pair);
            }
        }
        settled
    }

    /// The cumulative spend so far.
    pub fn spend(&self) -> &OracleSpend {
        &self.spend
    }

    /// Consumes the ledger into its cumulative spend.
    pub fn into_spend(self) -> OracleSpend {
        self.spend
    }
}

/// Emits one `oracle_call` trace event for a settled call. Emission
/// happens at settle time — the sequential canonical fold — so event
/// order is deterministic and the per-segment sums reconcile exactly
/// with the ledger (`Σ oracle_call.spend = run_end.oracle_spent`, etc).
pub fn emit_oracle_call(sink: &TraceSink, settled: &SettledCall) {
    sink.emit(
        "oracle_call",
        &[
            ("attempts", Value::U64(settled.attempts)),
            ("retries", Value::U64(settled.retries)),
            ("votes", Value::U64(settled.votes)),
            ("timeouts", Value::U64(settled.timeouts)),
            ("errors", Value::U64(settled.transient_errors)),
            ("spend", Value::U64(settled.spend)),
            ("degraded", Value::U64(u64::from(settled.degraded))),
            ("matched", Value::U64(u64::from(settled.matched))),
            ("latency_micros", Value::U64(settled.latency_micros)),
        ],
    );
}

/// External verdicts posted by an out-of-band judge (the serve layer's
/// `POST /adjudicate`), consulted by [`NoisyOracle`] before any noise is
/// sampled. Versioned so resolve caches can detect overlay changes.
///
/// Overlay verdicts are external input: two runs only replay identically
/// when they see the same overlay contents (the same caveat as the
/// record stream itself).
#[derive(Debug, Default)]
pub struct VerdictOverlay {
    version: AtomicU64,
    verdicts: Mutex<HashMap<(u32, u32), bool>>,
}

impl VerdictOverlay {
    /// An empty overlay at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The authoritative verdict for the unordered pair, if one was
    /// posted.
    pub fn get(&self, a: u32, b: u32) -> Option<bool> {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.lock().get(&key).copied()
    }

    /// Posts (or replaces) a verdict, bumping the overlay version.
    /// Returns the new version.
    pub fn set(&self, a: u32, b: u32, matched: bool) -> u64 {
        let key = if a <= b { (a, b) } else { (b, a) };
        self.lock().insert(key, matched);
        self.version.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Monotone counter bumped on every [`VerdictOverlay::set`].
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::SeqCst)
    }

    /// Number of posted verdicts.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no verdict was ever posted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<(u32, u32), bool>> {
        // A panic while holding this mutex cannot leave partial state
        // (single-map insert/read), so poisoning is ignorable.
        self.verdicts.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn dataset(sets: &[&[u64]]) -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records = sets
            .iter()
            .map(|s| Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec()))))
            .collect();
        let gt = (0..sets.len() as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn rule() -> MatchRule {
        MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
    }

    /// Records 0,1 match; record 2 matches neither.
    fn toy() -> Dataset {
        dataset(&[&[1, 2, 3, 4], &[1, 2, 3, 5], &[100, 200, 300]])
    }

    #[test]
    fn exact_oracle_mirrors_the_rule() {
        let d = toy();
        let r = rule();
        let o = ExactOracle::new(&r);
        let adj = o.adjudicate(&d, 0, 1);
        assert!(adj.matched && adj.rule_matched);
        assert_eq!(adj.attempts, 1);
        assert_eq!(adj.spend, 0);
        assert!(!o.adjudicate(&d, 0, 2).matched);
        assert_eq!(o.num_elementary_distances(), r.num_elementary_distances());
    }

    #[test]
    fn zero_noise_noisy_oracle_equals_the_rule() {
        let d = toy();
        let r = rule();
        let o = NoisyOracle::new(&r, NoisyOracleConfig::default());
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            let adj = o.adjudicate(&d, a, b);
            assert_eq!(adj.matched, r.matches_in(&d, a, b), "pair ({a},{b})");
            assert_eq!(adj.attempts, 1);
            assert_eq!(adj.retries, 0);
            assert_eq!(adj.votes, 0);
            assert!(!adj.degraded);
            assert_eq!(adj.spend, 1);
        }
    }

    #[test]
    fn adjudication_is_pure_and_symmetric() {
        let d = toy();
        let r = rule();
        let cfg = NoisyOracleConfig {
            false_match_rate: 0.2,
            false_non_match_rate: 0.2,
            fault_rate: 0.2,
            seed: 7,
            ..NoisyOracleConfig::default()
        };
        let o = NoisyOracle::new(&r, cfg);
        for (a, b) in [(0u32, 1u32), (0, 2), (1, 2)] {
            let x = o.adjudicate(&d, a, b);
            let y = o.adjudicate(&d, a, b);
            let z = o.adjudicate(&d, b, a); // unordered pair
            assert_eq!(x, y, "repeat ({a},{b})");
            assert_eq!(x, z, "swap ({a},{b})");
        }
    }

    #[test]
    fn different_seeds_sample_different_noise() {
        // With a 30% flip rate across many pairs, two seeds must not
        // produce identical verdict vectors.
        let sets: Vec<Vec<u64>> = (0..30).map(|i| vec![i, i + 1, i + 2]).collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let d = dataset(&refs);
        let r = rule();
        let verdicts = |seed: u64| -> Vec<bool> {
            let cfg = NoisyOracleConfig {
                false_match_rate: 0.3,
                seed,
                ..NoisyOracleConfig::default()
            };
            let o = NoisyOracle::new(&r, cfg);
            let mut out = Vec::new();
            for a in 0..30u32 {
                for b in (a + 1)..30 {
                    out.push(o.adjudicate(&d, a, b).matched);
                }
            }
            out
        };
        assert_ne!(verdicts(1), verdicts(2));
        assert_eq!(verdicts(1), verdicts(1));
    }

    #[test]
    fn faults_trigger_retries_and_exhaustion_degrades() {
        let d = toy();
        let r = rule();
        // Certain fault: every attempt times out or errors; all slots
        // degrade to the rule verdict.
        let cfg = NoisyOracleConfig {
            fault_rate: 1.0,
            max_retries: 2,
            ..NoisyOracleConfig::default()
        };
        let o = NoisyOracle::new(&r, cfg);
        let adj = o.adjudicate(&d, 0, 1);
        assert!(adj.degraded);
        assert!(adj.matched, "degrades to the rule verdict");
        assert_eq!(adj.attempts, 3, "1 + max_retries");
        assert_eq!(adj.retries, 2);
        assert_eq!(adj.timeouts + adj.transient_errors, 3);
        assert_eq!(adj.spend, 3);
        assert!(adj.latency_micros > 0);
    }

    #[test]
    fn hangs_are_reaped_by_the_deadline() {
        let d = toy();
        let r = rule();
        let cfg = NoisyOracleConfig {
            hang_rate: 1.0,
            max_retries: 10,
            timeout_micros: 100,
            deadline_micros: 2_500,
            ..NoisyOracleConfig::default()
        };
        let o = NoisyOracle::new(&r, cfg);
        let adj = o.adjudicate(&d, 0, 1);
        assert!(adj.degraded);
        assert!(adj.timeouts >= 1);
        // The deadline stopped retrying well before max_retries.
        assert!(adj.attempts < 11, "deadline reaps hangs: {adj:?}");
    }

    #[test]
    fn low_confidence_triggers_odd_majority_votes() {
        // Flip rate 0.49 ⇒ the low-confidence margin min(3·rate, 0.5)
        // covers essentially every draw, so votes fire on most pairs.
        let sets: Vec<Vec<u64>> = (0..20).map(|i| vec![i, i + 1]).collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let d = dataset(&refs);
        let r = rule();
        let cfg = NoisyOracleConfig {
            false_match_rate: 0.49,
            votes: 4, // forced odd ⇒ 5
            ..NoisyOracleConfig::default()
        };
        let o = NoisyOracle::new(&r, cfg);
        let mut voted = 0;
        for a in 0..20u32 {
            for b in (a + 1)..20 {
                let adj = o.adjudicate(&d, a, b);
                if adj.votes > 0 {
                    voted += 1;
                    assert_eq!(adj.votes, 5, "odd-n vote width");
                    assert!(adj.attempts >= 6, "initial call + 5 votes");
                }
            }
        }
        assert!(voted > 0, "some pair must have re-voted");
    }

    #[test]
    fn ledger_budget_degrades_instead_of_aborting() {
        let d = toy();
        let r = rule();
        let o = NoisyOracle::new(&r, NoisyOracleConfig::default());
        let mut ledger = SpendLedger::new(Some(2));
        // Each zero-noise adjudication costs 1: the first two settle on
        // budget, the third degrades for free.
        let pairs = [(0u32, 1u32), (0, 2), (1, 2)];
        let mut degraded = 0;
        for (a, b) in pairs {
            let adj = o.adjudicate(&d, a, b);
            let settled = ledger.settle(a, b, &adj);
            // Degraded or not, the zero-noise verdict equals the rule.
            assert_eq!(settled.matched, r.matches_in(&d, a, b));
            if settled.degraded {
                degraded += 1;
                assert_eq!(settled.spend, 0, "budget fallback is free");
            }
        }
        assert_eq!(degraded, 1);
        let s = ledger.spend();
        assert_eq!(s.calls, 3);
        assert_eq!(s.spent, 2);
        assert_eq!(s.degraded, 1);
        assert_eq!(s.degraded_pairs, vec![(1, 2)]);
        assert_eq!(ledger.remaining(), Some(0));
    }

    #[test]
    fn overlay_verdicts_are_authoritative_and_free() {
        let d = toy();
        let r = rule();
        let overlay = Arc::new(VerdictOverlay::new());
        assert_eq!(overlay.version(), 0);
        // Post an inverted verdict for the matching pair (0,1).
        let v = overlay.set(1, 0, false);
        assert_eq!(v, 1);
        assert_eq!(overlay.len(), 1);
        let o =
            NoisyOracle::new(&r, NoisyOracleConfig::default()).with_overlay(Some(overlay.clone()));
        let adj = o.adjudicate(&d, 0, 1);
        assert!(!adj.matched, "overlay overrides the oracle");
        assert_eq!(adj.attempts, 0);
        assert_eq!(adj.spend, 0);
        // Pairs without an overlay entry adjudicate normally.
        let adj = o.adjudicate(&d, 0, 2);
        assert_eq!(adj.attempts, 1);
        assert_eq!(overlay.get(2, 0), None);
    }

    #[test]
    #[should_panic(expected = "injected oracle fault")]
    fn panic_on_record_hook_panics() {
        let d = toy();
        let r = rule();
        let cfg = NoisyOracleConfig {
            panic_on_record: Some(1),
            ..NoisyOracleConfig::default()
        };
        NoisyOracle::new(&r, cfg).adjudicate(&d, 0, 1);
    }
}
