//! Parent-pointer trees (paper Appendix B.1–B.2, Figures 18–19).
//!
//! The transitive hashing functions and the pairwise computation function
//! both maintain clusters as *parent-pointer trees*: each node points to
//! its parent; leaves are chained left-to-right through `next_leaf`
//! pointers; the root knows its first leaf, last leaf, and leaf count.
//! Records are the leaves. The structure supports exactly the operations
//! Appendix B needs:
//!
//! * create a singleton tree for a record (Figure 19a);
//! * attach a record as a new leaf of an existing tree (Figure 19b);
//! * merge two trees under a fresh root `n′` (Figure 19c);
//! * find the root from any node (with path compression — compression
//!   rewires only `parent` pointers and never touches the leaf chain, so
//!   leaf iteration is unaffected);
//! * iterate a cluster's records by walking the leaf chain.
//!
//! A [`Forest`] is scoped to one function invocation: "when function `Hᵢ`
//! is invoked, there are no trees and none of the input records belongs
//! to a tree" (Appendix B.2). Records are addressed by dense *slots*
//! `0..n` (the caller maps record ids to positions in the cluster being
//! processed).

/// Sentinel for "no node".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Node {
    parent: u32,
    /// Number of leaves under this node (maintained at roots).
    n_leaves: u32,
    /// First/last leaf of this subtree (valid at roots).
    first_leaf: u32,
    last_leaf: u32,
    /// Next leaf in the left-to-right chain (valid at leaves).
    next_leaf: u32,
    /// The record slot, for leaves; `NONE` for internal nodes.
    slot: u32,
}

/// A forest of parent-pointer trees over record slots `0..capacity`.
#[derive(Debug)]
pub struct Forest {
    nodes: Vec<Node>,
    /// `leaf_of[slot]` is the slot's leaf node, if the slot has been added.
    leaf_of: Vec<u32>,
}

/// Identifier of a node in a [`Forest`].
pub type NodeId = u32;

impl Forest {
    /// Creates an empty forest able to hold `capacity` record slots.
    pub fn new(capacity: usize) -> Self {
        Self {
            nodes: Vec::with_capacity(capacity),
            leaf_of: vec![NONE; capacity],
        }
    }

    /// Number of record slots that have been added so far.
    pub fn num_leaves(&self) -> usize {
        self.leaf_of.iter().filter(|&&l| l != NONE).count()
    }

    /// The leaf node of `slot`, if the slot was added.
    pub fn leaf_of(&self, slot: u32) -> Option<NodeId> {
        let l = self.leaf_of[slot as usize];
        (l != NONE).then_some(l)
    }

    /// Creates a singleton tree for `slot` (Figure 19a).
    ///
    /// # Panics
    /// Panics if the slot was already added.
    pub fn add_singleton(&mut self, slot: u32) -> NodeId {
        assert_eq!(
            self.leaf_of[slot as usize], NONE,
            "slot {slot} already in a tree"
        );
        let id = self.nodes.len() as u32;
        self.nodes.push(Node {
            parent: NONE,
            n_leaves: 1,
            first_leaf: id,
            last_leaf: id,
            next_leaf: NONE,
            slot,
        });
        self.leaf_of[slot as usize] = id;
        id
    }

    /// Attaches `slot` as a new leaf under the tree rooted at `root`
    /// (Figure 19b). Returns the new leaf.
    ///
    /// # Panics
    /// Panics if `root` is not a root or the slot was already added.
    pub fn attach_leaf(&mut self, root: NodeId, slot: u32) -> NodeId {
        assert_eq!(self.nodes[root as usize].parent, NONE, "not a root");
        assert_eq!(
            self.leaf_of[slot as usize], NONE,
            "slot {slot} already in a tree"
        );
        let leaf = self.nodes.len() as u32;
        self.nodes.push(Node {
            parent: root,
            n_leaves: 1,
            first_leaf: leaf,
            last_leaf: leaf,
            next_leaf: NONE,
            slot,
        });
        self.leaf_of[slot as usize] = leaf;
        let old_last = self.nodes[root as usize].last_leaf;
        self.nodes[old_last as usize].next_leaf = leaf;
        let r = &mut self.nodes[root as usize];
        r.last_leaf = leaf;
        r.n_leaves += 1;
        leaf
    }

    /// Merges the trees rooted at `a` and `b` under a fresh root `n′`
    /// (Figure 19c). Returns the new root.
    ///
    /// # Panics
    /// Panics if either argument is not a root, or `a == b`.
    pub fn merge_roots(&mut self, a: NodeId, b: NodeId) -> NodeId {
        assert_ne!(a, b, "cannot merge a tree with itself");
        assert_eq!(self.nodes[a as usize].parent, NONE, "a is not a root");
        assert_eq!(self.nodes[b as usize].parent, NONE, "b is not a root");
        let new_root = self.nodes.len() as u32;
        let (a_first, a_last, a_n) = {
            let n = &self.nodes[a as usize];
            (n.first_leaf, n.last_leaf, n.n_leaves)
        };
        let (b_first, b_last, b_n) = {
            let n = &self.nodes[b as usize];
            (n.first_leaf, n.last_leaf, n.n_leaves)
        };
        self.nodes.push(Node {
            parent: NONE,
            n_leaves: a_n + b_n,
            first_leaf: a_first,
            last_leaf: b_last,
            next_leaf: NONE,
            slot: NONE,
        });
        self.nodes[a as usize].parent = new_root;
        self.nodes[b as usize].parent = new_root;
        // Chain a's last leaf into b's first leaf.
        self.nodes[a_last as usize].next_leaf = b_first;
        new_root
    }

    /// Finds the root of the tree containing `node`, compressing the path.
    pub fn find_root(&mut self, node: NodeId) -> NodeId {
        let mut root = node;
        while self.nodes[root as usize].parent != NONE {
            root = self.nodes[root as usize].parent;
        }
        // Path compression: repoint everything on the path at the root.
        let mut cur = node;
        while cur != root {
            let next = self.nodes[cur as usize].parent;
            self.nodes[cur as usize].parent = root;
            cur = next;
        }
        root
    }

    /// Finds the root of the tree containing `slot`'s leaf, if any.
    pub fn find_root_of_slot(&mut self, slot: u32) -> Option<NodeId> {
        self.leaf_of(slot).map(|l| self.find_root(l))
    }

    /// Leaf count of the tree rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root` is not a root.
    pub fn cluster_size(&self, root: NodeId) -> usize {
        assert_eq!(self.nodes[root as usize].parent, NONE, "not a root");
        self.nodes[root as usize].n_leaves as usize
    }

    /// Record slots of the tree rooted at `root`, in leaf-chain order.
    ///
    /// # Panics
    /// Panics if `root` is not a root.
    pub fn cluster_slots(&self, root: NodeId) -> Vec<u32> {
        assert_eq!(self.nodes[root as usize].parent, NONE, "not a root");
        let n = self.nodes[root as usize].n_leaves as usize;
        let mut out = Vec::with_capacity(n);
        let mut leaf = self.nodes[root as usize].first_leaf;
        for _ in 0..n {
            let node = &self.nodes[leaf as usize];
            debug_assert_ne!(node.slot, NONE, "internal node in leaf chain");
            out.push(node.slot);
            leaf = node.next_leaf;
        }
        out
    }

    /// All current roots (every slot added so far belongs to exactly one).
    pub fn roots(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32)
            .filter(|&i| self.nodes[i as usize].parent == NONE)
            .collect()
    }

    /// Materializes all clusters as slot lists, in no particular order.
    pub fn clusters(&self) -> Vec<Vec<u32>> {
        self.roots()
            .into_iter()
            .map(|r| self.cluster_slots(r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_is_its_own_cluster() {
        let mut f = Forest::new(3);
        let l = f.add_singleton(1);
        assert_eq!(f.find_root(l), l);
        assert_eq!(f.cluster_size(l), 1);
        assert_eq!(f.cluster_slots(l), vec![1]);
    }

    #[test]
    fn attach_extends_leaf_chain() {
        let mut f = Forest::new(4);
        let r = f.add_singleton(0);
        f.attach_leaf(r, 2);
        f.attach_leaf(r, 3);
        assert_eq!(f.cluster_size(r), 3);
        assert_eq!(f.cluster_slots(r), vec![0, 2, 3]);
    }

    #[test]
    fn merge_concatenates_leaf_chains() {
        let mut f = Forest::new(6);
        let a = f.add_singleton(0);
        f.attach_leaf(a, 1);
        let b = f.add_singleton(4);
        f.attach_leaf(b, 5);
        let m = f.merge_roots(a, b);
        assert_eq!(f.cluster_size(m), 4);
        assert_eq!(f.cluster_slots(m), vec![0, 1, 4, 5]);
        assert_eq!(f.find_root(a), m);
        assert_eq!(f.find_root(b), m);
    }

    #[test]
    fn merge_of_merges() {
        let mut f = Forest::new(8);
        let roots: Vec<NodeId> = (0..8).map(|s| f.add_singleton(s)).collect();
        let ab = f.merge_roots(roots[0], roots[1]);
        let cd = f.merge_roots(roots[2], roots[3]);
        let abcd = f.merge_roots(ab, cd);
        assert_eq!(f.cluster_slots(abcd), vec![0, 1, 2, 3]);
        // Every constituent leaf resolves to the top root.
        for s in 0..4 {
            assert_eq!(f.find_root_of_slot(s), Some(abcd));
        }
        // Untouched singletons stay separate.
        assert_eq!(f.find_root_of_slot(7), Some(roots[7]));
    }

    #[test]
    fn roots_and_clusters_enumeration() {
        let mut f = Forest::new(5);
        let a = f.add_singleton(0);
        let b = f.add_singleton(1);
        f.merge_roots(a, b);
        f.add_singleton(4);
        let mut clusters = f.clusters();
        clusters.iter_mut().for_each(|c| c.sort_unstable());
        clusters.sort();
        assert_eq!(clusters, vec![vec![0, 1], vec![4]]);
    }

    #[test]
    fn path_compression_preserves_answers() {
        let mut f = Forest::new(16);
        let mut root = f.add_singleton(0);
        for s in 1..16u32 {
            let n = f.add_singleton(s);
            root = f.merge_roots(root, n);
        }
        // Deep chain: find twice, answers identical and leaf chain intact.
        let leaf = f.leaf_of(0).unwrap();
        let r1 = f.find_root(leaf);
        let r2 = f.find_root(leaf);
        assert_eq!(r1, r2);
        assert_eq!(r1, root);
        let mut slots = f.cluster_slots(root);
        slots.sort_unstable();
        assert_eq!(slots, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_of_reports_membership() {
        let mut f = Forest::new(2);
        assert_eq!(f.leaf_of(0), None);
        f.add_singleton(0);
        assert!(f.leaf_of(0).is_some());
        assert_eq!(f.leaf_of(1), None);
        assert_eq!(f.num_leaves(), 1);
    }

    #[test]
    #[should_panic(expected = "already in a tree")]
    fn double_add_panics() {
        let mut f = Forest::new(1);
        f.add_singleton(0);
        f.add_singleton(0);
    }

    #[test]
    #[should_panic(expected = "not a root")]
    fn attach_to_non_root_panics() {
        let mut f = Forest::new(3);
        let a = f.add_singleton(0);
        let b = f.add_singleton(1);
        f.merge_roots(a, b);
        f.attach_leaf(a, 2); // a is no longer a root
    }

    #[test]
    #[should_panic(expected = "merge a tree with itself")]
    fn self_merge_panics() {
        let mut f = Forest::new(1);
        let a = f.add_singleton(0);
        f.merge_roots(a, a);
    }
}
