//! Online top-k entity resolution (the paper's §9 future-work setting).
//!
//! In the online setting there is no fixed dataset: records arrive
//! dynamically and the user periodically asks for the current top-k
//! entities. The batch algorithm's *incremental computation* property
//! (Property 4) makes a simple design effective: keep one persistent
//! [`RecordHashState`] per record, and answer each query by running
//! Algorithm 1 over the current record set **with those states**. Raw
//! hash values computed in earlier queries are never recomputed — a
//! record that reached level 3 while processing query `t` starts at
//! level 3 in query `t + 1` — so successive queries pay hashing only for
//! (a) new arrivals and (b) records pushed to deeper levels than before.
//! Bucket insertion and cluster bookkeeping are re-done per query (the
//! batch semantics of fresh tables per invocation are preserved exactly,
//! so every answer equals what the batch algorithm would return on the
//! same snapshot).

use adalsh_data::{Dataset, Record, Schema};

use crate::algorithm::{AdaLsh, AdaLshConfig, FilterOutput};
use crate::hashing::RecordHashState;

/// An online top-k resolver over a stream of records.
pub struct OnlineAdaLsh {
    engine: AdaLsh,
    schema: Schema,
    records: Vec<Record>,
    /// Ground-truth labels are optional in online use; we keep a dummy
    /// label per record to satisfy [`Dataset`]'s invariants.
    labels: Vec<u32>,
    states: Vec<RecordHashState>,
}

impl OnlineAdaLsh {
    /// Creates an online resolver. `bootstrap` must contain at least one
    /// record — it seeds the schema, the sequence design, and the cost
    /// model (both are data-dependent; a representative bootstrap sample
    /// gives a representative design).
    pub fn new(bootstrap: &Dataset, config: AdaLshConfig) -> Result<Self, String> {
        let engine = AdaLsh::for_dataset(bootstrap, config)?;
        Ok(Self {
            engine,
            schema: bootstrap.schema().clone(),
            records: bootstrap.records().to_vec(),
            labels: bootstrap.ground_truth().to_vec(),
            states: vec![RecordHashState::default(); bootstrap.len()],
        })
    }

    /// Number of records seen so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records have been ingested (impossible by
    /// construction; kept for idiom).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Ingests one record, returning its id.
    ///
    /// # Panics
    /// Panics if the record violates the schema.
    pub fn push(&mut self, record: Record) -> u32 {
        self.schema
            .validate(&record)
            .unwrap_or_else(|e| panic!("record violates schema: {e}"));
        let id = self.records.len() as u32;
        self.records.push(record);
        self.labels.push(u32::MAX); // unknown entity
        self.states.push(RecordHashState::default());
        id
    }

    /// Ingests many records.
    pub fn extend(&mut self, records: impl IntoIterator<Item = Record>) {
        for r in records {
            self.push(r);
        }
    }

    /// Answers a top-`k` query over everything ingested so far. Hashing
    /// work persists across queries; the answer is identical to running
    /// the batch algorithm on the current snapshot.
    pub fn query(&mut self, k: usize) -> FilterOutput {
        let snapshot = Dataset::new(
            self.schema.clone(),
            self.records.clone(),
            self.labels.clone(),
        );
        self.engine
            .run_with_states(&snapshot, k, &mut self.states, |_, _| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FilterMethod;
    use crate::baselines::Pairs;
    use adalsh_data::{FieldDistance, FieldKind, FieldValue, MatchRule, ShingleSet};

    fn record(core: u64, noise: u64) -> Record {
        let mut s: Vec<u64> = (0..15).map(|i| core * 1000 + i).collect();
        s.push(core * 1000 + 500 + noise % 4);
        Record::single(FieldValue::Shingles(ShingleSet::new(s)))
    }

    fn bootstrap() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..20).map(|i| record(i % 4, i)).collect();
        let gt = (0..20).map(|i| (i % 4) as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn rule() -> MatchRule {
        MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
    }

    #[test]
    fn query_matches_batch_on_snapshot() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        // Ingest a burst making entity 7 the largest.
        for i in 0..9 {
            online.push(record(7, i));
        }
        let out = online.query(1);
        // Batch reference on the same snapshot.
        let gold = Pairs::new(rule()).filter(
            &Dataset::new(
                boot.schema().clone(),
                online.records.clone(),
                vec![0; online.len()],
            ),
            1,
        );
        assert_eq!(out.records(), gold.records());
        assert_eq!(out.clusters[0].len(), 9);
    }

    #[test]
    fn repeated_queries_amortize_hashing() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let first = online.query(2);
        let second = online.query(2);
        assert_eq!(first.records(), second.records());
        assert!(
            second.stats.hash_evals == 0,
            "second identical query must reuse every hash value (got {})",
            second.stats.hash_evals
        );
    }

    #[test]
    fn new_arrivals_pay_only_their_own_hashing() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let first = online.query(2);
        online.push(record(0, 99));
        let third = online.query(2);
        assert!(
            third.stats.hash_evals < first.stats.hash_evals / 2,
            "incremental query cost {} should be far below initial {}",
            third.stats.hash_evals,
            first.stats.hash_evals
        );
    }

    #[test]
    fn ranking_tracks_the_stream() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let before = online.query(1);
        assert_eq!(before.clusters[0].len(), 5, "entities are 5/5/5/5");
        for i in 0..10 {
            online.push(record(2, 50 + i));
        }
        let after = online.query(1);
        assert_eq!(after.clusters[0].len(), 15, "entity 2 grew to 15");
    }

    #[test]
    #[should_panic(expected = "violates schema")]
    fn schema_violations_rejected() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        online.push(Record::single(FieldValue::Dense(
            adalsh_data::DenseVector::new(vec![1.0]),
        )));
    }
}
