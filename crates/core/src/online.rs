//! Online top-k entity resolution (the paper's §9 future-work setting).
//!
//! In the online setting there is no fixed dataset: records arrive
//! dynamically and the user periodically asks for the current top-k
//! entities. The batch algorithm's *incremental computation* property
//! (Property 4) makes a simple design effective: keep one persistent
//! [`RecordHashState`] per record, and answer each query by running
//! Algorithm 1 over the current record set **with those states**. Raw
//! hash values computed in earlier queries are never recomputed — a
//! record that reached level 3 while processing query `t` starts at
//! level 3 in query `t + 1` — so successive queries pay hashing only for
//! (a) new arrivals and (b) records pushed to deeper levels than before.
//! Bucket insertion and cluster bookkeeping are re-done per query (the
//! batch semantics of fresh tables per invocation are preserved exactly,
//! so every answer equals what the batch algorithm would return on the
//! same snapshot).
//!
//! The resolver maintains its snapshot [`Dataset`] **incrementally**:
//! each [`OnlineAdaLsh::push`] appends one record (and its cached field
//! norm) in place, and [`OnlineAdaLsh::query`] borrows that dataset —
//! steady-state queries pay no per-query copy of the record vectors.
//!
//! For long-lived services the full resolver state round-trips through
//! an [`OnlineSnapshot`]: records, labels, per-record hash states, and
//! the bootstrap prefix the engine was designed from. Restoring with
//! [`OnlineAdaLsh::from_snapshot`] under the same configuration rebuilds
//! an identical engine (sequence design and seeds are deterministic in
//! the bootstrap data and config), so no hash value is ever recomputed
//! for an already-hashed record.

use adalsh_data::{Dataset, Record, Schema};
use adalsh_obs::{TraceSink, Value};
use serde::{Deserialize, Serialize};

use crate::algorithm::{AdaLsh, AdaLshConfig, FilterOutput};
use crate::hashing::RecordHashState;
use crate::oracle::VerdictOverlay;

/// Ground-truth label attached to records ingested online (their entity
/// is unknown; labels are never consulted by the filter itself).
const UNKNOWN_ENTITY: u32 = u32::MAX;

/// An online top-k resolver over a stream of records.
pub struct OnlineAdaLsh {
    engine: AdaLsh,
    config: AdaLshConfig,
    /// The first `bootstrap_len` records seeded the engine design.
    bootstrap_len: usize,
    /// Current snapshot, grown in place on every push.
    dataset: Dataset,
    states: Vec<RecordHashState>,
    /// The last [`OnlineAdaLsh::query_cached`] answer, keyed by the
    /// record count and `k` it was computed at. Records are append-only,
    /// so an unchanged count means an unchanged corpus.
    resolve_cache: Option<ResolveCache>,
}

/// Cache entry for [`OnlineAdaLsh::query_cached`].
struct ResolveCache {
    records: usize,
    k: usize,
    /// Version of the external-verdict overlay at resolve time (0 when
    /// no overlay is installed). A new verdict invalidates the cache
    /// even though the corpus itself is unchanged.
    overlay_version: u64,
    output: FilterOutput,
}

/// The full serializable state of an [`OnlineAdaLsh`]: everything needed
/// to resume resolution after a restart without re-hashing any record.
///
/// The engine itself (hash families, sequence design, cost model) is
/// *not* stored: it is a deterministic function of the bootstrap prefix
/// and the configuration, and [`OnlineAdaLsh::from_snapshot`] rebuilds
/// it bit-identically from `records[..bootstrap_len]`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineSnapshot {
    /// Number of leading records that seeded the engine design.
    pub bootstrap_len: usize,
    /// The record schema.
    pub schema: Schema,
    /// All records seen so far, in id order.
    pub records: Vec<Record>,
    /// Per-record entity labels (bootstrap labels are real; online
    /// arrivals carry `u32::MAX` = unknown).
    pub labels: Vec<u32>,
    /// Per-record incremental hash states, aligned with `records`.
    pub states: Vec<RecordHashState>,
}

impl OnlineAdaLsh {
    /// Creates an online resolver. `bootstrap` must contain at least one
    /// record — it seeds the schema, the sequence design, and the cost
    /// model (both are data-dependent; a representative bootstrap sample
    /// gives a representative design).
    ///
    /// # Errors
    /// Fails when no feasible sequence design exists for the bootstrap
    /// dataset under `config`.
    pub fn new(bootstrap: &Dataset, config: AdaLshConfig) -> Result<Self, String> {
        let engine = AdaLsh::for_dataset(bootstrap, config.clone())?;
        Ok(Self {
            engine,
            config,
            bootstrap_len: bootstrap.len(),
            dataset: bootstrap.clone(),
            states: vec![RecordHashState::default(); bootstrap.len()],
            resolve_cache: None,
        })
    }

    /// Number of records seen so far.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// True when no records have been ingested (impossible by
    /// construction; kept for idiom).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// The record schema every ingested record must conform to.
    pub fn schema(&self) -> &Schema {
        self.dataset.schema()
    }

    /// All records seen so far, in id order.
    pub fn records(&self) -> &[Record] {
        self.dataset.records()
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &AdaLshConfig {
        &self.config
    }

    /// Ingests one record, returning its assigned id.
    ///
    /// # Errors
    /// Fails (ingesting nothing) if the record violates the schema — a
    /// service rejects bad records per-request instead of dying.
    pub fn push(&mut self, record: Record) -> Result<u32, String> {
        let id = self.dataset.push(record, UNKNOWN_ENTITY)?;
        self.states.push(RecordHashState::default());
        Ok(id)
    }

    /// Ingests a batch of records, returning their assigned ids.
    ///
    /// The batch is atomic: every record is schema-validated before any
    /// is ingested, so a rejected batch leaves the resolver unchanged.
    ///
    /// # Errors
    /// Fails if any record violates the schema (the message names the
    /// offending batch position).
    pub fn extend(
        &mut self,
        records: impl IntoIterator<Item = Record>,
    ) -> Result<Vec<u32>, String> {
        let records: Vec<Record> = records.into_iter().collect();
        for (i, r) in records.iter().enumerate() {
            self.schema()
                .validate(r)
                .map_err(|e| format!("record {i} of batch: {e}"))?;
        }
        let mut ids = Vec::with_capacity(records.len());
        for r in records {
            ids.push(self.push(r).expect("batch pre-validated"));
        }
        Ok(ids)
    }

    /// Answers a top-`k` query over everything ingested so far. Hashing
    /// work persists across queries; the answer is identical to running
    /// the batch algorithm on the current snapshot. The snapshot dataset
    /// is borrowed, not rebuilt — a steady-state query does no per-record
    /// copying.
    pub fn query(&mut self, k: usize) -> FilterOutput {
        let sink = self.engine.trace().clone();
        // Per-record levels before the run: fresh records (level 0) have
        // never been hashed; records whose level grows during this query
        // are the ones pushed deeper than any earlier query needed.
        let pre_levels: Option<Vec<u16>> = sink
            .enabled()
            .then(|| self.states.iter().map(|s| s.level).collect());
        let out = self
            .engine
            .run_with_states(&self.dataset, k, &mut self.states, |_, _| {});
        if let Some(before) = pre_levels {
            let fresh = before.iter().filter(|&&level| level == 0).count() as u64;
            let advanced = self
                .states
                .iter()
                .zip(&before)
                .filter(|(s, &b)| s.level > b)
                .count() as u64;
            sink.emit(
                "online_query",
                &[
                    ("k", Value::U64(k as u64)),
                    ("records", Value::U64(self.dataset.len() as u64)),
                    ("fresh_records", Value::U64(fresh)),
                    ("advanced_records", Value::U64(advanced)),
                    ("hash_evals", Value::U64(out.stats.hash_evals)),
                    ("wall_micros", Value::U64(out.wall.as_micros() as u64)),
                ],
            );
            sink.flush();
        }
        out
    }

    /// Like [`OnlineAdaLsh::query`], but answered from a one-entry cache
    /// when nothing changed: if no record arrived since the last
    /// `query_cached` at the same `k`, the previous [`FilterOutput`] is
    /// cloned back without touching the engine at all — no bucket
    /// re-insertion, no pairwise re-verification, no trace events. The
    /// returned `stats` are those of the run that produced the answer
    /// (a plain re-`query` would instead report `hash_evals == 0` for
    /// the redundant pass it just performed).
    ///
    /// This is the resolve primitive for a serving loop that may
    /// re-publish or snapshot an unchanged corpus.
    pub fn query_cached(&mut self, k: usize) -> FilterOutput {
        let overlay_version = self.overlay_version();
        if let Some(cache) = &self.resolve_cache {
            if cache.records == self.dataset.len()
                && cache.k == k
                && cache.overlay_version == overlay_version
            {
                return cache.output.clone();
            }
        }
        let output = self.query(k);
        self.resolve_cache = Some(ResolveCache {
            records: self.dataset.len(),
            k,
            overlay_version,
            output: output.clone(),
        });
        output
    }

    /// Current version of the installed verdict overlay (0 without one).
    fn overlay_version(&self) -> u64 {
        self.config
            .oracle_overlay
            .as_ref()
            .map_or(0, |overlay| overlay.version())
    }

    /// Installs (or replaces) the external-verdict overlay consulted by
    /// a noisy oracle — e.g. the store behind a serving layer's
    /// `/adjudicate` endpoint. Any new verdict bumps the overlay version
    /// and invalidates the resolve cache on the next `query_cached`.
    pub fn set_oracle_overlay(&mut self, overlay: Option<std::sync::Arc<VerdictOverlay>>) {
        self.config.oracle_overlay = overlay.clone();
        self.engine.set_oracle_overlay(overlay);
        self.resolve_cache = None;
    }

    /// Installs (or replaces) the engine's trace sink — e.g. the serving
    /// layer folding engine events into its metrics registry.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.config.trace = sink.clone();
        self.engine.set_trace(sink);
    }

    /// The engine's trace sink.
    pub fn trace(&self) -> &TraceSink {
        self.engine.trace()
    }

    /// Captures the resolver's full state for persistence.
    pub fn snapshot(&self) -> OnlineSnapshot {
        OnlineSnapshot {
            bootstrap_len: self.bootstrap_len,
            schema: self.dataset.schema().clone(),
            records: self.dataset.records().to_vec(),
            labels: self.dataset.ground_truth().to_vec(),
            states: self.states.clone(),
        }
    }

    /// Restores a resolver from a snapshot, rebuilding the engine from
    /// the bootstrap prefix under `config`. With the same configuration
    /// the snapshot was taken under, the rebuilt engine is bit-identical
    /// (the design and every hash seed are deterministic), so restored
    /// hash states line up exactly and already-hashed records are never
    /// re-hashed.
    ///
    /// # Errors
    /// Fails on inconsistent snapshot shapes (length mismatches, empty or
    /// out-of-range bootstrap, schema-violating records) or when the
    /// engine cannot be rebuilt under `config`.
    pub fn from_snapshot(snapshot: OnlineSnapshot, config: AdaLshConfig) -> Result<Self, String> {
        let OnlineSnapshot {
            bootstrap_len,
            schema,
            records,
            labels,
            states,
        } = snapshot;
        if records.is_empty() {
            return Err("snapshot has no records".to_string());
        }
        if records.len() != labels.len() || records.len() != states.len() {
            return Err(format!(
                "snapshot shape mismatch: {} records, {} labels, {} states",
                records.len(),
                labels.len(),
                states.len()
            ));
        }
        if bootstrap_len == 0 || bootstrap_len > records.len() {
            return Err(format!(
                "snapshot bootstrap_len {} out of range 1..={}",
                bootstrap_len,
                records.len()
            ));
        }
        for (i, r) in records.iter().enumerate() {
            schema
                .validate(r)
                .map_err(|e| format!("snapshot record {i}: {e}"))?;
        }
        let bootstrap = Dataset::new(
            schema.clone(),
            records[..bootstrap_len].to_vec(),
            labels[..bootstrap_len].to_vec(),
        );
        let engine = AdaLsh::for_dataset(&bootstrap, config.clone())?;
        let max_level = engine.num_levels() as u16;
        if let Some(bad) = states.iter().position(|s| s.level > max_level) {
            return Err(format!(
                "snapshot state {bad} is at level {} but the engine has only {max_level} levels \
                 (was the snapshot taken under a different configuration?)",
                states[bad].level
            ));
        }
        if let Some(bad) = states.iter().position(|s| !s.is_well_formed()) {
            return Err(format!(
                "snapshot state {bad} claims level {} but its accumulator history does not \
                 match (corrupt or hand-edited snapshot?)",
                states[bad].level
            ));
        }
        Ok(Self {
            engine,
            config,
            bootstrap_len,
            dataset: Dataset::new(schema, records, labels),
            states,
            resolve_cache: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FilterMethod;
    use crate::baselines::Pairs;
    use adalsh_data::{FieldDistance, FieldKind, FieldValue, MatchRule, ShingleSet};

    fn record(core: u64, noise: u64) -> Record {
        let mut s: Vec<u64> = (0..15).map(|i| core * 1000 + i).collect();
        s.push(core * 1000 + 500 + noise % 4);
        Record::single(FieldValue::Shingles(ShingleSet::new(s)))
    }

    fn bootstrap() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records: Vec<Record> = (0..20).map(|i| record(i % 4, i)).collect();
        let gt = (0..20).map(|i| (i % 4) as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn rule() -> MatchRule {
        MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
    }

    #[test]
    fn query_matches_batch_on_snapshot() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        // Ingest a burst making entity 7 the largest.
        for i in 0..9 {
            online.push(record(7, i)).unwrap();
        }
        let out = online.query(1);
        // Batch reference on the same snapshot.
        let gold = Pairs::new(rule()).filter(
            &Dataset::new(
                boot.schema().clone(),
                online.records().to_vec(),
                vec![0; online.len()],
            ),
            1,
        );
        assert_eq!(out.records(), gold.records());
        assert_eq!(out.clusters[0].len(), 9);
    }

    #[test]
    fn repeated_queries_amortize_hashing() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let first = online.query(2);
        let second = online.query(2);
        assert_eq!(first.records(), second.records());
        assert!(
            second.stats.hash_evals == 0,
            "second identical query must reuse every hash value (got {})",
            second.stats.hash_evals
        );
    }

    /// With the jump gate disabled every cluster walks the full
    /// sequence, so hash states advance past level 1 — the regime where
    /// a later query re-applies `H₁` to already-deep records. (With the
    /// gate on, small test datasets jump to pairwise straight from
    /// level 1 and never exercise this.) A re-query must serve every
    /// earlier level's bucket keys from the persisted state instead of
    /// re-hashing — or panicking.
    #[test]
    fn requery_after_deep_hashing_reuses_every_level() {
        let mut config = AdaLshConfig::new(rule());
        config.disable_jump_gate = true;
        let mut online = OnlineAdaLsh::new(&bootstrap(), config).unwrap();
        let first = online.query(2);
        assert!(
            first.stats.transitive_calls > 1,
            "precondition: the run must apply more than one sequence level \
             (got {} transitive calls)",
            first.stats.transitive_calls
        );
        let second = online.query(2);
        assert_eq!(first.records(), second.records());
        assert_eq!(
            second.stats.hash_evals, 0,
            "re-query must reuse the persisted keys of every level"
        );
    }

    /// Same regime through the snapshot round-trip: deep states must
    /// resume with zero re-hashing, not just level-1 states.
    #[test]
    fn snapshot_roundtrip_preserves_deep_hash_states() {
        let mut config = AdaLshConfig::new(rule());
        config.disable_jump_gate = true;
        let mut online = OnlineAdaLsh::new(&bootstrap(), config.clone()).unwrap();
        let before = online.query(2);
        assert!(before.stats.transitive_calls > 1, "precondition: deep run");

        let json = serde_json::to_string(&online.snapshot()).unwrap();
        let restored: OnlineSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = OnlineAdaLsh::from_snapshot(restored, config).unwrap();

        let after = resumed.query(2);
        assert_eq!(after.clusters, before.clusters, "same answer after resume");
        assert_eq!(
            after.stats.hash_evals, 0,
            "resumed deep states must not re-hash any record"
        );
    }

    /// `query_cached` on an unchanged corpus must return the cached
    /// answer verbatim — observable because the cached `stats` carry the
    /// producing run's `hash_evals` (> 0 on a cold corpus), whereas an
    /// actual re-run would report 0. New arrivals or a different `k`
    /// invalidate the cache.
    #[test]
    fn query_cached_skips_redundant_resolves() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let first = online.query_cached(2);
        assert!(first.stats.hash_evals > 0, "cold resolve must hash");
        let second = online.query_cached(2);
        assert_eq!(second.clusters, first.clusters);
        assert_eq!(
            second.stats, first.stats,
            "unchanged corpus must be served from the cache (a re-run \
             would report hash_evals == 0)"
        );
        // A different k is a different answer shape: cache miss.
        let other_k = online.query_cached(1);
        assert_eq!(other_k.clusters.len(), 1);
        // A new arrival invalidates the cache; only the arrival is hashed.
        online.push(record(0, 77)).unwrap();
        let grown = online.query_cached(2);
        assert!(
            grown.stats.hash_evals > 0 && grown.stats.hash_evals < first.stats.hash_evals,
            "cache miss after push resolves incrementally (got {} vs cold {})",
            grown.stats.hash_evals,
            first.stats.hash_evals
        );
        // And the cached answer equals a fresh uncached query.
        let recheck = online.query(2);
        assert_eq!(recheck.clusters, grown.clusters);
    }

    /// A new external verdict bumps the overlay version, so the resolve
    /// cache must miss even though the corpus itself is unchanged — and
    /// the re-resolve must honor the overlay verdict.
    #[test]
    fn overlay_verdicts_invalidate_the_resolve_cache() {
        use crate::oracle::{NoisyOracleConfig, OracleMode, VerdictOverlay};
        let mut config = AdaLshConfig::new(rule());
        // Zero-noise oracle: identical to the exact path until the
        // overlay says otherwise.
        config.oracle = OracleMode::Noisy(NoisyOracleConfig::default());
        let mut online = OnlineAdaLsh::new(&bootstrap(), config).unwrap();
        let overlay = std::sync::Arc::new(VerdictOverlay::default());
        online.set_oracle_overlay(Some(overlay.clone()));

        let first = online.query_cached(2);
        assert!(first.stats.hash_evals > 0, "cold resolve must hash");
        let cached = online.query_cached(2);
        assert_eq!(cached.stats, first.stats, "unchanged overlay: cache hit");

        // Force the two largest-cluster members apart: pick two records
        // resolved into the same top cluster and overrule their match.
        let top = &first.clusters[0];
        assert!(top.len() >= 2, "precondition: a non-trivial top cluster");
        overlay.set(top[0], top[1], false);
        let revised = online.query_cached(2);
        assert_eq!(
            revised.stats.hash_evals, 0,
            "overlay-invalidated re-resolve reuses every hash"
        );
        let spend = revised.oracle.as_ref().expect("noisy run reports spend");
        assert!(spend.calls > 0, "re-resolve re-adjudicates pairs");
    }

    #[test]
    fn new_arrivals_pay_only_their_own_hashing() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let first = online.query(2);
        online.push(record(0, 99)).unwrap();
        let third = online.query(2);
        assert!(
            third.stats.hash_evals < first.stats.hash_evals / 2,
            "incremental query cost {} should be far below initial {}",
            third.stats.hash_evals,
            first.stats.hash_evals
        );
    }

    #[test]
    fn ranking_tracks_the_stream() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let before = online.query(1);
        assert_eq!(before.clusters[0].len(), 5, "entities are 5/5/5/5");
        for i in 0..10 {
            online.push(record(2, 50 + i)).unwrap();
        }
        let after = online.query(1);
        assert_eq!(after.clusters[0].len(), 15, "entity 2 grew to 15");
    }

    #[test]
    fn schema_violations_rejected_without_state_change() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let bad = Record::single(FieldValue::Dense(adalsh_data::DenseVector::new(vec![1.0])));
        let err = online.push(bad).unwrap_err();
        assert!(err.contains("kind"), "error should describe the mismatch");
        assert_eq!(online.len(), boot.len(), "nothing ingested");
        assert_eq!(online.states.len(), boot.len(), "no orphan state");
        // The resolver still works after the rejection.
        let out = online.query(1);
        assert_eq!(out.clusters[0].len(), 5);
    }

    #[test]
    fn extend_is_atomic_on_batch_rejection() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let bad = Record::single(FieldValue::Dense(adalsh_data::DenseVector::new(vec![1.0])));
        let err = online
            .extend(vec![record(1, 0), bad, record(1, 1)])
            .unwrap_err();
        assert!(err.contains("record 1"), "error names the position: {err}");
        assert_eq!(online.len(), boot.len(), "rejected batch ingests nothing");
        let ids = online.extend(vec![record(1, 0), record(1, 1)]).unwrap();
        assert_eq!(ids, vec![20, 21]);
    }

    /// The incrementally-grown snapshot dataset must be bit-identical —
    /// records, labels, and cached field norms — to rebuilding a
    /// [`Dataset`] from scratch over the same records (what `query` did
    /// before it stopped cloning).
    #[test]
    fn incremental_snapshot_equals_rebuilt_dataset() {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        for i in 0..7 {
            online.push(record(i % 5, i)).unwrap();
        }
        let rebuilt = Dataset::new(
            boot.schema().clone(),
            online.records().to_vec(),
            online.dataset.ground_truth().to_vec(),
        );
        assert_eq!(online.dataset.records(), rebuilt.records());
        assert_eq!(online.dataset.ground_truth(), rebuilt.ground_truth());
        for i in 0..rebuilt.len() as u32 {
            assert_eq!(
                online.dataset.field_norm(i, 0).to_bits(),
                rebuilt.field_norm(i, 0).to_bits()
            );
        }
        // And querying the grown snapshot equals batch resolution on the
        // rebuilt one.
        let out = online.query(2);
        let gold = Pairs::new(rule()).filter(&rebuilt, 2);
        assert_eq!(out.records(), gold.records());
    }

    #[test]
    fn snapshot_roundtrip_resumes_without_rehashing() {
        let boot = bootstrap();
        let config = AdaLshConfig::new(rule());
        let mut online = OnlineAdaLsh::new(&boot, config.clone()).unwrap();
        for i in 0..9 {
            online.push(record(7, i)).unwrap();
        }
        let before = online.query(1);
        assert!(before.stats.hash_evals > 0);

        let snap = online.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let restored: OnlineSnapshot = serde_json::from_str(&json).unwrap();
        let mut resumed = OnlineAdaLsh::from_snapshot(restored, config).unwrap();

        let after = resumed.query(1);
        assert_eq!(after.clusters, before.clusters, "same answer after resume");
        assert_eq!(
            after.stats.hash_evals, 0,
            "resume must not re-hash any already-hashed record"
        );
        // The resumed resolver keeps working incrementally.
        resumed.push(record(7, 100)).unwrap();
        let grown = resumed.query(1);
        assert_eq!(grown.clusters[0].len(), 10);
    }

    #[test]
    fn from_snapshot_rejects_inconsistent_shapes() {
        let boot = bootstrap();
        let config = AdaLshConfig::new(rule());
        let online = OnlineAdaLsh::new(&boot, config.clone()).unwrap();
        let good = online.snapshot();

        let mut missing_state = good.clone();
        missing_state.states.pop();
        assert!(OnlineAdaLsh::from_snapshot(missing_state, config.clone()).is_err());

        let mut bad_boot = good.clone();
        bad_boot.bootstrap_len = 0;
        assert!(OnlineAdaLsh::from_snapshot(bad_boot, config.clone()).is_err());

        let mut deep_state = good;
        deep_state.states[0].level = u16::MAX;
        let err = match OnlineAdaLsh::from_snapshot(deep_state, config) {
            Ok(_) => panic!("over-deep state must be rejected"),
            Err(e) => e,
        };
        assert!(err.contains("level"), "{err}");
    }
}
