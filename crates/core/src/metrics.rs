//! Accuracy and performance metrics (paper §6.2).
//!
//! * **Set metrics** — Precision/Recall/F1 of the filtering output
//!   against the gold record set `O*` (§2.1); "F1 Gold" when the gold is
//!   the ground truth's top-k records, "F1 Target" when it is the
//!   `Pairs` output (Appendix E.1).
//! * **Ranked-cluster metrics** — mean Average Precision / Recall over
//!   prefix unions of the size-ranked clusterings (§6.2.1's worked
//!   example fixes the exact formula).
//! * **Performance** — dataset-reduction percentage and the benchmark-ER
//!   speedup model: `WholeTime / (FilteringTime + ReducedTime)` where the
//!   benchmark ER computes all pairwise similarities, and the
//!   with-recovery variant adds `RecoveryTime` for comparing every
//!   excluded record against every output record.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::time::Duration;

/// Precision / recall / F1 of an output record set against a gold set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetMetrics {
    /// `|O ∩ O*| / |O|`.
    pub precision: f64,
    /// `|O ∩ O*| / |O*|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes set precision/recall/F1 (paper §2.1). Inputs need not be
/// sorted; duplicates are ignored. Conventions: empty output ⇒ precision
/// 1; empty gold ⇒ recall 1.
pub fn set_metrics(output: &[u32], gold: &[u32]) -> SetMetrics {
    let o: HashSet<u32> = output.iter().copied().collect();
    let g: HashSet<u32> = gold.iter().copied().collect();
    let inter = o.intersection(&g).count() as f64;
    let precision = if o.is_empty() {
        1.0
    } else {
        inter / o.len() as f64
    };
    let recall = if g.is_empty() {
        1.0
    } else {
        inter / g.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    SetMetrics {
        precision,
        recall,
        f1,
    }
}

/// Mean Average Precision and Recall over ranked clusterings (§6.2.1).
///
/// Both clusterings are ranked by descending cluster size (callers
/// usually already have them ranked; this function re-sorts defensively,
/// breaking ties by smallest record id for determinism). For each prefix
/// `i = 1..=k`: `Pᵢ = |Uᵢ ∩ U*ᵢ| / |Uᵢ|` and `Rᵢ = |Uᵢ ∩ U*ᵢ| / |U*ᵢ|`
/// where `Uᵢ` is the union of the first `i` clusters. Missing prefixes
/// (fewer than `k` clusters) contribute their last available union.
pub fn map_mar(output: &[Vec<u32>], gold: &[Vec<u32>], k: usize) -> (f64, f64) {
    assert!(k >= 1, "k must be positive");
    let rank = |cs: &[Vec<u32>]| -> Vec<Vec<u32>> {
        let mut sorted: Vec<Vec<u32>> = cs.to_vec();
        for c in &mut sorted {
            c.sort_unstable();
        }
        sorted.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        sorted
    };
    let out = rank(output);
    let gld = rank(gold);
    let mut u_out: HashSet<u32> = HashSet::new();
    let mut u_gold: HashSet<u32> = HashSet::new();
    let (mut sum_p, mut sum_r) = (0.0, 0.0);
    for i in 0..k {
        if let Some(c) = out.get(i) {
            u_out.extend(c.iter().copied());
        }
        if let Some(c) = gld.get(i) {
            u_gold.extend(c.iter().copied());
        }
        let inter = u_out.intersection(&u_gold).count() as f64;
        sum_p += if u_out.is_empty() {
            1.0
        } else {
            inter / u_out.len() as f64
        };
        sum_r += if u_gold.is_empty() {
            1.0
        } else {
            inter / u_gold.len() as f64
        };
    }
    (sum_p / k as f64, sum_r / k as f64)
}

/// Dataset-reduction percentage: `100 · |O| / |R|` (§6.2.2 — e.g. 100
/// output records from 1000 is a 10% reduction figure).
pub fn reduction_pct(output_records: usize, total_records: usize) -> f64 {
    assert!(total_records > 0);
    100.0 * output_records as f64 / total_records as f64
}

/// The benchmark-ER speedup model of §6.2.2.
///
/// `pair_cost` is the measured cost of one pairwise similarity (seconds);
/// the benchmark ER algorithm computes all `n·(n−1)/2` similarities, and
/// the benchmark recovery algorithm compares each of the `|O|` output
/// records with each of the `n − |O|` excluded records.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupModel {
    /// Seconds per pairwise similarity.
    pub pair_cost: f64,
}

impl SpeedupModel {
    /// Benchmark ER time over `n` records.
    pub fn er_time(&self, n: usize) -> f64 {
        self.pair_cost * n as f64 * (n as f64 - 1.0) / 2.0
    }

    /// Benchmark recovery time: `|O| · (n − |O|)` comparisons.
    pub fn recovery_time(&self, output: usize, n: usize) -> f64 {
        assert!(output <= n);
        self.pair_cost * output as f64 * (n - output) as f64
    }

    /// `Speedup w/o Recovery = WholeTime / (FilteringTime + ReducedTime)`.
    pub fn speedup_without_recovery(&self, n: usize, output: usize, filtering: Duration) -> f64 {
        let whole = self.er_time(n);
        whole / (filtering.as_secs_f64() + self.er_time(output))
    }

    /// `Speedup with Recovery = WholeTime / (FilteringTime + ReducedTime
    /// + RecoveryTime)`.
    pub fn speedup_with_recovery(&self, n: usize, output: usize, filtering: Duration) -> f64 {
        let whole = self.er_time(n);
        whole / (filtering.as_secs_f64() + self.er_time(output) + self.recovery_time(output, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_metrics_basic() {
        let m = set_metrics(&[1, 2, 3, 4], &[3, 4, 5]);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12);
        let f1 = 2.0 * 0.5 * (2.0 / 3.0) / (0.5 + 2.0 / 3.0);
        assert!((m.f1 - f1).abs() < 1e-12);
    }

    #[test]
    fn set_metrics_perfect_and_disjoint() {
        let p = set_metrics(&[1, 2], &[1, 2]);
        assert_eq!((p.precision, p.recall, p.f1), (1.0, 1.0, 1.0));
        let d = set_metrics(&[1], &[2]);
        assert_eq!((d.precision, d.recall, d.f1), (0.0, 0.0, 0.0));
    }

    #[test]
    fn set_metrics_handles_duplicates_and_empties() {
        let m = set_metrics(&[1, 1, 2], &[1, 2]);
        assert_eq!(m.precision, 1.0);
        let e = set_metrics(&[], &[1]);
        assert_eq!(e.precision, 1.0);
        assert_eq!(e.recall, 0.0);
    }

    #[test]
    fn map_mar_paper_worked_example() {
        // §6.2.1: C = {{a,b,c,f},{e}}, C* = {{a,b,c},{e,g}} with k = 2
        // ⇒ mAP = (3/4 + 4/5)/2 = 0.775, mAR = (1 + 4/5)/2 = 0.9.
        // Encode: a=0, b=1, c=2, f=3, e=4, g=5.
        let output = vec![vec![0, 1, 2, 3], vec![4]];
        let gold = vec![vec![0, 1, 2], vec![4, 5]];
        let (map, mar) = map_mar(&output, &gold, 2);
        assert!((map - 0.775).abs() < 1e-12, "mAP {map}");
        assert!((mar - 0.9).abs() < 1e-12, "mAR {mar}");
    }

    #[test]
    fn map_mar_perfect_match() {
        let cs = vec![vec![0, 1, 2], vec![3, 4]];
        let (map, mar) = map_mar(&cs, &cs, 2);
        assert_eq!((map, mar), (1.0, 1.0));
    }

    #[test]
    fn map_mar_ranks_by_size() {
        // Give clusters out of order: ranking must fix it.
        let output = vec![vec![9], vec![0, 1, 2]];
        let gold = vec![vec![0, 1, 2], vec![9]];
        let (map, mar) = map_mar(&output, &gold, 2);
        assert_eq!((map, mar), (1.0, 1.0));
    }

    #[test]
    fn map_mar_fewer_clusters_than_k() {
        let output = vec![vec![0, 1]];
        let gold = vec![vec![0, 1], vec![2]];
        let (map, mar) = map_mar(&output, &gold, 2);
        // Prefix 1: P = 1, R = 1. Prefix 2: U = {0,1}, U* = {0,1,2}:
        // P = 1, R = 2/3.
        assert!((map - 1.0).abs() < 1e-12);
        assert!((mar - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_percentage() {
        assert!((reduction_pct(100, 1000) - 10.0).abs() < 1e-12);
        assert!((reduction_pct(0, 10) - 0.0).abs() < 1e-12);
        assert!((reduction_pct(10, 10) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_model_arithmetic() {
        let m = SpeedupModel { pair_cost: 1e-6 };
        // n = 1000: whole = 499500 µs.
        assert!((m.er_time(1000) - 0.4995).abs() < 1e-9);
        assert!((m.recovery_time(100, 1000) - 0.09).abs() < 1e-12);
        // Filtering free, output 100 ⇒ speedup = 499500/4950 ≈ 100.9.
        let s = m.speedup_without_recovery(1000, 100, Duration::ZERO);
        assert!((s - 0.4995 / 0.004_95).abs() < 1e-6);
        let sr = m.speedup_with_recovery(1000, 100, Duration::ZERO);
        assert!(sr < s, "recovery time can only reduce the speedup");
    }

    #[test]
    fn speedup_accounts_for_filtering_time() {
        let m = SpeedupModel { pair_cost: 1e-6 };
        let fast = m.speedup_without_recovery(1000, 100, Duration::ZERO);
        let slow = m.speedup_without_recovery(1000, 100, Duration::from_secs(1));
        assert!(slow < fast);
    }
}
