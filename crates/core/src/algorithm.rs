//! Algorithm 1 — Adaptive LSH (paper §4).
//!
//! The engine drives a pool of clusters. Each round it selects a cluster
//! (Largest-First by default — optimal within the Theorem-1 family; other
//! strategies are available for the ablation benches), and either
//!
//! * declares it **final** — it is the outcome of the last sequence
//!   function `H_L` (unless `require_pairwise_final`) or of `P`;
//! * applies the **next sequence function** `H_{t+1}`; or
//! * **jumps ahead to `P`** when the Definition-3 cost gate says pairwise
//!   computation is cheaper (Line 5).
//!
//! Termination follows Line 11 / Appendix B.5: stop once the `k` largest
//! clusters are all final. The **incremental mode** (§4.2) surfaces each
//! final cluster the moment it is known; with Largest-First this yields
//! the Theorem-2 guarantee that the top-`k′` prefix is produced at the
//! minimum cost for every `k′ < k`.

use std::time::{Duration, Instant};

use adalsh_data::{MatchRule, RecordStore};
use adalsh_lsh::mix::derive_seed;
use adalsh_lsh::MinhashScheme;
use adalsh_obs::{TraceSink, Value};
use rand::{Rng, SeedableRng};

use crate::bins::BinIndex;
use crate::cost::CostModel;
use crate::hashing::{RecordHashState, SequenceHasher};
use crate::oracle::{NoisyOracle, OracleMode, OracleSpend, SpendLedger, VerdictOverlay};
use crate::pairwise::{apply_pairwise_oracle, apply_pairwise_traced, DEFAULT_PAIR_BLOCK};
use crate::sequence::{design, SequenceSpec};
use crate::stats::Stats;
use crate::transitive::apply_transitive_threaded;

/// Which cluster to process next. Largest-First is the paper's (provably
/// optimal) choice; the others exist for the optimality ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Paper's strategy (Theorems 1–2): always the largest cluster.
    #[default]
    LargestFirst,
    /// Adversarial baseline: always the smallest cluster.
    SmallestFirst,
    /// Uniformly random cluster.
    Random,
    /// First-in-first-out.
    Fifo,
}

/// Configuration of an [`AdaLsh`] engine.
#[derive(Debug, Clone)]
pub struct AdaLshConfig {
    /// Match rule defining ground-truth-free record equivalence.
    pub rule: MatchRule,
    /// Sequence-design parameters (budgets, ε, seed).
    pub spec: SequenceSpec,
    /// When true, clusters are final only after `P` verified them —
    /// LSH-blocking semantics (§6.1.1). adaLSH proper uses `false`:
    /// `H_L`'s output is trusted.
    pub require_pairwise_final: bool,
    /// Cluster-selection strategy (ablation hook; default Largest-First).
    pub selection: SelectionStrategy,
    /// Appendix-E.2 noise factor on the cost gate (1.0 = clean).
    pub cost_noise: f64,
    /// Ablation: never jump ahead to `P` before the last level (the
    /// "family condition 1 removed" variant discussed in Appendix D.2).
    pub disable_jump_gate: bool,
    /// Use the wall-clock cost model (100 samples) instead of the
    /// deterministic analytic model.
    pub measured_cost: bool,
    /// How shingle parts evaluate MinHash: `Classic` (one keyed
    /// permutation per slot — bit-compatible with every previously
    /// persisted hash state) or `Doph` (densified one-permutation
    /// hashing: all `K·L` slots in one pass over the set). Hash values
    /// differ between schemes, so snapshots record the scheme and a
    /// resume under the other is rejected upstream.
    pub minhash_scheme: MinhashScheme,
    /// Hash records on this many worker threads inside each transitive
    /// invocation. Defaults to the machine's available parallelism; set
    /// to 1 for the sequential reference (output and `Stats` counters
    /// are identical either way, so 1 is an escape hatch for timing
    /// reproducibility, not correctness).
    pub threads: usize,
    /// Extend the sequence so its last budget is at least ~2·|R|,
    /// guaranteeing the Line-5 gate can fire on a cluster of *any* size
    /// before the sequence ends — no giant cluster is ever accepted as
    /// final without either sharp hashing or `P` verification. This is
    /// how a sensible `L` is chosen for the dataset at hand (the paper
    /// takes `H₁…H_L` as given input). Disable to use
    /// `spec.max_budget` verbatim.
    pub scale_max_budget: bool,
    /// Structured-trace sink (see `adalsh_obs`). Disabled by default —
    /// one predicted branch per decision point; no field computation or
    /// timestamps happen unless a subscriber is attached.
    pub trace: TraceSink,
    /// Which pairwise adjudicator `P` consults: the exact rule (default,
    /// byte-for-byte today's path) or a seeded noisy oracle with error /
    /// fault / cost models and a per-run spend budget (see
    /// [`crate::oracle`]).
    pub oracle: OracleMode,
    /// External-verdict overlay consulted by a noisy oracle before any
    /// noise is sampled (the serve layer's `POST /adjudicate` writes
    /// here). Ignored under [`OracleMode::Exact`].
    pub oracle_overlay: Option<std::sync::Arc<VerdictOverlay>>,
}

impl AdaLshConfig {
    /// Default configuration for a rule: paper-default exponential
    /// budgets, Largest-First, clean analytic cost model.
    pub fn new(rule: MatchRule) -> Self {
        Self {
            rule,
            spec: SequenceSpec::default(),
            require_pairwise_final: false,
            selection: SelectionStrategy::LargestFirst,
            cost_noise: 1.0,
            disable_jump_gate: false,
            measured_cost: false,
            minhash_scheme: MinhashScheme::default(),
            threads: default_threads(),
            scale_max_budget: true,
            trace: TraceSink::disabled(),
            oracle: OracleMode::Exact,
            oracle_overlay: None,
        }
    }
}

/// The default worker-thread count: the machine's available parallelism,
/// or 1 when it cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The result of a filtering run.
#[derive(Debug, Clone)]
pub struct FilterOutput {
    /// The (up to) `k` final clusters, sorted by descending size.
    pub clusters: Vec<Vec<u32>>,
    /// Operation counters.
    pub stats: Stats,
    /// Wall-clock filtering time.
    pub wall: Duration,
    /// Oracle spend ledger of the run — `Some` only under
    /// [`OracleMode::Noisy`]. Kept outside [`Stats`] so the zero-noise
    /// noisy path stays bit-identical to the exact path in `Stats`.
    pub oracle: Option<OracleSpend>,
}

impl FilterOutput {
    /// Union of all output clusters' record ids, sorted ascending.
    pub fn records(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self.clusters.iter().flatten().copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Total number of records in the output.
    pub fn num_records(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }
}

/// A filtering method: anything that reduces a dataset to the records of
/// (approximately) its top-`k` entities.
pub trait FilterMethod {
    /// Display name used in experiment tables (e.g. `adaLSH`, `LSH1280`).
    fn name(&self) -> String;
    /// Runs the filter for the `k` largest entities.
    fn filter(&mut self, store: &dyn RecordStore, k: usize) -> FilterOutput;
}

/// Tag carried by every cluster in the pool: which function produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClusterLevel {
    /// Produced by sequence function `H_t` (1-based).
    Hashed(u16),
    /// Produced by the pairwise computation function `P`.
    Pairwise,
}

struct ArenaEntry {
    records: Vec<u32>,
    level: ClusterLevel,
}

/// Cluster pool: Largest-First uses the bin index; other strategies use a
/// plain list with the appropriate O(n) pop (ablations only).
enum Pool {
    Bins(BinIndex),
    List(Vec<(u32, u32)>),
}

impl Pool {
    fn new(strategy: SelectionStrategy) -> Self {
        match strategy {
            SelectionStrategy::LargestFirst => Pool::Bins(BinIndex::new()),
            _ => Pool::List(Vec::new()),
        }
    }

    fn push(&mut self, size: u32, handle: u32) {
        match self {
            Pool::Bins(b) => b.push(size, handle),
            Pool::List(v) => v.push((size, handle)),
        }
    }

    fn peek_max_size(&self) -> Option<u32> {
        match self {
            Pool::Bins(b) => b.peek_largest_size(),
            Pool::List(v) => v.iter().map(|&(s, _)| s).max(),
        }
    }

    fn pop(&mut self, strategy: SelectionStrategy, rng: &mut impl Rng) -> Option<(u32, u32)> {
        match self {
            Pool::Bins(b) => b.pop_largest().map(|e| (e.size, e.handle)),
            Pool::List(v) => {
                if v.is_empty() {
                    return None;
                }
                let idx = match strategy {
                    SelectionStrategy::LargestFirst => unreachable!("uses bins"),
                    SelectionStrategy::SmallestFirst => {
                        let mut best = 0;
                        for i in 1..v.len() {
                            if v[i].0 < v[best].0 {
                                best = i;
                            }
                        }
                        best
                    }
                    SelectionStrategy::Random => rng.random_range(0..v.len()),
                    SelectionStrategy::Fifo => 0,
                };
                Some(if strategy == SelectionStrategy::Fifo {
                    v.remove(idx) // preserve order for FIFO
                } else {
                    v.swap_remove(idx)
                })
            }
        }
    }
}

/// The Adaptive LSH engine (Algorithm 1), bound to a dataset's schema and
/// cost profile.
pub struct AdaLsh {
    config: AdaLshConfig,
    hasher: SequenceHasher,
    cost: CostModel,
}

impl AdaLsh {
    /// Designs the sequence for a record store (in-RAM dataset or mapped
    /// store file) and builds the engine.
    ///
    /// Errors if the store is empty, the rule shape is unsupported, or no
    /// feasible scheme exists within the budget schedule.
    pub fn for_dataset(store: &dyn RecordStore, config: AdaLshConfig) -> Result<Self, String> {
        if store.is_empty() {
            return Err("cannot design a sequence for an empty record store".to_string());
        }
        let dims: Vec<usize> = (0..store.schema().num_fields())
            .map(|f| match store.field(0, f) {
                adalsh_data::FieldRef::Dense(v) => v.len(),
                adalsh_data::FieldRef::Shingles(_) => 0,
            })
            .collect();
        let mut spec = config.spec;
        if config.scale_max_budget {
            // Last-level gate headroom: with a doubling schedule the final
            // increment is ~max_budget/2, and the unit-cost ratio of
            // hashing to comparison is ≥ 1/2 for every family pair we
            // ship, so max_budget ≥ 2·|R| makes the gate's critical size
            // exceed |R| at the last level.
            let needed = (store.len() as u64).next_power_of_two() * 2;
            spec.max_budget = spec.max_budget.max(needed);
        }
        let designed = design(&config.rule, store.schema(), &dims, &spec)?;
        let mut hasher =
            SequenceHasher::with_scheme(designed.parts, designed.levels, config.minhash_scheme);
        let cost = if config.measured_cost {
            CostModel::measured(&mut hasher, store, &config.rule, 100, config.spec.seed)
        } else {
            CostModel::analytic(&hasher, store, &config.rule)
        }
        .with_noise(config.cost_noise);
        if config.trace.enabled() {
            for (idx, level) in hasher.levels().iter().enumerate() {
                config.trace.emit(
                    "design_level",
                    &[
                        ("level", Value::U64(idx as u64 + 1)),
                        ("budget", Value::U64(level.budget())),
                    ],
                );
            }
        }
        Ok(Self {
            config,
            hasher,
            cost,
        })
    }

    /// Installs (or replaces) the trace sink after construction. Useful
    /// when the engine is built indirectly — e.g. restored from a
    /// snapshot — and the observer only exists afterwards.
    pub fn set_trace(&mut self, sink: TraceSink) {
        self.config.trace = sink;
    }

    /// The engine's trace sink.
    pub fn trace(&self) -> &TraceSink {
        &self.config.trace
    }

    /// Installs (or replaces) the external-verdict overlay consulted by
    /// a noisy oracle. A no-op for the exact oracle. Useful when the
    /// overlay is created after the engine — e.g. by a serving layer
    /// accepting `/adjudicate` corrections.
    pub fn set_oracle_overlay(&mut self, overlay: Option<std::sync::Arc<VerdictOverlay>>) {
        self.config.oracle_overlay = overlay;
    }

    /// Number of sequence functions `L` in the designed sequence.
    pub fn num_levels(&self) -> usize {
        self.hasher.num_levels()
    }

    /// The engine's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The designed level schemes (for inspection and reports).
    pub fn levels(&self) -> &[crate::hashing::LevelScheme] {
        self.hasher.levels()
    }

    /// Runs the filter for the top-`k` entities.
    pub fn run(&mut self, store: &dyn RecordStore, k: usize) -> FilterOutput {
        self.run_incremental(store, k, |_, _| {})
    }

    /// Incremental mode (§4.2): `on_final(rank, cluster)` fires the moment
    /// each final cluster is known. With Largest-First, finals appear in
    /// descending size order and the top-`k′` prefix is produced at the
    /// minimum cost for every `k′ ≤ k` (Theorem 2).
    pub fn run_incremental(
        &mut self,
        store: &dyn RecordStore,
        k: usize,
        on_final: impl FnMut(usize, &[u32]),
    ) -> FilterOutput {
        let mut states: Vec<RecordHashState> = vec![RecordHashState::default(); store.len()];
        self.run_with_states(store, k, &mut states, on_final)
    }

    /// Like [`AdaLsh::run_incremental`], but with caller-owned per-record
    /// hash states. States persist the raw hash work already spent on
    /// each record (Property 4), so repeated runs over a growing dataset
    /// — the online setting of §9 — only hash what is new. The caller
    /// must keep `states[i]` paired with record `i` and never reuse
    /// states across engines.
    ///
    /// # Panics
    /// Panics if `k == 0` or `states.len() != dataset.len()`.
    pub fn run_with_states(
        &mut self,
        store: &dyn RecordStore,
        k: usize,
        states: &mut [RecordHashState],
        mut on_final: impl FnMut(usize, &[u32]),
    ) -> FilterOutput {
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(states.len(), store.len(), "one state per record");
        let start = Instant::now();
        let mut stats = Stats::default();
        let n = store.len();
        let num_levels = self.hasher.num_levels();
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(self.config.spec.seed, 0xA1));
        let sink = self.config.trace.clone();
        sink.emit(
            "run_start",
            &[
                ("records", Value::U64(n as u64)),
                ("k", Value::U64(k as u64)),
                ("levels", Value::U64(num_levels as u64)),
                ("threads", Value::U64(self.config.threads as u64)),
                ("source", Value::Str(store.source())),
            ],
        );

        let mut arena: Vec<Option<ArenaEntry>> = Vec::new();
        let mut pool = Pool::new(self.config.selection);
        let mut finals: Vec<Vec<u32>> = Vec::new();
        // One spend ledger per run: the budget is a per-run contract, and
        // all charging happens in the sequential round loop, so the cutoff
        // point replays identically at any thread count.
        let mut oracle_ledger: Option<SpendLedger> = match &self.config.oracle {
            OracleMode::Exact => None,
            OracleMode::Noisy(cfg) => Some(SpendLedger::new(cfg.budget)),
        };

        // Line 1: apply H₁ to the whole dataset.
        let all: Vec<u32> = (0..n as u32).collect();
        let predicted = self.cost.hash_increment_cost(0, n);
        stats.modeled_cost += predicted;
        let before = stats;
        let round_start = sink.enabled().then(Instant::now);
        let first = apply_transitive_threaded(
            &self.hasher,
            states,
            store,
            &all,
            1,
            self.config.threads,
            &mut stats,
        );
        if let Some(t0) = round_start {
            emit_hash_round(&sink, 1, n, &before, &stats, first.len(), t0, predicted);
        }
        for c in first {
            push_cluster(&mut arena, &mut pool, c, ClusterLevel::Hashed(1));
        }

        // Lines 2–14.
        loop {
            // Line 11 generalized: stop when the k largest clusters are
            // all final (for Largest-First this is exactly "k finals").
            // Strict comparison: clusters *tied* with the k-th final are
            // still resolved, so the canonical sort below picks among all
            // tied candidates deterministically — otherwise the answer
            // under ties would depend on processing order and spuriously
            // differ from exact resolution.
            if finals.len() >= k {
                let mut sizes: Vec<usize> = finals.iter().map(Vec::len).collect();
                sizes.sort_unstable_by(|a, b| b.cmp(a));
                let kth = sizes[k - 1] as u32;
                if pool.peek_max_size().is_none_or(|m| m < kth) {
                    break;
                }
            }
            let Some((_, handle)) = pool.pop(self.config.selection, &mut rng) else {
                break; // fewer than k clusters exist
            };
            stats.rounds += 1;
            let entry = arena[handle as usize].take().expect("handle valid");
            let size = entry.records.len();
            let is_final = match entry.level {
                ClusterLevel::Pairwise => true,
                ClusterLevel::Hashed(t) => {
                    t as usize == num_levels && !self.config.require_pairwise_final
                }
            };
            if is_final {
                if sink.enabled() {
                    let (origin, level) = match entry.level {
                        ClusterLevel::Pairwise => ("pairwise", 0u64),
                        ClusterLevel::Hashed(t) => ("hashed", t as u64),
                    };
                    sink.emit(
                        "final_cluster",
                        &[
                            ("rank", Value::U64(finals.len() as u64)),
                            ("size", Value::U64(size as u64)),
                            ("origin", Value::Str(origin)),
                            ("level", Value::U64(level)),
                        ],
                    );
                }
                on_final(finals.len(), &entry.records);
                finals.push(entry.records);
                continue;
            }
            let t = match entry.level {
                ClusterLevel::Hashed(t) => t as usize,
                ClusterLevel::Pairwise => unreachable!("pairwise is always final"),
            };
            // Line 5: jump-ahead gate (forced when no H_{t+1} exists).
            let forced = t == num_levels;
            let use_pairwise =
                forced || (!self.config.disable_jump_gate && self.cost.jump_to_pairwise(t, size));
            if sink.enabled() {
                let mut fields = vec![
                    ("level", Value::U64(t as u64)),
                    ("cluster_size", Value::U64(size as u64)),
                    (
                        "predicted_pairwise_cost",
                        Value::F64(self.cost.pairwise_cost(size)),
                    ),
                    (
                        "action",
                        Value::Str(if use_pairwise { "pairwise" } else { "hash" }),
                    ),
                    ("forced", Value::U64(u64::from(forced))),
                ];
                if !forced {
                    // `hash_increment_cost(t, _)` indexes level t+1, which
                    // does not exist on a forced jump.
                    fields.push((
                        "predicted_hash_cost",
                        Value::F64(self.cost.hash_increment_cost(t, size)),
                    ));
                }
                sink.emit("gate", &fields);
            }
            let (subs, level) = if use_pairwise {
                let predicted = self.cost.pairwise_cost(size);
                stats.modeled_cost += predicted;
                let before = stats;
                let round_start = sink.enabled().then(Instant::now);
                let (subs, ptrace) = match (&self.config.oracle, &mut oracle_ledger) {
                    (OracleMode::Noisy(ocfg), Some(ledger)) => {
                        let oracle = NoisyOracle::new(&self.config.rule, ocfg.clone())
                            .with_overlay(self.config.oracle_overlay.clone());
                        apply_pairwise_oracle(
                            store,
                            &oracle,
                            &entry.records,
                            self.config.threads,
                            DEFAULT_PAIR_BLOCK,
                            ledger,
                            &sink,
                            &mut stats,
                        )
                    }
                    _ => apply_pairwise_traced(
                        store,
                        &self.config.rule,
                        &entry.records,
                        self.config.threads,
                        DEFAULT_PAIR_BLOCK,
                        &sink,
                        &mut stats,
                    ),
                };
                if let Some(t0) = round_start {
                    sink.emit(
                        "pairwise",
                        &[
                            ("cluster_size", Value::U64(size as u64)),
                            (
                                "pairs",
                                Value::U64(stats.pair_comparisons - before.pair_comparisons),
                            ),
                            (
                                "distance_evals",
                                Value::U64(stats.distance_evals - before.distance_evals),
                            ),
                            ("kernel_checks", Value::U64(ptrace.kernel_checks)),
                            ("early_exits", Value::U64(ptrace.early_exits)),
                            ("blocks", Value::U64(ptrace.blocks)),
                            ("subclusters", Value::U64(subs.len() as u64)),
                            ("wall_micros", Value::U64(t0.elapsed().as_micros() as u64)),
                            ("predicted_cost", Value::F64(predicted)),
                        ],
                    );
                }
                (subs, ClusterLevel::Pairwise)
            } else {
                let predicted = self.cost.hash_increment_cost(t, size);
                stats.modeled_cost += predicted;
                let before = stats;
                let round_start = sink.enabled().then(Instant::now);
                let subs = apply_transitive_threaded(
                    &self.hasher,
                    states,
                    store,
                    &entry.records,
                    t + 1,
                    self.config.threads,
                    &mut stats,
                );
                if let Some(t0) = round_start {
                    emit_hash_round(
                        &sink,
                        t + 1,
                        size,
                        &before,
                        &stats,
                        subs.len(),
                        t0,
                        predicted,
                    );
                }
                (subs, ClusterLevel::Hashed(t as u16 + 1))
            };
            for c in subs {
                push_cluster(&mut arena, &mut pool, c, level);
            }
        }

        // Canonicalize: records ascending within each cluster, clusters by
        // (size desc, smallest id asc). Cluster record order out of the
        // forest is leaf-chain order, which is not stable across methods —
        // without this, equal-size clusters tie-break differently in
        // adaLSH and Pairs and the outputs spuriously diverge.
        for c in &mut finals {
            c.sort_unstable();
        }
        finals.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        // `finals` counts final_cluster events — captured before the
        // truncation so the trace reconciles.
        let finals_resolved = finals.len();
        finals.truncate(k);
        let wall = start.elapsed();
        if sink.enabled() {
            let mut fields = vec![
                ("rounds", Value::U64(stats.rounds)),
                ("finals", Value::U64(finals_resolved as u64)),
                ("hash_evals", Value::U64(stats.hash_evals)),
                ("distance_evals", Value::U64(stats.distance_evals)),
                ("pair_comparisons", Value::U64(stats.pair_comparisons)),
                ("bucket_inserts", Value::U64(stats.bucket_inserts)),
                ("transitive_calls", Value::U64(stats.transitive_calls)),
                ("pairwise_calls", Value::U64(stats.pairwise_calls)),
                ("modeled_cost", Value::F64(stats.modeled_cost)),
                ("wall_micros", Value::U64(wall.as_micros() as u64)),
            ];
            if let Some(ledger) = &oracle_ledger {
                // Ledger mirror: the validator reconciles these against
                // the segment's oracle_call events bit-for-bit.
                let s = ledger.spend();
                fields.extend([
                    ("oracle_calls", Value::U64(s.calls)),
                    ("oracle_attempts", Value::U64(s.attempts)),
                    ("oracle_retries", Value::U64(s.retries)),
                    ("oracle_votes", Value::U64(s.votes)),
                    ("oracle_timeouts", Value::U64(s.timeouts)),
                    ("oracle_errors", Value::U64(s.transient_errors)),
                    ("oracle_degraded", Value::U64(s.degraded)),
                    ("oracle_spent", Value::U64(s.spent)),
                ]);
            }
            sink.emit("run_end", &fields);
            sink.flush();
        }
        FilterOutput {
            clusters: finals,
            stats,
            wall,
            oracle: oracle_ledger.map(SpendLedger::into_spend),
        }
    }
}

/// Emits one `hash_round` event from the `Stats` delta of a transitive
/// invocation. `keys_emitted` is the bucket-insert delta: one insert per
/// (record, emitted key) — exactly the paper's "keys emitted" notion.
#[allow(clippy::too_many_arguments)]
fn emit_hash_round(
    sink: &TraceSink,
    level: usize,
    cluster_size: usize,
    before: &Stats,
    after: &Stats,
    subclusters: usize,
    round_start: Instant,
    predicted_cost: f64,
) {
    sink.emit(
        "hash_round",
        &[
            ("level", Value::U64(level as u64)),
            ("cluster_size", Value::U64(cluster_size as u64)),
            (
                "hash_evals",
                Value::U64(after.hash_evals - before.hash_evals),
            ),
            (
                "keys_emitted",
                Value::U64(after.bucket_inserts - before.bucket_inserts),
            ),
            ("subclusters", Value::U64(subclusters as u64)),
            (
                "wall_micros",
                Value::U64(round_start.elapsed().as_micros() as u64),
            ),
            ("predicted_cost", Value::F64(predicted_cost)),
        ],
    );
}

fn push_cluster(
    arena: &mut Vec<Option<ArenaEntry>>,
    pool: &mut Pool,
    records: Vec<u32>,
    level: ClusterLevel,
) {
    debug_assert!(!records.is_empty());
    let size = records.len() as u32;
    let handle = arena.len() as u32;
    arena.push(Some(ArenaEntry { records, level }));
    pool.push(size, handle);
}

impl FilterMethod for AdaLsh {
    fn name(&self) -> String {
        "adaLSH".to_string()
    }

    fn filter(&mut self, store: &dyn RecordStore, k: usize) -> FilterOutput {
        self.run(store, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::apply_pairwise;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, Record, Schema, ShingleSet};

    /// A dataset with planted entities: entity e has `sizes[e]` records,
    /// each sharing a core of shingles with light noise.
    fn planted(sizes: &[usize], seed: u64) -> Dataset {
        use adalsh_lsh::mix::derive_seed as ds;
        let schema = Schema::single("s", FieldKind::Shingles);
        let mut records = Vec::new();
        let mut gt = Vec::new();
        for (e, &sz) in sizes.iter().enumerate() {
            let base: Vec<u64> = (0..20).map(|i| (e as u64) * 1000 + i).collect();
            for r in 0..sz {
                let mut s = base.clone();
                // Two noise shingles per record — far below the 0.4
                // Jaccard distance threshold.
                s.push(ds(seed, (e * 10_000 + r) as u64) % 7 + (e as u64) * 1000 + 500);
                s.push(ds(seed, (e * 10_000 + r + 5000) as u64) % 7 + (e as u64) * 1000 + 600);
                records.push(Record::single(adalsh_data::FieldValue::Shingles(
                    ShingleSet::new(s),
                )));
                gt.push(e as u32);
            }
        }
        Dataset::new(schema, records, gt)
    }

    fn jaccard_config() -> AdaLshConfig {
        AdaLshConfig::new(MatchRule::threshold(0, FieldDistance::Jaccard, 0.4))
    }

    #[test]
    fn finds_planted_top_k() {
        let d = planted(&[30, 20, 10, 3, 2, 1, 1, 1], 7);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out = ada.run(&d, 3);
        assert_eq!(out.clusters.len(), 3);
        let sizes: Vec<usize> = out.clusters.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![30, 20, 10]);
        assert_eq!(out.records(), d.gold_records(3));
    }

    #[test]
    fn output_clusters_match_ground_truth_entities() {
        let d = planted(&[25, 15, 8, 2, 2], 3);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out = ada.run(&d, 2);
        for cluster in &out.clusters {
            let e0 = d.entity_of(cluster[0]);
            assert!(
                cluster.iter().all(|&r| d.entity_of(r) == e0),
                "cluster mixes entities"
            );
        }
    }

    #[test]
    fn k_larger_than_entity_count() {
        let d = planted(&[5, 3], 1);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out = ada.run(&d, 10);
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn k_equals_one() {
        let d = planted(&[12, 6, 2], 5);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out = ada.run(&d, 1);
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 12);
    }

    #[test]
    fn incremental_mode_descending_order() {
        let d = planted(&[20, 12, 6, 2, 1], 11);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let mut seen: Vec<usize> = Vec::new();
        let _ = ada.run_incremental(&d, 3, |rank, c| {
            assert_eq!(rank, seen.len());
            seen.push(c.len());
        });
        assert_eq!(seen.len(), 3);
        assert!(
            seen.windows(2).all(|w| w[0] >= w[1]),
            "Largest-First emits finals in descending size order: {seen:?}"
        );
    }

    #[test]
    fn theorem2_prefix_property() {
        // Same engine config, k=2 vs k=5: the first 2 finals must agree.
        let d = planted(&[18, 11, 7, 4, 2, 1], 23);
        let mk = || AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out2 = mk().run(&d, 2);
        let out5 = mk().run(&d, 5);
        assert_eq!(out2.clusters[..], out5.clusters[..2]);
        // And the k=2 run must not cost more than the k=5 run.
        assert!(out2.stats.modeled_cost <= out5.stats.modeled_cost + 1e-9);
    }

    #[test]
    fn matches_exact_pairwise_result() {
        // adaLSH's output must (essentially always) equal the exact
        // transitive closure's top-k.
        let d = planted(&[16, 9, 5, 2, 1, 1], 31);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out = ada.run(&d, 3);
        let mut st = Stats::default();
        let all: Vec<u32> = (0..d.len() as u32).collect();
        let mut exact = apply_pairwise(&d, &jaccard_config().rule, &all, 1, &mut st);
        exact.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut expected: Vec<u32> = exact[..3].iter().flatten().copied().collect();
        expected.sort_unstable();
        assert_eq!(out.records(), expected);
    }

    #[test]
    fn adaptive_costs_less_than_full_hashing() {
        // Hash evaluations must be far below "every record at max level".
        let d = planted(&[25, 10, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1], 41);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let max_budget: u64 = ada.levels().last().unwrap().budget();
        let out = ada.run(&d, 2);
        let full_cost = max_budget * d.len() as u64;
        assert!(
            out.stats.hash_evals < full_cost / 2,
            "adaptive hashing ({}) should be well under full hashing ({full_cost})",
            out.stats.hash_evals
        );
    }

    #[test]
    fn selection_strategies_reach_same_answer() {
        let d = planted(&[14, 9, 4, 2, 1], 53);
        let gold = d.gold_records(2);
        for strategy in [
            SelectionStrategy::LargestFirst,
            SelectionStrategy::SmallestFirst,
            SelectionStrategy::Random,
            SelectionStrategy::Fifo,
        ] {
            let mut cfg = jaccard_config();
            cfg.selection = strategy;
            let mut ada = AdaLsh::for_dataset(&d, cfg).unwrap();
            let out = ada.run(&d, 2);
            assert_eq!(out.records(), gold, "strategy {strategy:?} wrong");
        }
    }

    #[test]
    fn largest_first_cheapest() {
        let d = planted(&[20, 12, 6, 3, 2, 1, 1], 61);
        let run = |strategy| {
            let mut cfg = jaccard_config();
            cfg.selection = strategy;
            let mut ada = AdaLsh::for_dataset(&d, cfg).unwrap();
            ada.run(&d, 2).stats.modeled_cost
        };
        let largest = run(SelectionStrategy::LargestFirst);
        let smallest = run(SelectionStrategy::SmallestFirst);
        assert!(
            largest <= smallest + 1e-9,
            "Largest-First ({largest}) must not cost more than Smallest-First ({smallest})"
        );
    }

    #[test]
    fn require_pairwise_final_verifies_everything() {
        let d = planted(&[10, 6, 2], 71);
        let mut cfg = jaccard_config();
        cfg.require_pairwise_final = true;
        let mut ada = AdaLsh::for_dataset(&d, cfg).unwrap();
        let out = ada.run(&d, 2);
        assert!(out.stats.pairwise_calls > 0, "P must have verified finals");
        assert_eq!(out.records(), d.gold_records(2));
    }

    #[test]
    fn stats_are_populated() {
        let d = planted(&[8, 4, 2], 77);
        let mut ada = AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let out = ada.run(&d, 1);
        assert!(out.stats.hash_evals > 0);
        assert!(out.stats.rounds > 0);
        assert!(out.stats.modeled_cost > 0.0);
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn threaded_hashing_matches_sequential() {
        let d = planted(&[22, 14, 7, 3, 2, 1, 1], 97);
        let run = |threads: usize| {
            let mut cfg = jaccard_config();
            cfg.threads = threads;
            let mut ada = AdaLsh::for_dataset(&d, cfg).unwrap();
            ada.run(&d, 3)
        };
        let seq = run(1);
        let par = run(4);
        assert_eq!(seq.clusters, par.clusters);
        assert_eq!(seq.stats.hash_evals, par.stats.hash_evals);
        assert_eq!(seq.stats.pair_comparisons, par.stats.pair_comparisons);
    }

    #[test]
    fn deterministic_across_runs() {
        let d = planted(&[15, 9, 3, 1], 83);
        let mk = || AdaLsh::for_dataset(&d, jaccard_config()).unwrap();
        let a = mk().run(&d, 2);
        let b = mk().run(&d, 2);
        assert_eq!(a.clusters, b.clusters);
        assert_eq!(a.stats.hash_evals, b.stats.hash_evals);
    }
}
