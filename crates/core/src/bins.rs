//! Bin-based largest-cluster index (paper Appendix B.1, B.4).
//!
//! Clusters awaiting processing are kept in an array of `⌈log₂|R|⌉ + 1`
//! bins; the cluster of size `x` lives in bin `⌊log₂ x⌋`. Insertion is
//! O(1); finding the largest cluster scans from the highest non-empty bin
//! and picks that bin's maximum — which is also the *global* maximum,
//! because every cluster in a lower bin is strictly smaller than `2^b`,
//! the floor of bin `b`.

/// An entry in the index: a cluster's size and an opaque handle (index
/// into the caller's cluster arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinEntry {
    /// Cluster size (number of records).
    pub size: u32,
    /// Caller-defined handle.
    pub handle: u32,
}

/// Bin index over clusters keyed by size.
#[derive(Debug, Default)]
pub struct BinIndex {
    bins: Vec<Vec<BinEntry>>,
    len: usize,
}

impl BinIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of clusters currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no clusters are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a cluster. O(1).
    ///
    /// # Panics
    /// Panics if `size == 0`.
    pub fn push(&mut self, size: u32, handle: u32) {
        assert!(size > 0, "empty clusters are not storable");
        let bin = (31 - size.leading_zeros()) as usize; // floor(log2(size))
        if self.bins.len() <= bin {
            self.bins.resize_with(bin + 1, Vec::new);
        }
        self.bins[bin].push(BinEntry { size, handle });
        self.len += 1;
    }

    /// Removes and returns the largest cluster, scanning from the highest
    /// non-empty bin (ties broken by most-recently inserted).
    pub fn pop_largest(&mut self) -> Option<BinEntry> {
        let bin = self.bins.iter().rposition(|b| !b.is_empty())?;
        let entries = &mut self.bins[bin];
        // Max within the top bin == global max (lower bins are < 2^bin).
        let mut best = 0;
        for i in 1..entries.len() {
            if entries[i].size >= entries[best].size {
                best = i;
            }
        }
        let entry = entries.swap_remove(best);
        self.len -= 1;
        Some(entry)
    }

    /// The size of the current largest cluster without removing it.
    pub fn peek_largest_size(&self) -> Option<u32> {
        let bin = self.bins.iter().rposition(|b| !b.is_empty())?;
        self.bins[bin].iter().map(|e| e.size).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_descending_size_order() {
        let mut idx = BinIndex::new();
        for (i, &s) in [3u32, 17, 1, 9, 8, 2, 100].iter().enumerate() {
            idx.push(s, i as u32);
        }
        let mut sizes = Vec::new();
        while let Some(e) = idx.pop_largest() {
            sizes.push(e.size);
        }
        assert_eq!(sizes, vec![100, 17, 9, 8, 3, 2, 1]);
        assert!(idx.is_empty());
    }

    #[test]
    fn same_bin_still_returns_global_max() {
        // 9 and 15 share bin 3; the larger must come out first.
        let mut idx = BinIndex::new();
        idx.push(9, 0);
        idx.push(15, 1);
        idx.push(12, 2);
        assert_eq!(idx.pop_largest().unwrap().size, 15);
        assert_eq!(idx.pop_largest().unwrap().size, 12);
        assert_eq!(idx.pop_largest().unwrap().size, 9);
    }

    #[test]
    fn handles_round_trip() {
        let mut idx = BinIndex::new();
        idx.push(5, 42);
        let e = idx.pop_largest().unwrap();
        assert_eq!((e.size, e.handle), (5, 42));
    }

    #[test]
    fn peek_does_not_remove() {
        let mut idx = BinIndex::new();
        idx.push(7, 0);
        idx.push(3, 1);
        assert_eq!(idx.peek_largest_size(), Some(7));
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn empty_behaviour() {
        let mut idx = BinIndex::new();
        assert!(idx.pop_largest().is_none());
        assert_eq!(idx.peek_largest_size(), None);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn interleaved_push_pop() {
        let mut idx = BinIndex::new();
        idx.push(4, 0);
        idx.push(6, 1);
        assert_eq!(idx.pop_largest().unwrap().size, 6);
        idx.push(10, 2);
        idx.push(1, 3);
        assert_eq!(idx.pop_largest().unwrap().size, 10);
        assert_eq!(idx.pop_largest().unwrap().size, 4);
        assert_eq!(idx.pop_largest().unwrap().size, 1);
    }

    #[test]
    fn size_one_clusters_live_in_bin_zero() {
        let mut idx = BinIndex::new();
        idx.push(1, 0);
        idx.push(1, 1);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.pop_largest().unwrap().size, 1);
    }

    #[test]
    #[should_panic(expected = "empty clusters")]
    fn zero_size_rejected() {
        BinIndex::new().push(0, 0);
    }

    #[test]
    fn large_sizes_supported() {
        let mut idx = BinIndex::new();
        idx.push(u32::MAX, 0);
        idx.push(2, 1);
        assert_eq!(idx.pop_largest().unwrap().size, u32::MAX);
    }
}
