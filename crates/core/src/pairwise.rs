//! The pairwise computation function `P` (paper Definition 2,
//! Appendix B.3).
//!
//! `P` evaluates the match rule on record pairs of a cluster and outputs
//! the connected components of the resulting match graph. Two
//! optimizations from §6.1.1 are built in:
//!
//! * pairs already connected transitively are skipped (their trees share
//!   a root), saving their distance computations;
//! * components are maintained in the same parent-pointer [`Forest`] the
//!   hashing functions use.
//!
//! The *cost model* nevertheless charges `P` for all `|C|·(|C|−1)/2`
//! pairs (paper Definition 3 is conservative; see Appendix B.3's remark).
//!
//! # Block-wavefront parallelism
//!
//! [`apply_pairwise`] processes the canonical pair sequence
//! `(0,1), (0,2), …, (n−2,n−1)` in fixed-size blocks. At the start of a
//! block the forest is frozen (no merges happen while the block is
//! collected), and every pair whose endpoints are in different trees
//! *per that snapshot* is evaluated — the match rule applied through the
//! cached distance kernels ([`MatchRule::matches_in`]) — across up to
//! `threads` workers, each owning a disjoint slice of the verdict
//! buffer. Verdicts are then **folded into the forest sequentially in
//! canonical pair order**, re-applying the closure-skip test against the
//! live forest, so the merge sequence and the `pair_comparisons` /
//! `distance_evals` charges are bit-identical to the retained scalar
//! oracle [`apply_pairwise_scalar`]:
//!
//! * a pair closed at snapshot time is still closed whenever the scalar
//!   loop reaches it (transitive closure only grows) — skipped and
//!   uncharged on both paths;
//! * a pair open at snapshot but closed by an earlier merge of the same
//!   block is skipped at fold time — its evaluation was *speculative*,
//!   wasted work bounded by the block size, and is never charged;
//! * a pair still open at fold time is charged and folded with exactly
//!   the verdict the scalar loop would compute (the rule is
//!   deterministic and `matches_in` is bit-equivalent to `matches`).

use adalsh_data::{Dataset, ExitCounts, MatchRule, RecordStore};
use adalsh_obs::{TraceSink, Value};

use crate::oracle::{emit_oracle_call, Adjudication, PairwiseOracle, SpendLedger};
use crate::ppt::Forest;
use crate::stats::Stats;

/// Pairs per wavefront block. Bounds speculative (uncharged, wasted)
/// evaluations per block while keeping enough work in flight to amortize
/// thread synchronization.
pub const DEFAULT_PAIR_BLOCK: usize = 4096;

/// Minimum open pairs in a block before fanning out to worker threads;
/// below this, spawn/join overhead rivals the evaluations themselves.
const MIN_PARALLEL_PAIRS: usize = 512;

/// Applies `P` to `cluster` (record ids) under `rule`, returning the
/// connected components as record-id lists. Pair evaluation runs on up
/// to `threads` workers in blocks of [`DEFAULT_PAIR_BLOCK`] pairs;
/// output and statistics are identical at any thread count.
pub fn apply_pairwise(
    store: &dyn RecordStore,
    rule: &MatchRule,
    cluster: &[u32],
    threads: usize,
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    apply_pairwise_blocked(store, rule, cluster, threads, DEFAULT_PAIR_BLOCK, stats)
}

/// [`apply_pairwise`] with an explicit block size (exposed so the
/// differential tests can sweep degenerate and adversarial block sizes;
/// any `block_pairs >= 1` produces identical output and stats).
pub fn apply_pairwise_blocked(
    store: &dyn RecordStore,
    rule: &MatchRule,
    cluster: &[u32],
    threads: usize,
    block_pairs: usize,
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    stats.pairwise_calls += 1;
    let n = cluster.len();
    let mut forest = Forest::new(n);
    for slot in 0..n as u32 {
        forest.add_singleton(slot);
    }
    let per_pair_distances = rule.num_elementary_distances() as u64;
    let threads = threads.max(1);
    let block_pairs = block_pairs.max(1);

    // Single worker: the wavefront degenerates to block size 1 with an
    // immediate fold — fuse the two and skip the block buffers entirely.
    // Same pair order, same skips, same charges; only the bookkeeping
    // goes away (and the cached kernels still apply).
    if threads == 1 {
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                let ri = forest.find_root_of_slot(i).expect("added above");
                let rj = forest.find_root_of_slot(j).expect("added above");
                if ri == rj {
                    continue;
                }
                stats.pair_comparisons += 1;
                stats.distance_evals += per_pair_distances;
                if rule.matches_in(store, cluster[i as usize], cluster[j as usize]) {
                    forest.merge_roots(ri, rj);
                }
            }
        }
        return clusters_of(forest, cluster);
    }

    // Cursor over the canonical pair sequence.
    let (mut i, mut j) = (0u32, 1u32);
    let mut open: Vec<(u32, u32)> = Vec::with_capacity(block_pairs.min(1 << 16));
    let mut verdicts: Vec<bool> = Vec::new();
    while (i as usize) + 1 < n {
        // Collect the next block: walk up to `block_pairs` pairs of the
        // canonical sequence, keeping those open per the block-start
        // forest snapshot (the forest is not mutated during collection,
        // so the live find *is* the snapshot).
        open.clear();
        let mut taken = 0;
        while taken < block_pairs && (i as usize) + 1 < n {
            let ri = forest.find_root_of_slot(i).expect("added above");
            let rj = forest.find_root_of_slot(j).expect("added above");
            if ri != rj {
                open.push((i, j));
            }
            taken += 1;
            j += 1;
            if j as usize == n {
                i += 1;
                j = i + 1;
            }
        }

        evaluate_block(store, rule, cluster, &open, threads, &mut verdicts);

        // Fold verdicts sequentially in canonical pair order, re-applying
        // the closure-skip test so accounting matches the scalar oracle.
        for (&(a, b), &matched) in open.iter().zip(&verdicts) {
            let ra = forest.find_root_of_slot(a).expect("added above");
            let rb = forest.find_root_of_slot(b).expect("added above");
            if ra == rb {
                // Closed by an earlier merge of this block: the
                // evaluation was speculative and is not charged.
                continue;
            }
            stats.pair_comparisons += 1;
            stats.distance_evals += per_pair_distances;
            if matched {
                forest.merge_roots(ra, rb);
            }
        }
    }
    clusters_of(forest, cluster)
}

/// Observability totals from one [`apply_pairwise_traced`] call: how
/// many wavefront blocks ran, how many threshold kernels fired inside
/// them (including speculative evaluations that are never charged to
/// [`Stats`]), and how many of those kernels resolved on an early-exit
/// path. Purely observational — clusters and `Stats` are bit-identical
/// to the untraced paths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairwiseTrace {
    /// Wavefront blocks processed (each emitted one `pairwise_block`
    /// trace event).
    pub blocks: u64,
    /// Threshold-kernel invocations across all blocks.
    pub kernel_checks: u64,
    /// Kernel invocations resolved without an exact distance computation.
    pub early_exits: u64,
}

/// [`apply_pairwise_blocked`] emitting one `pairwise_block` trace event
/// per wavefront block (fields: `pairs_open`, `pairs_charged`,
/// `kernel_checks`, `early_exits`, `wall_micros`) and returning the
/// block/kernel tally alongside the clusters.
///
/// With a disabled sink this *is* `apply_pairwise_blocked` (plus a zero
/// tally). With tracing on, the block-structured wavefront runs even at
/// `threads == 1` so the per-block events exist; the pair order, skips,
/// and `Stats` charges are identical either way (the fused single-thread
/// loop is an optimization of block size 1, and block size is
/// stats-neutral by construction — see
/// `parallel_equals_scalar_on_mixed_cluster`).
pub fn apply_pairwise_traced(
    store: &dyn RecordStore,
    rule: &MatchRule,
    cluster: &[u32],
    threads: usize,
    block_pairs: usize,
    sink: &TraceSink,
    stats: &mut Stats,
) -> (Vec<Vec<u32>>, PairwiseTrace) {
    if !sink.enabled() {
        let clusters = apply_pairwise_blocked(store, rule, cluster, threads, block_pairs, stats);
        return (clusters, PairwiseTrace::default());
    }
    stats.pairwise_calls += 1;
    let n = cluster.len();
    let mut forest = Forest::new(n);
    for slot in 0..n as u32 {
        forest.add_singleton(slot);
    }
    let per_pair_distances = rule.num_elementary_distances() as u64;
    let threads = threads.max(1);
    let block_pairs = block_pairs.max(1);
    let mut trace = PairwiseTrace::default();

    let (mut i, mut j) = (0u32, 1u32);
    let mut open: Vec<(u32, u32)> = Vec::with_capacity(block_pairs.min(1 << 16));
    let mut verdicts: Vec<bool> = Vec::new();
    while (i as usize) + 1 < n {
        let block_start = std::time::Instant::now();
        open.clear();
        let mut taken = 0;
        while taken < block_pairs && (i as usize) + 1 < n {
            let ri = forest.find_root_of_slot(i).expect("added above");
            let rj = forest.find_root_of_slot(j).expect("added above");
            if ri != rj {
                open.push((i, j));
            }
            taken += 1;
            j += 1;
            if j as usize == n {
                i += 1;
                j = i + 1;
            }
        }

        let counts = evaluate_block_counted(store, rule, cluster, &open, threads, &mut verdicts);

        let mut charged = 0u64;
        for (&(a, b), &matched) in open.iter().zip(&verdicts) {
            let ra = forest.find_root_of_slot(a).expect("added above");
            let rb = forest.find_root_of_slot(b).expect("added above");
            if ra == rb {
                continue;
            }
            charged += 1;
            stats.pair_comparisons += 1;
            stats.distance_evals += per_pair_distances;
            if matched {
                forest.merge_roots(ra, rb);
            }
        }

        trace.blocks += 1;
        trace.kernel_checks += counts.checks;
        trace.early_exits += counts.early_exits;
        sink.emit(
            "pairwise_block",
            &[
                ("pairs_open", Value::U64(open.len() as u64)),
                ("pairs_charged", Value::U64(charged)),
                ("kernel_checks", Value::U64(counts.checks)),
                ("early_exits", Value::U64(counts.early_exits)),
                (
                    "wall_micros",
                    Value::U64(block_start.elapsed().as_micros() as u64),
                ),
            ],
        );
    }
    (clusters_of(forest, cluster), trace)
}

/// `P` through a [`PairwiseOracle`] instead of the bare rule: the same
/// block wavefront and canonical fold as [`apply_pairwise_blocked`],
/// with adjudications evaluated speculatively (they are pure functions
/// of the pair, so parallel evaluation is safe) and **settled through
/// the ledger only at fold time, in canonical pair order**. Budget
/// charging, degradation, and `oracle_call` emission all happen at
/// settle time, which is what keeps verdicts, clusters, `Stats`, and
/// the oracle spend bit-identical across thread counts and block sizes.
///
/// `Stats` charges mirror the rule-based path exactly: one
/// `pair_comparisons` (+ the oracle's elementary distances) per pair
/// still open at fold time; speculative evaluations of pairs closed by
/// an earlier merge of the same block are neither charged nor settled.
///
/// With a disabled sink no events are emitted and the returned
/// [`PairwiseTrace`] is zero, exactly like [`apply_pairwise_traced`];
/// with tracing on, one `pairwise_block` event per block and one
/// `oracle_call` event per settled pair are emitted.
#[allow(clippy::too_many_arguments)]
pub fn apply_pairwise_oracle(
    store: &dyn RecordStore,
    oracle: &dyn PairwiseOracle,
    cluster: &[u32],
    threads: usize,
    block_pairs: usize,
    ledger: &mut SpendLedger,
    sink: &TraceSink,
    stats: &mut Stats,
) -> (Vec<Vec<u32>>, PairwiseTrace) {
    stats.pairwise_calls += 1;
    let n = cluster.len();
    let mut forest = Forest::new(n);
    for slot in 0..n as u32 {
        forest.add_singleton(slot);
    }
    let per_pair_distances = oracle.num_elementary_distances() as u64;
    let threads = threads.max(1);
    let block_pairs = block_pairs.max(1);
    let traced = sink.enabled();
    let trace = PairwiseTrace::default();

    // Fused single-thread path: adjudicate lazily at fold time, no
    // speculative work. (With tracing on, the blocked wavefront runs
    // even at threads == 1 so the per-block events exist — pair order,
    // skips, charges, and settle order are identical either way.)
    if threads == 1 && !traced {
        for i in 0..n as u32 {
            for j in (i + 1)..n as u32 {
                let ri = forest.find_root_of_slot(i).expect("added above");
                let rj = forest.find_root_of_slot(j).expect("added above");
                if ri == rj {
                    continue;
                }
                let (a_id, b_id) = (cluster[i as usize], cluster[j as usize]);
                let adj = oracle.adjudicate(store, a_id, b_id);
                stats.pair_comparisons += 1;
                stats.distance_evals += per_pair_distances;
                let settled = ledger.settle(a_id, b_id, &adj);
                if settled.matched {
                    forest.merge_roots(ri, rj);
                }
            }
        }
        return (clusters_of(forest, cluster), trace);
    }

    let mut trace = trace;
    let (mut i, mut j) = (0u32, 1u32);
    let mut open: Vec<(u32, u32)> = Vec::with_capacity(block_pairs.min(1 << 16));
    let mut adjudications: Vec<Adjudication> = Vec::new();
    while (i as usize) + 1 < n {
        let block_start = traced.then(std::time::Instant::now);
        open.clear();
        let mut taken = 0;
        while taken < block_pairs && (i as usize) + 1 < n {
            let ri = forest.find_root_of_slot(i).expect("added above");
            let rj = forest.find_root_of_slot(j).expect("added above");
            if ri != rj {
                open.push((i, j));
            }
            taken += 1;
            j += 1;
            if j as usize == n {
                i += 1;
                j = i + 1;
            }
        }

        evaluate_block_oracle(store, oracle, cluster, &open, threads, &mut adjudications);

        let mut charged = 0u64;
        for (&(a, b), adj) in open.iter().zip(&adjudications) {
            let ra = forest.find_root_of_slot(a).expect("added above");
            let rb = forest.find_root_of_slot(b).expect("added above");
            if ra == rb {
                // Closed by an earlier merge of this block: speculative,
                // neither charged nor settled.
                continue;
            }
            charged += 1;
            stats.pair_comparisons += 1;
            stats.distance_evals += per_pair_distances;
            let (a_id, b_id) = (cluster[a as usize], cluster[b as usize]);
            let settled = ledger.settle(a_id, b_id, adj);
            if traced {
                emit_oracle_call(sink, &settled);
            }
            if settled.matched {
                forest.merge_roots(ra, rb);
            }
        }

        if let Some(t0) = block_start {
            trace.blocks += 1;
            trace.kernel_checks += open.len() as u64;
            sink.emit(
                "pairwise_block",
                &[
                    ("pairs_open", Value::U64(open.len() as u64)),
                    ("pairs_charged", Value::U64(charged)),
                    ("kernel_checks", Value::U64(open.len() as u64)),
                    ("early_exits", Value::U64(0)),
                    ("wall_micros", Value::U64(t0.elapsed().as_micros() as u64)),
                ],
            );
        }
    }
    (clusters_of(forest, cluster), trace)
}

/// Adjudicates every open pair of a block, writing one [`Adjudication`]
/// per pair. Parallel when the block is big enough — adjudications are
/// pure functions of the pair, so workers share nothing but their
/// disjoint output chunks.
fn evaluate_block_oracle(
    store: &dyn RecordStore,
    oracle: &dyn PairwiseOracle,
    cluster: &[u32],
    open: &[(u32, u32)],
    threads: usize,
    out: &mut Vec<Adjudication>,
) {
    out.clear();
    out.resize(open.len(), Adjudication::default());
    let eval = |pairs: &[(u32, u32)], out: &mut [Adjudication]| {
        for (slot, &(a, b)) in out.iter_mut().zip(pairs) {
            *slot = oracle.adjudicate(store, cluster[a as usize], cluster[b as usize]);
        }
    };
    if threads == 1 || open.len() < MIN_PARALLEL_PAIRS {
        eval(open, out);
        return;
    }
    let chunk = open.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pairs, slots) in open.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || eval(pairs, slots));
        }
    });
}

/// Maps the forest's slot clusters back to record ids.
fn clusters_of(forest: Forest, cluster: &[u32]) -> Vec<Vec<u32>> {
    forest
        .clusters()
        .into_iter()
        .map(|slots| slots.into_iter().map(|s| cluster[s as usize]).collect())
        .collect()
}

/// Evaluates the match rule on every open pair of a block, writing one
/// verdict per pair. Parallel when the block is big enough: each worker
/// owns a disjoint chunk of the pair list and the matching chunk of the
/// verdict buffer (its per-worker scratch), so no synchronization beyond
/// the final join is needed.
fn evaluate_block(
    store: &dyn RecordStore,
    rule: &MatchRule,
    cluster: &[u32],
    open: &[(u32, u32)],
    threads: usize,
    verdicts: &mut Vec<bool>,
) {
    verdicts.clear();
    verdicts.resize(open.len(), false);
    let eval = |pairs: &[(u32, u32)], out: &mut [bool]| {
        for (v, &(a, b)) in out.iter_mut().zip(pairs) {
            *v = rule.matches_in(store, cluster[a as usize], cluster[b as usize]);
        }
    };
    if threads == 1 || open.len() < MIN_PARALLEL_PAIRS {
        eval(open, verdicts);
        return;
    }
    let chunk = open.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pairs, out) in open.chunks(chunk).zip(verdicts.chunks_mut(chunk)) {
            scope.spawn(move || eval(pairs, out));
        }
    });
}

/// [`evaluate_block`] through the counted kernels
/// ([`MatchRule::matches_in_counted`]), tallying kernel invocations and
/// early exits per worker and merging the tallies at join time. Verdicts
/// are bit-identical to the uncounted path (the counted kernels own the
/// logic; the plain ones delegate).
fn evaluate_block_counted(
    store: &dyn RecordStore,
    rule: &MatchRule,
    cluster: &[u32],
    open: &[(u32, u32)],
    threads: usize,
    verdicts: &mut Vec<bool>,
) -> ExitCounts {
    verdicts.clear();
    verdicts.resize(open.len(), false);
    let eval = |pairs: &[(u32, u32)], out: &mut [bool]| {
        let mut counts = ExitCounts::default();
        for (v, &(a, b)) in out.iter_mut().zip(pairs) {
            *v = rule.matches_in_counted(
                store,
                cluster[a as usize],
                cluster[b as usize],
                &mut counts,
            );
        }
        counts
    };
    if threads == 1 || open.len() < MIN_PARALLEL_PAIRS {
        return eval(open, verdicts);
    }
    let chunk = open.len().div_ceil(threads);
    let mut total = ExitCounts::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = open
            .chunks(chunk)
            .zip(verdicts.chunks_mut(chunk))
            .map(|(pairs, out)| scope.spawn(move || eval(pairs, out)))
            .collect();
        for handle in handles {
            total.merge(&handle.join().expect("block worker panicked"));
        }
    });
    total
}

/// The scalar reference implementation of `P`: one pair at a time, in
/// canonical order, through the plain (uncached) [`MatchRule::matches`]
/// kernels. Retained as the differential-test oracle for
/// [`apply_pairwise`] — clusters *and* `Stats` must be bit-identical —
/// exactly like `advance_scalar` anchors the batched hash kernels.
pub fn apply_pairwise_scalar(
    dataset: &Dataset,
    rule: &MatchRule,
    cluster: &[u32],
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    stats.pairwise_calls += 1;
    let n = cluster.len();
    let mut forest = Forest::new(n);
    for slot in 0..n as u32 {
        forest.add_singleton(slot);
    }
    let per_pair_distances = rule.num_elementary_distances() as u64;
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let ri = forest.find_root_of_slot(i).expect("added above");
            let rj = forest.find_root_of_slot(j).expect("added above");
            if ri == rj {
                // Transitively closed already — skip the comparison.
                continue;
            }
            stats.pair_comparisons += 1;
            stats.distance_evals += per_pair_distances;
            let a = dataset.record(cluster[i as usize]);
            let b = dataset.record(cluster[j as usize]);
            if rule.matches(a, b) {
                forest.merge_roots(ri, rj);
            }
        }
    }
    clusters_of(forest, cluster)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn dataset(sets: &[&[u64]]) -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records = sets
            .iter()
            .map(|s| Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec()))))
            .collect();
        let gt = (0..sets.len() as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn jaccard_rule(dthr: f64) -> MatchRule {
        MatchRule::threshold(0, FieldDistance::Jaccard, dthr)
    }

    fn sorted(mut clusters: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        clusters.iter_mut().for_each(|c| c.sort_unstable());
        clusters.sort();
        clusters
    }

    #[test]
    fn exact_components() {
        // 0~1 (sim 0.5), 2 far from both.
        let d = dataset(&[&[1, 2, 3, 4], &[3, 4, 5, 6], &[100, 200]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.7), &[0, 1, 2], 1, &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1], vec![2]]);
        assert_eq!(st.pairwise_calls, 1);
    }

    #[test]
    fn transitivity_via_middle_record() {
        // 0~1 and 1~2 but 0 and 2 are beyond the threshold: one component
        // by transitivity (paper §3's transitivity discussion).
        let d = dataset(&[&[1, 2, 3], &[2, 3, 4], &[3, 4, 5]]);
        // d(0,1) = 1 − 2/4 = 0.5; d(0,2) = 1 − 1/5 = 0.8.
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.5), &[0, 1, 2], 1, &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn skips_transitively_closed_pairs() {
        // Four identical records: after 0-1, 0-2, 0-3 merge, pairs (1,2),
        // (1,3), (2,3) are closed ⇒ only 3 of 6 comparisons run.
        let d = dataset(&[&[1], &[1], &[1], &[1]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.1), &[0, 1, 2, 3], 1, &mut st);
        assert_eq!(out.len(), 1);
        assert_eq!(st.pair_comparisons, 3);
    }

    #[test]
    fn speculative_evals_are_uncharged_at_any_block_size() {
        // Same four identical records: with the whole cluster in one
        // block, pairs (1,2), (1,3), (2,3) are evaluated speculatively
        // (open at snapshot, closed by the (0,·) merges at fold time) —
        // the charge must still be 3, identical to the scalar oracle.
        let d = dataset(&[&[1], &[1], &[1], &[1]]);
        for block in [1usize, 2, 3, 6, 100] {
            let mut st = Stats::default();
            let out =
                apply_pairwise_blocked(&d, &jaccard_rule(0.1), &[0, 1, 2, 3], 2, block, &mut st);
            assert_eq!(out.len(), 1, "block {block}");
            assert_eq!(st.pair_comparisons, 3, "block {block}");
            assert_eq!(st.distance_evals, 3, "block {block}");
        }
    }

    #[test]
    fn all_far_pairs_compare_everything() {
        let d = dataset(&[&[1], &[2], &[3], &[4]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.1), &[0, 1, 2, 3], 1, &mut st);
        assert_eq!(out.len(), 4);
        assert_eq!(st.pair_comparisons, 6);
        assert_eq!(st.distance_evals, 6);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let d = dataset(&[&[1]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.5), &[], 4, &mut st);
        assert!(out.is_empty());
        let out = apply_pairwise(&d, &jaccard_rule(0.5), &[0], 4, &mut st);
        assert_eq!(out, vec![vec![0]]);
        assert_eq!(st.pair_comparisons, 0);
    }

    #[test]
    fn respects_record_id_indirection() {
        // The cluster lists non-contiguous record ids.
        let d = dataset(&[&[1, 2], &[99], &[1, 2]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.2), &[2, 0], 1, &mut st);
        assert_eq!(sorted(out), vec![vec![0, 2]]);
    }

    #[test]
    fn parallel_equals_scalar_on_mixed_cluster() {
        // A chain of overlapping sets plus isolated singletons — exercises
        // merges across block boundaries.
        let sets: Vec<Vec<u64>> = (0..40)
            .map(|k| {
                if k % 3 == 0 {
                    vec![1000 + k, 2000 + k] // isolated
                } else {
                    (k / 4 * 10..k / 4 * 10 + 8).collect() // banded overlap
                }
            })
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let d = dataset(&refs);
        let ids: Vec<u32> = (0..40).collect();
        let mut st_scalar = Stats::default();
        let scalar = apply_pairwise_scalar(&d, &jaccard_rule(0.4), &ids, &mut st_scalar);
        for threads in [1usize, 2, 5] {
            for block in [1usize, 7, 64, 10_000] {
                let mut st = Stats::default();
                let out =
                    apply_pairwise_blocked(&d, &jaccard_rule(0.4), &ids, threads, block, &mut st);
                assert_eq!(sorted(out), sorted(scalar.clone()), "t={threads} b={block}");
                assert_eq!(st, st_scalar, "t={threads} b={block}");
            }
        }
    }

    #[test]
    fn traced_equals_untraced_and_events_reconcile() {
        use adalsh_obs::MemorySubscriber;
        use std::sync::Arc;

        let sets: Vec<Vec<u64>> = (0..30)
            .map(|k| {
                if k % 4 == 0 {
                    vec![5000 + k]
                } else {
                    (k / 3 * 10..k / 3 * 10 + 6).collect()
                }
            })
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let d = dataset(&refs);
        let ids: Vec<u32> = (0..30).collect();
        let rule = jaccard_rule(0.4);
        let mut st_plain = Stats::default();
        let plain = apply_pairwise_blocked(&d, &rule, &ids, 2, 16, &mut st_plain);

        for threads in [1usize, 3] {
            let mem = Arc::new(MemorySubscriber::default());
            let sink = TraceSink::new(mem.clone());
            let mut st = Stats::default();
            let (out, trace) = apply_pairwise_traced(&d, &rule, &ids, threads, 16, &sink, &mut st);
            assert_eq!(sorted(out), sorted(plain.clone()), "t={threads}");
            assert_eq!(st, st_plain, "t={threads}");

            let events = mem.events();
            assert_eq!(events.len() as u64, trace.blocks, "t={threads}");
            let (mut charged, mut checks, mut exits) = (0u64, 0u64, 0u64);
            for ev in &events {
                assert_eq!(ev.name, "pairwise_block");
                charged += ev.u64("pairs_charged").unwrap();
                checks += ev.u64("kernel_checks").unwrap();
                exits += ev.u64("early_exits").unwrap();
                assert!(ev.u64("pairs_open").unwrap() >= ev.u64("pairs_charged").unwrap());
                assert!(ev.u64("wall_micros").is_some());
            }
            assert_eq!(charged, st.pair_comparisons, "t={threads}");
            assert_eq!(checks, trace.kernel_checks, "t={threads}");
            assert_eq!(exits, trace.early_exits, "t={threads}");
            // A single-threshold rule fires exactly one kernel per open pair.
            assert!(trace.kernel_checks >= st.pair_comparisons, "t={threads}");
            assert!(trace.early_exits <= trace.kernel_checks, "t={threads}");
        }

        // Disabled sink delegates and reports a zero tally.
        let sink = TraceSink::disabled();
        let mut st = Stats::default();
        let (out, trace) = apply_pairwise_traced(&d, &rule, &ids, 2, 16, &sink, &mut st);
        assert_eq!(sorted(out), sorted(plain));
        assert_eq!(st, st_plain);
        assert_eq!(trace, PairwiseTrace::default());
    }

    #[test]
    fn oracle_path_with_exact_oracle_equals_rule_path() {
        use crate::oracle::{ExactOracle, SpendLedger};
        let sets: Vec<Vec<u64>> = (0..40)
            .map(|k| {
                if k % 3 == 0 {
                    vec![1000 + k, 2000 + k]
                } else {
                    (k / 4 * 10..k / 4 * 10 + 8).collect()
                }
            })
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let d = dataset(&refs);
        let ids: Vec<u32> = (0..40).collect();
        let rule = jaccard_rule(0.4);
        let mut st_rule = Stats::default();
        let plain = apply_pairwise_blocked(&d, &rule, &ids, 2, 16, &mut st_rule);
        for threads in [1usize, 2, 5] {
            for block in [1usize, 7, 64, 10_000] {
                let oracle = ExactOracle::new(&rule);
                let mut ledger = SpendLedger::new(None);
                let mut st = Stats::default();
                let (out, _) = apply_pairwise_oracle(
                    &d,
                    &oracle,
                    &ids,
                    threads,
                    block,
                    &mut ledger,
                    &TraceSink::disabled(),
                    &mut st,
                );
                assert_eq!(sorted(out), sorted(plain.clone()), "t={threads} b={block}");
                assert_eq!(st, st_rule, "t={threads} b={block}");
                assert_eq!(ledger.spend().spent, 0, "exact oracle is free");
                assert_eq!(ledger.spend().degraded, 0);
            }
        }
    }

    #[test]
    fn noisy_oracle_is_deterministic_across_threads_blocks_and_sinks() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, OracleSpend, SpendLedger};
        use adalsh_obs::MemorySubscriber;
        use std::sync::Arc;

        let sets: Vec<Vec<u64>> = (0..36)
            .map(|k| (k / 3 * 10..k / 3 * 10 + 6).collect())
            .collect();
        let refs: Vec<&[u64]> = sets.iter().map(Vec::as_slice).collect();
        let d = dataset(&refs);
        let ids: Vec<u32> = (0..36).collect();
        let rule = jaccard_rule(0.4);
        let cfg = NoisyOracleConfig {
            false_match_rate: 0.15,
            false_non_match_rate: 0.15,
            fault_rate: 0.2,
            seed: 11,
            budget: Some(300),
            ..NoisyOracleConfig::default()
        };
        let run =
            |threads: usize, block: usize, traced: bool| -> (Vec<Vec<u32>>, Stats, OracleSpend) {
                let oracle = NoisyOracle::new(&rule, cfg.clone());
                let mut ledger = SpendLedger::new(cfg.budget);
                let mut st = Stats::default();
                let sink = if traced {
                    TraceSink::new(Arc::new(MemorySubscriber::default()))
                } else {
                    TraceSink::disabled()
                };
                let (out, _) = apply_pairwise_oracle(
                    &d,
                    &oracle,
                    &ids,
                    threads,
                    block,
                    &mut ledger,
                    &sink,
                    &mut st,
                );
                (sorted(out), st, ledger.into_spend())
            };
        let baseline = run(1, DEFAULT_PAIR_BLOCK, false);
        for threads in [1usize, 2, 4] {
            for block in [1usize, 13, 4096] {
                for traced in [false, true] {
                    let got = run(threads, block, traced);
                    assert_eq!(
                        got, baseline,
                        "noisy oracle must replay bit-identically (t={threads} b={block} traced={traced})"
                    );
                }
            }
        }
        // The run under this fault rate must actually have exercised the
        // resilience machinery.
        let (_, _, spend) = baseline;
        assert!(spend.retries > 0, "fault injection must trigger retries");
        assert!(spend.spent <= 300, "budget respected: {}", spend.spent);
    }

    #[test]
    fn oracle_budget_degrades_tail_pairs_to_the_rule() {
        use crate::oracle::{NoisyOracle, NoisyOracleConfig, SpendLedger};
        // All-distinct records: every pair is open and adjudicated.
        let d = dataset(&[&[1], &[2], &[3], &[4], &[5]]);
        let ids: Vec<u32> = (0..5).collect();
        let rule = jaccard_rule(0.4);
        let cfg = NoisyOracleConfig {
            budget: Some(4),
            ..NoisyOracleConfig::default()
        };
        let oracle = NoisyOracle::new(&rule, cfg.clone());
        let mut ledger = SpendLedger::new(cfg.budget);
        let mut st = Stats::default();
        let (out, _) = apply_pairwise_oracle(
            &d,
            &oracle,
            &ids,
            1,
            DEFAULT_PAIR_BLOCK,
            &mut ledger,
            &TraceSink::disabled(),
            &mut st,
        );
        // Zero noise: the degraded fallback is the same rule verdict, so
        // clusters match the exact path even with the budget exhausted.
        let mut st_rule = Stats::default();
        let plain = apply_pairwise(&d, &rule, &ids, 1, &mut st_rule);
        assert_eq!(sorted(out), sorted(plain));
        assert_eq!(st, st_rule, "Stats never carry oracle spend");
        let spend = ledger.spend();
        assert_eq!(spend.calls, 10, "all 10 pairs settled");
        assert_eq!(spend.spent, 4, "budget cap");
        assert_eq!(spend.degraded, 6, "tail pairs degraded for free");
        assert_eq!(spend.degraded_pairs.len(), 6);
    }

    #[test]
    fn multifield_rule_distance_accounting() {
        use adalsh_data::rule::WeightedPart;
        let schema = Schema::new(vec![("a", FieldKind::Shingles), ("b", FieldKind::Shingles)]);
        let rec = |x: &[u64], y: &[u64]| {
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(x.to_vec())),
                FieldValue::Shingles(ShingleSet::new(y.to_vec())),
            ])
        };
        let d = Dataset::new(
            schema,
            vec![rec(&[1], &[2]), rec(&[1], &[2]), rec(&[9], &[9])],
            vec![0, 0, 1],
        );
        let rule = MatchRule::WeightedAverage {
            parts: vec![
                WeightedPart {
                    field: 0,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
                WeightedPart {
                    field: 1,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
            ],
            dthr: 0.2,
        };
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &rule, &[0, 1, 2], 1, &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1], vec![2]]);
        // 3 comparisons × 2 elementary distances each.
        assert_eq!(st.pair_comparisons, 3);
        assert_eq!(st.distance_evals, 6);
    }
}
