//! The pairwise computation function `P` (paper Definition 2,
//! Appendix B.3).
//!
//! `P` evaluates the match rule on record pairs of a cluster and outputs
//! the connected components of the resulting match graph. Two
//! optimizations from §6.1.1 are built in:
//!
//! * pairs already connected transitively are skipped (their trees share
//!   a root), saving their distance computations;
//! * components are maintained in the same parent-pointer [`Forest`] the
//!   hashing functions use.
//!
//! The *cost model* nevertheless charges `P` for all `|C|·(|C|−1)/2`
//! pairs (paper Definition 3 is conservative; see Appendix B.3's remark).

use adalsh_data::{Dataset, MatchRule};

use crate::ppt::Forest;
use crate::stats::Stats;

/// Applies `P` to `cluster` (record ids) under `rule`, returning the
/// connected components as record-id lists.
pub fn apply_pairwise(
    dataset: &Dataset,
    rule: &MatchRule,
    cluster: &[u32],
    stats: &mut Stats,
) -> Vec<Vec<u32>> {
    stats.pairwise_calls += 1;
    let n = cluster.len();
    let mut forest = Forest::new(n);
    for slot in 0..n as u32 {
        forest.add_singleton(slot);
    }
    let per_pair_distances = rule.num_elementary_distances() as u64;
    for i in 0..n as u32 {
        for j in (i + 1)..n as u32 {
            let ri = forest.find_root_of_slot(i).expect("added above");
            let rj = forest.find_root_of_slot(j).expect("added above");
            if ri == rj {
                // Transitively closed already — skip the comparison.
                continue;
            }
            stats.pair_comparisons += 1;
            stats.distance_evals += per_pair_distances;
            let a = dataset.record(cluster[i as usize]);
            let b = dataset.record(cluster[j as usize]);
            if rule.matches(a, b) {
                forest.merge_roots(ri, rj);
            }
        }
    }
    forest
        .clusters()
        .into_iter()
        .map(|slots| slots.into_iter().map(|s| cluster[s as usize]).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn dataset(sets: &[&[u64]]) -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records = sets
            .iter()
            .map(|s| Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec()))))
            .collect();
        let gt = (0..sets.len() as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn jaccard_rule(dthr: f64) -> MatchRule {
        MatchRule::threshold(0, FieldDistance::Jaccard, dthr)
    }

    fn sorted(mut clusters: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
        clusters.iter_mut().for_each(|c| c.sort_unstable());
        clusters.sort();
        clusters
    }

    #[test]
    fn exact_components() {
        // 0~1 (sim 0.5), 2 far from both.
        let d = dataset(&[&[1, 2, 3, 4], &[3, 4, 5, 6], &[100, 200]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.7), &[0, 1, 2], &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1], vec![2]]);
        assert_eq!(st.pairwise_calls, 1);
    }

    #[test]
    fn transitivity_via_middle_record() {
        // 0~1 and 1~2 but 0 and 2 are beyond the threshold: one component
        // by transitivity (paper §3's transitivity discussion).
        let d = dataset(&[&[1, 2, 3], &[2, 3, 4], &[3, 4, 5]]);
        // d(0,1) = 1 − 2/4 = 0.5; d(0,2) = 1 − 1/5 = 0.8.
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.5), &[0, 1, 2], &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn skips_transitively_closed_pairs() {
        // Four identical records: after 0-1, 0-2, 0-3 merge, pairs (1,2),
        // (1,3), (2,3) are closed ⇒ only 3 of 6 comparisons run.
        let d = dataset(&[&[1], &[1], &[1], &[1]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.1), &[0, 1, 2, 3], &mut st);
        assert_eq!(out.len(), 1);
        assert_eq!(st.pair_comparisons, 3);
    }

    #[test]
    fn all_far_pairs_compare_everything() {
        let d = dataset(&[&[1], &[2], &[3], &[4]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.1), &[0, 1, 2, 3], &mut st);
        assert_eq!(out.len(), 4);
        assert_eq!(st.pair_comparisons, 6);
        assert_eq!(st.distance_evals, 6);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let d = dataset(&[&[1]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.5), &[], &mut st);
        assert!(out.is_empty());
        let out = apply_pairwise(&d, &jaccard_rule(0.5), &[0], &mut st);
        assert_eq!(out, vec![vec![0]]);
        assert_eq!(st.pair_comparisons, 0);
    }

    #[test]
    fn respects_record_id_indirection() {
        // The cluster lists non-contiguous record ids.
        let d = dataset(&[&[1, 2], &[99], &[1, 2]]);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &jaccard_rule(0.2), &[2, 0], &mut st);
        assert_eq!(sorted(out), vec![vec![0, 2]]);
    }

    #[test]
    fn multifield_rule_distance_accounting() {
        use adalsh_data::rule::WeightedPart;
        let schema = Schema::new(vec![("a", FieldKind::Shingles), ("b", FieldKind::Shingles)]);
        let rec = |x: &[u64], y: &[u64]| {
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(x.to_vec())),
                FieldValue::Shingles(ShingleSet::new(y.to_vec())),
            ])
        };
        let d = Dataset::new(
            schema,
            vec![rec(&[1], &[2]), rec(&[1], &[2]), rec(&[9], &[9])],
            vec![0, 0, 1],
        );
        let rule = MatchRule::WeightedAverage {
            parts: vec![
                WeightedPart {
                    field: 0,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
                WeightedPart {
                    field: 1,
                    metric: FieldDistance::Jaccard,
                    weight: 0.5,
                },
            ],
            dthr: 0.2,
        };
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &rule, &[0, 1, 2], &mut st);
        assert_eq!(sorted(out), vec![vec![0, 1], vec![2]]);
        // 3 comparisons × 2 elementary distances each.
        assert_eq!(st.pair_comparisons, 3);
        assert_eq!(st.distance_evals, 6);
    }
}
