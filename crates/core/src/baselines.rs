//! Baseline filtering methods (paper §6.1.1, Appendix E.1).
//!
//! * [`Pairs`] — the pairwise computation function `P` on the whole
//!   dataset, with the transitive-closure skipping optimization; the
//!   traditional exact approach.
//! * [`LshBlocking`] — `LSH-X` blocking: a *single* stage of `X` hash
//!   functions per record with the optimal `(w, z)` such that `w·z ≤ X`,
//!   followed (unless `nP`) by `P`-verification of candidate clusters
//!   with all three fairness optimizations of §6.1.1: early termination
//!   once `k` verified clusters beat everything unverified, skipping
//!   transitively-closed pairs, and the same data structures as adaLSH.
//!
//! `LSH-X` is realized as a one-level [`AdaLsh`] engine —
//! `require_pairwise_final` gives exactly the verify-largest-first-and-
//! stop-early behaviour — so the baselines share every data structure
//! with the main algorithm, as the paper's comparison demands.

use adalsh_data::{MatchRule, RecordStore};

use crate::algorithm::{default_threads, AdaLsh, AdaLshConfig, FilterMethod, FilterOutput};
use crate::pairwise::apply_pairwise;
use crate::sequence::{BudgetStrategy, SequenceSpec};
use crate::stats::Stats;

/// The `Pairs` baseline: exact transitive closure over the whole dataset.
#[derive(Debug, Clone)]
pub struct Pairs {
    rule: MatchRule,
    threads: usize,
}

impl Pairs {
    /// Creates the baseline for a rule.
    pub fn new(rule: MatchRule) -> Self {
        Self {
            rule,
            threads: default_threads(),
        }
    }

    /// Overrides the worker-thread count for `P` (output and `Stats` are
    /// identical at any count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

impl FilterMethod for Pairs {
    fn name(&self) -> String {
        "Pairs".to_string()
    }

    fn filter(&mut self, store: &dyn RecordStore, k: usize) -> FilterOutput {
        let start = std::time::Instant::now();
        let mut stats = Stats::default();
        let all: Vec<u32> = (0..store.len() as u32).collect();
        let mut clusters = apply_pairwise(store, &self.rule, &all, self.threads, &mut stats);
        // Canonical order (see the same normalization in the engine).
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
        clusters.truncate(k);
        FilterOutput {
            clusters,
            stats,
            wall: start.elapsed(),
            oracle: None,
        }
    }
}

/// The `LSH-X` blocking baseline (optionally without the `P` stage).
pub struct LshBlocking {
    rule: MatchRule,
    /// Hash-function budget `X` applied to **every** record.
    x: u64,
    /// Apply `P` verification after the hashing stage (`false` = the
    /// `LSH-X-nP` variant of Appendix E.1).
    apply_p: bool,
    epsilon: f64,
    seed: u64,
    /// Worker-thread override for the underlying engine; `None` keeps the
    /// engine's default ([`default_threads`]).
    threads: Option<usize>,
}

impl LshBlocking {
    /// Creates `LSH-X` (with `P` verification).
    pub fn new(rule: MatchRule, x: u64) -> Self {
        Self {
            rule,
            x,
            apply_p: true,
            epsilon: 1e-3,
            seed: 0x5EED,
            threads: None,
        }
    }

    /// Creates `LSH-X-nP` (no `P` stage; Appendix E.1).
    pub fn without_pairwise(rule: MatchRule, x: u64) -> Self {
        Self {
            apply_p: false,
            ..Self::new(rule, x)
        }
    }

    /// Overrides the constraint slack ε used when shaping `(w, z)`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Overrides the hashing seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the worker-thread count (output and `Stats` are
    /// identical at any count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the single-level engine for a record store.
    fn engine(&self, store: &dyn RecordStore) -> Result<AdaLsh, String> {
        let mut config = AdaLshConfig::new(self.rule.clone());
        config.spec = SequenceSpec {
            epsilon: self.epsilon,
            // A single level of budget exactly X.
            strategy: BudgetStrategy::Linear { step: self.x },
            max_budget: self.x,
            seed: self.seed,
        };
        config.require_pairwise_final = self.apply_p;
        if let Some(threads) = self.threads {
            config.threads = threads;
        }
        // LSH-X applies exactly X functions per record — never extend.
        config.scale_max_budget = false;
        AdaLsh::for_dataset(store, config)
    }
}

impl FilterMethod for LshBlocking {
    fn name(&self) -> String {
        if self.apply_p {
            format!("LSH{}", self.x)
        } else {
            format!("LSH{}nP", self.x)
        }
    }

    fn filter(&mut self, store: &dyn RecordStore, k: usize) -> FilterOutput {
        let mut engine = self
            .engine(store)
            .expect("LSH-X scheme must be designable for the rule");
        debug_assert_eq!(engine.num_levels(), 1, "LSH-X is single-stage");
        engine.run(store, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{Dataset, FieldDistance, FieldKind, FieldValue, Record, Schema, ShingleSet};

    fn planted(sizes: &[usize]) -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let mut records = Vec::new();
        let mut gt = Vec::new();
        for (e, &sz) in sizes.iter().enumerate() {
            let base: Vec<u64> = (0..20).map(|i| (e as u64) * 1000 + i).collect();
            for r in 0..sz {
                let mut s = base.clone();
                s.push((e as u64) * 1000 + 500 + (r as u64 % 5));
                records.push(Record::single(FieldValue::Shingles(ShingleSet::new(s))));
                gt.push(e as u32);
            }
        }
        Dataset::new(schema, records, gt)
    }

    fn rule() -> MatchRule {
        MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
    }

    #[test]
    fn pairs_is_exact() {
        let d = planted(&[10, 6, 3, 1]);
        let out = Pairs::new(rule()).filter(&d, 2);
        assert_eq!(out.clusters.len(), 2);
        assert_eq!(out.records(), d.gold_records(2));
        assert!(out.stats.hash_evals == 0, "Pairs never hashes");
        assert!(out.stats.pair_comparisons > 0);
    }

    #[test]
    fn pairs_name() {
        assert_eq!(Pairs::new(rule()).name(), "Pairs");
    }

    #[test]
    fn lsh_x_matches_pairs_output() {
        let d = planted(&[12, 7, 4, 2, 1]);
        let gold = Pairs::new(rule()).filter(&d, 3).records();
        let out = LshBlocking::new(rule(), 640).filter(&d, 3);
        assert_eq!(out.records(), gold);
        assert!(out.stats.pairwise_calls > 0, "LSH-X verifies with P");
    }

    #[test]
    fn lsh_x_hashes_every_record_once() {
        let d = planted(&[8, 5, 2]);
        let n = d.len() as u64;
        let out = LshBlocking::new(rule(), 320).filter(&d, 2);
        // Single stage: every record hashed with the same budget ≤ X.
        assert!(out.stats.hash_evals <= 320 * n);
        assert!(out.stats.hash_evals >= 320 * n / 2, "budget mostly used");
        assert_eq!(out.stats.transitive_calls, 1, "exactly one hashing stage");
    }

    #[test]
    fn lsh_x_np_skips_verification() {
        let d = planted(&[8, 5, 2]);
        let out = LshBlocking::without_pairwise(rule(), 320).filter(&d, 2);
        assert_eq!(out.stats.pairwise_calls, 0);
        assert_eq!(out.stats.pair_comparisons, 0);
        assert_eq!(out.clusters.len(), 2);
    }

    #[test]
    fn names_follow_paper_convention() {
        assert_eq!(LshBlocking::new(rule(), 1280).name(), "LSH1280");
        assert_eq!(LshBlocking::without_pairwise(rule(), 20).name(), "LSH20nP");
    }

    #[test]
    fn tiny_budget_np_is_coarse_but_total() {
        // LSH20nP must still output k clusters covering a superset/subset
        // of records without crashing — accuracy is allowed to drop
        // (that is the point of Figure 20).
        let d = planted(&[10, 6, 3, 2, 1]);
        let out = LshBlocking::without_pairwise(rule(), 20).filter(&d, 2);
        assert!(!out.clusters.is_empty());
    }
}
