//! The sequence of transitive-hashing schemes and incremental per-record
//! hash state.
//!
//! A sequence function `Hᵢ` is defined by a [`LevelScheme`]: either a
//! group of `z` **shared tables** each concatenating `ws[p]` hash values
//! from every elementary part `p` (single-field and AND rules, Appendix
//! C.1), or **per-part table groups** (OR rules, Appendix C.2).
//!
//! Incremental computation (paper §2.2 Property 4, Appendix B.2) works as
//! follows: table `t` of `Hᵢ` extends table `t` of `Hᵢ₋₁` — widths and
//! table counts are nondecreasing along the sequence (`wᵢ ≤ wᵢ₊₁`,
//! `zᵢ ≤ zᵢ₊₁`, §4.1) — so advancing a record from level `i−1` to `i`
//! evaluates only the *new* hash functions. Per-record state is one u64
//! accumulator per table per completed level ([`RecordHashState`]); the
//! accumulator folds the table's hash values in a fixed order, so two
//! records share a bucket at level `i` exactly when all their table-`t`
//! values agree (up to a 2⁻⁶⁴ mixing collision, which merely merges two
//! clusters — harmless for a conservative filter). Completed levels stay
//! addressable ([`SequenceHasher::keys`]) so a later run re-applying an
//! earlier sequence function to an already-deep record is a free lookup.

use adalsh_data::{FieldDistance, RecordFields};
use adalsh_lsh::mix::{combine, derive_seed, splitmix64};
use adalsh_lsh::multifield::WeightedSelection;
use adalsh_lsh::scheme::WzScheme;
use adalsh_lsh::{DensifiedMinHash, HyperplaneFamily, MinHashFamily, MinhashScheme};
use serde::{Deserialize, Serialize};

use crate::stats::Stats;

/// Reusable buffers for the batched advance path. One instance per
/// worker thread amortizes every allocation across records; the
/// convenience [`SequenceHasher::advance`] creates a throwaway one.
#[derive(Debug, Default)]
pub struct HashScratch {
    /// Per-group value buffer, laid out in canonical task order.
    vals: Vec<u64>,
    /// Staging buffer for weighted sub-part batches before scattering.
    tmp: Vec<u64>,
    /// Per-part read cursors used by the fold.
    cursors: Vec<usize>,
    /// Per-DOPH-part full slot arrays, indexed by [`DophSlots::space`].
    /// A multi-level jump reads many slot ranges of the same array, so
    /// each array is computed at most once per `advance_with_scratch`
    /// call and the ranges are served from here.
    doph_vals: Vec<Vec<u64>>,
    /// Which `doph_vals` entries are valid for the *current* record
    /// (reset at the top of every advance call).
    doph_valid: Vec<bool>,
}

/// Returns the full DOPH slot array for one part and the current record,
/// computing it on first use within the advance call. Free function over
/// the two scratch fields so callers holding disjoint borrows of the
/// other scratch buffers can still reach it.
fn doph_slot_values<'a>(
    vals: &'a mut Vec<Vec<u64>>,
    valid: &mut Vec<bool>,
    space: usize,
    family: &DensifiedMinHash,
    set: &[u64],
) -> &'a [u64] {
    if vals.len() <= space {
        vals.resize_with(space + 1, Vec::new);
        valid.resize(space + 1, false);
    }
    if !valid[space] {
        let buf = &mut vals[space];
        buf.clear();
        buf.resize(family.num_slots(), 0);
        family.hash_all(set, buf);
        valid[space] = true;
    }
    &vals[space]
}

/// One function `Hᵢ` of the sequence: its per-part table parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelScheme {
    /// `z` tables shared by all parts; table `t` concatenates `ws[p]`
    /// values from part `p`. A single-field scheme is `ws.len() == 1`.
    Shared {
        /// Per-part widths (hash functions per table from each part).
        ws: Vec<u32>,
        /// Number of tables.
        z: u32,
    },
    /// Each part has its own `(w, z)` table group (OR rules).
    PerPart {
        /// Per-part schemes.
        parts: Vec<WzScheme>,
    },
}

impl LevelScheme {
    /// Number of elementary parts this scheme draws from.
    pub fn num_parts(&self) -> usize {
        match self {
            LevelScheme::Shared { ws, .. } => ws.len(),
            LevelScheme::PerPart { parts } => parts.len(),
        }
    }

    /// Total hash-function budget per record.
    pub fn budget(&self) -> u64 {
        match self {
            LevelScheme::Shared { ws, z } => {
                ws.iter().map(|&w| u64::from(w)).sum::<u64>() * u64::from(*z)
            }
            LevelScheme::PerPart { parts } => parts.iter().map(WzScheme::budget).sum(),
        }
    }

    /// Does `self` extend `prev` (all widths and table counts
    /// nondecreasing, same structure)? Required between consecutive
    /// sequence functions.
    pub fn extends(&self, prev: &LevelScheme) -> bool {
        match (self, prev) {
            (LevelScheme::Shared { ws: w1, z: z1 }, LevelScheme::Shared { ws: w0, z: z0 }) => {
                w1.len() == w0.len() && z1 >= z0 && w1.iter().zip(w0).all(|(a, b)| a >= b)
            }
            (LevelScheme::PerPart { parts: p1 }, LevelScheme::PerPart { parts: p0 }) => {
                p1.len() == p0.len() && p1.iter().zip(p0).all(|(a, b)| a.w >= b.w && a.z >= b.z)
            }
            _ => false,
        }
    }
}

/// Elementary hash source backing one part of the scheme.
#[derive(Debug)]
pub enum HashPart {
    /// Random hyperplanes over a dense field; one lazily-created family
    /// per table so hash indices stay dense per table.
    Dense {
        /// Field index into the record.
        field: usize,
        /// Vector dimension.
        dim: usize,
        /// Part seed; table `t`'s family seed is derived from it.
        seed: u64,
        /// Per-table hyperplane families, grown on demand.
        tables: Vec<HyperplaneFamily>,
    },
    /// MinHash over a shingle field (stateless).
    Shingles {
        /// Field index into the record.
        field: usize,
        /// The classic MinHash family.
        family: MinHashFamily,
        /// Densified one-permutation evaluator — present exactly when
        /// the owning hasher was built with [`MinhashScheme::Doph`].
        doph: Option<DophSlots>,
    },
    /// Definition-7 weighted selection over simple sub-parts.
    Weighted {
        /// The per-function field sampler.
        selection: WeightedSelection,
        /// One simple part per weighted component.
        choices: Vec<HashPart>,
    },
}

/// Index-mix stride separating functions of different tables for the
/// stateless families.
const TABLE_STRIDE: u64 = 1 << 24;

/// DOPH evaluation state of one shingle part: a single-permutation
/// family over the **whole sequence's** slot grid. The last level
/// dominates (widths and table counts are nondecreasing), so task
/// `(t, j)` of *any* level maps to the fixed dense slot `t·w_max + j`
/// of a `z_max·w_max`-slot array — making every slot value a pure
/// function of the record, independent of which level (or jump) asks.
#[derive(Debug)]
pub struct DophSlots {
    /// The one-permutation family over `z_max · w_max` bins.
    family: DensifiedMinHash,
    /// Slot-grid row stride (`w` of the last level).
    w_max: u32,
    /// Index into the scratch's per-part slot-array cache.
    space: usize,
}

impl HashPart {
    /// Builds a dense part.
    pub fn dense(field: usize, dim: usize, seed: u64) -> Self {
        HashPart::Dense {
            field,
            dim,
            seed,
            tables: Vec::new(),
        }
    }

    /// Builds a shingle part (classic MinHash until the owning hasher
    /// materializes it under a scheme).
    pub fn shingles(field: usize, seed: u64) -> Self {
        HashPart::Shingles {
            field,
            family: MinHashFamily::new(seed),
            doph: None,
        }
    }

    /// Builds a Definition-7 weighted part from `(field, metric, weight)`
    /// components.
    ///
    /// # Panics
    /// Panics if a component nests another weighted part (Definition 7 is
    /// a one-level selection) or dims are needed but unknown.
    pub fn weighted(parts: &[(usize, FieldDistance, f64)], dims: &[usize], seed: u64) -> Self {
        let weights: Vec<f64> = parts.iter().map(|&(_, _, w)| w).collect();
        let selection = WeightedSelection::new(&weights, derive_seed(seed, 0));
        let choices = parts
            .iter()
            .enumerate()
            .map(|(i, &(field, metric, _))| match metric {
                FieldDistance::Angular => {
                    HashPart::dense(field, dims[i], derive_seed(seed, 1 + i as u64))
                }
                FieldDistance::Jaccard => {
                    HashPart::shingles(field, derive_seed(seed, 1 + i as u64))
                }
            })
            .collect();
        HashPart::Weighted { selection, choices }
    }

    /// Materializes every lazily-created structure needed to evaluate
    /// functions `0..w` of tables `0..z` (hyperplane normals; the DOPH
    /// slot grid when `scheme` asks for it, drawing one scratch cache
    /// slot from `next_space` per shingle source). After this call,
    /// [`HashPart::eval`] is pure and thread-shareable.
    fn materialize(&mut self, z: u32, w: u32, scheme: MinhashScheme, next_space: &mut usize) {
        match self {
            HashPart::Dense {
                dim, seed, tables, ..
            } => {
                while tables.len() < z as usize {
                    let idx = tables.len() as u64;
                    tables.push(HyperplaneFamily::new(*dim, derive_seed(*seed, idx)));
                }
                for fam in tables.iter_mut().take(z as usize) {
                    fam.ensure_functions(w as usize);
                }
            }
            HashPart::Shingles { family, doph, .. } => {
                if scheme == MinhashScheme::Doph && doph.is_none() && z > 0 && w > 0 {
                    let space = *next_space;
                    *next_space += 1;
                    *doph = Some(DophSlots {
                        family: DensifiedMinHash::new(family.seed(), (z * w) as usize),
                        w_max: w,
                        space,
                    });
                }
            }
            HashPart::Weighted { choices, .. } => {
                for c in choices {
                    c.materialize(z, w, scheme, next_space);
                }
            }
        }
    }

    /// Evaluates hash function `j` of table `t` on a record. Requires the
    /// function to be materialized (see [`HashPart::materialize`]).
    ///
    /// # Panics
    /// Panics if a dense function was not materialized.
    fn eval<R: RecordFields>(&self, t: u32, j: u32, record: &R) -> u64 {
        match self {
            HashPart::Dense { field, tables, .. } => {
                tables[t as usize].hash(j as usize, record.field_ref(*field).as_dense())
            }
            HashPart::Shingles {
                field,
                doph: Some(dp),
                ..
            } => {
                // Scalar oracle for the DOPH scheme: recompute the full
                // slot array and read one slot. Quadratic over a level —
                // this path exists for differential tests, not hot loops.
                let set = record.field_ref(*field).as_shingles();
                let mut all = vec![0u64; dp.family.num_slots()];
                dp.family.hash_all(set, &mut all);
                all[(t * dp.w_max + j) as usize]
            }
            HashPart::Shingles {
                field,
                family,
                doph: None,
            } => {
                let idx = u64::from(t) * TABLE_STRIDE + u64::from(j);
                family.hash(idx as usize, record.field_ref(*field).as_shingles())
            }
            HashPart::Weighted { selection, choices } => {
                let idx = u64::from(t) * TABLE_STRIDE + u64::from(j);
                let c = selection.field_for(idx as usize);
                choices[c].eval(t, j, record)
            }
        }
    }
}

/// Per-record incremental hash state: the deepest level applied so far
/// and the finalized table accumulators of **every** completed level.
///
/// Keeping each level's accumulators (rather than only the deepest —
/// lower-level tables are extended in place as levels advance, so they
/// are not recoverable after the fact) is what lets a *later* run
/// re-apply an earlier sequence function to an already-deep record as a
/// free lookup: repeated top-k queries over a growing dataset start
/// from `H₁` every time, and Property 4's "never recompute a hash
/// value" promise has to hold for every level, not just the frontier.
/// The cost is one `u64` per table per completed level per record.
///
/// `PartialEq` compares the full state (level and every accumulator) —
/// the equality the batched/scalar differential tests rely on.
///
/// The state is serde-serializable so a snapshot of an online resolver
/// carries the raw hash work already spent on each record across a
/// restart (accumulators are exact `u64`s; nothing is re-derived on
/// load).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordHashState {
    /// Deepest sequence level applied to this record (0 = none).
    pub level: u16,
    /// `history[l - 1]` holds the accumulators after completing level
    /// `l`: `history[l - 1][g][t]` for group `g`, table `t`. `Shared`
    /// schemes use a single group; `PerPart` one per part.
    history: Vec<Vec<Vec<u64>>>,
}

impl RecordHashState {
    /// True when the accumulator history matches the claimed level —
    /// the invariant [`SequenceHasher::keys`] relies on. Deserialized
    /// states (snapshot resume) must be checked before use.
    pub fn is_well_formed(&self) -> bool {
        self.history.len() == self.level as usize
    }
}

/// Precomputed work-list for advancing one level (`lvl−1 → lvl`): the
/// `(table, function)` tasks of every group/part in the exact canonical
/// order the scalar fold consumes them, plus per-task data (MinHash keys,
/// hyperplane function runs, weighted sub-part partitions) derived once
/// at construction instead of once per record.
#[derive(Debug)]
struct LevelPlan {
    groups: Vec<GroupPlan>,
}

/// One table group of a level plan (`Shared` has a single group fed by
/// all parts; `PerPart` one group per part).
#[derive(Debug)]
struct GroupPlan {
    /// Group tag folded into fresh-table accumulator seeds.
    group: u32,
    /// Tables `0..z_from` already exist and are extended; tables
    /// `z_from..z_to` are fresh.
    z_from: u32,
    z_to: u32,
    /// Total task count across `parts` (the group's buffer length).
    total: usize,
    /// Per part feeding this group, in part order.
    parts: Vec<PartPlan>,
}

/// One part's slice of a group plan. Tasks are ordered phase-A first
/// (existing tables `t < z_from`, new functions `w_from..w_to`), then
/// phase-B (fresh tables, functions `0..w_to`) — matching the canonical
/// fold order of the scalar path.
#[derive(Debug)]
struct PartPlan {
    /// Index into `SequenceHasher::parts`.
    part: usize,
    w_from: u32,
    w_to: u32,
    /// Start of this part's values in the group buffer.
    offset: usize,
    /// Number of tasks (= values produced).
    count: usize,
    kind: PartPlanKind,
}

#[derive(Debug)]
enum PartPlanKind {
    /// Classic MinHash: per-task keys (`derive_seed(family_seed,
    /// t·STRIDE + j)`) cached so record hashing never re-derives them.
    Shingles { keys: Vec<u64> },
    /// DOPH MinHash: this level's tasks as dense indices into the part's
    /// whole-sequence slot array (`t·w_max + j`, in canonical task
    /// order) — the level requests a slot range of the one-pass array
    /// instead of per-function evaluations.
    DophSlots { slots: Vec<usize> },
    /// Hyperplanes: one `(table, ascending function list)` run per table,
    /// in task order.
    Dense { runs: Vec<(u32, Vec<usize>)> },
    /// Weighted selection: tasks partitioned by the selected sub-part,
    /// each remembering its position in the part's value slice so the
    /// fold order is preserved.
    Weighted { choices: Vec<ChoicePlan> },
}

/// The tasks a weighted part routes to one of its sub-parts.
#[derive(Debug)]
struct ChoicePlan {
    /// Index into the weighted part's `choices`.
    choice: usize,
    /// Positions within the part's value slice, ascending.
    positions: Vec<usize>,
    kind: ChoiceKind,
}

#[derive(Debug)]
enum ChoiceKind {
    /// Cached classic MinHash keys, aligned with `positions`.
    Shingles { keys: Vec<u64> },
    /// DOPH slot indices, aligned with `positions`.
    DophSlots { slots: Vec<usize> },
    /// Hyperplane runs, aligned with `positions` when flattened.
    Dense { runs: Vec<(u32, Vec<usize>)> },
}

/// The canonical `(table, function)` task list for one part of one
/// level transition: phase A then phase B (see [`PartPlan`]).
fn canonical_tasks(w_from: u32, w_to: u32, z_from: u32, z_to: u32) -> Vec<(u32, u32)> {
    let mut tasks =
        Vec::with_capacity((z_from * (w_to - w_from) + (z_to - z_from) * w_to) as usize);
    for t in 0..z_from {
        for j in w_from..w_to {
            tasks.push((t, j));
        }
    }
    for t in z_from..z_to {
        for j in 0..w_to {
            tasks.push((t, j));
        }
    }
    tasks
}

/// Groups a task list into per-table runs of ascending function indices.
fn dense_runs(tasks: &[(u32, u32)]) -> Vec<(u32, Vec<usize>)> {
    let mut runs: Vec<(u32, Vec<usize>)> = Vec::new();
    for &(t, j) in tasks {
        match runs.last_mut() {
            Some((rt, js)) if *rt == t => js.push(j as usize),
            _ => runs.push((t, vec![j as usize])),
        }
    }
    runs
}

fn build_part_plan(
    parts: &[HashPart],
    part: usize,
    w_from: u32,
    w_to: u32,
    z_from: u32,
    z_to: u32,
    offset: usize,
) -> PartPlan {
    let tasks = canonical_tasks(w_from, w_to, z_from, z_to);
    let kind = match &parts[part] {
        HashPart::Shingles { doph: Some(dp), .. } => PartPlanKind::DophSlots {
            slots: tasks
                .iter()
                .map(|&(t, j)| (t * dp.w_max + j) as usize)
                .collect(),
        },
        HashPart::Shingles { family, .. } => PartPlanKind::Shingles {
            keys: tasks
                .iter()
                .map(|&(t, j)| {
                    family.key_for((u64::from(t) * TABLE_STRIDE + u64::from(j)) as usize)
                })
                .collect(),
        },
        HashPart::Dense { .. } => PartPlanKind::Dense {
            runs: dense_runs(&tasks),
        },
        HashPart::Weighted { selection, choices } => {
            let mut plans: Vec<ChoicePlan> = choices
                .iter()
                .enumerate()
                .map(|(c, choice)| ChoicePlan {
                    choice: c,
                    positions: Vec::new(),
                    kind: match choice {
                        HashPart::Shingles { doph: Some(_), .. } => {
                            ChoiceKind::DophSlots { slots: Vec::new() }
                        }
                        HashPart::Shingles { .. } => ChoiceKind::Shingles { keys: Vec::new() },
                        HashPart::Dense { .. } => ChoiceKind::Dense { runs: Vec::new() },
                        HashPart::Weighted { .. } => {
                            unreachable!("Definition 7 selections are one level deep")
                        }
                    },
                })
                .collect();
            for (pos, &(t, j)) in tasks.iter().enumerate() {
                let idx = u64::from(t) * TABLE_STRIDE + u64::from(j);
                let c = selection.field_for(idx as usize);
                plans[c].positions.push(pos);
                match (&mut plans[c].kind, &choices[c]) {
                    (
                        ChoiceKind::DophSlots { slots },
                        HashPart::Shingles { doph: Some(dp), .. },
                    ) => {
                        slots.push((t * dp.w_max + j) as usize);
                    }
                    (ChoiceKind::Shingles { keys }, HashPart::Shingles { family, .. }) => {
                        keys.push(family.key_for(idx as usize));
                    }
                    (ChoiceKind::Dense { runs }, HashPart::Dense { .. }) => match runs.last_mut() {
                        Some((rt, js)) if *rt == t => js.push(j as usize),
                        _ => runs.push((t, vec![j as usize])),
                    },
                    _ => unreachable!("choice plan kind matches sub-part kind"),
                }
            }
            plans.retain(|p| !p.positions.is_empty());
            PartPlanKind::Weighted { choices: plans }
        }
    };
    PartPlan {
        part,
        w_from,
        w_to,
        offset,
        count: tasks.len(),
        kind,
    }
}

/// Builds the per-level plans (one per `lvl−1 → lvl` transition; jumps
/// advance level by level, so these cover every transition that occurs).
fn build_plans(parts: &[HashPart], levels: &[LevelScheme]) -> Vec<LevelPlan> {
    let mut plans = Vec::with_capacity(levels.len());
    for (li, level) in levels.iter().enumerate() {
        let prev = if li == 0 { None } else { Some(&levels[li - 1]) };
        let groups = match level {
            LevelScheme::Shared { ws, z } => {
                let (ws_from, z_from) = match prev {
                    None => (vec![0u32; ws.len()], 0),
                    Some(LevelScheme::Shared { ws, z }) => (ws.clone(), *z),
                    Some(LevelScheme::PerPart { .. }) => unreachable!("structure is uniform"),
                };
                let mut pps = Vec::with_capacity(ws.len());
                let mut offset = 0usize;
                for (p, &w_to) in ws.iter().enumerate() {
                    let pp = build_part_plan(parts, p, ws_from[p], w_to, z_from, *z, offset);
                    offset += pp.count;
                    pps.push(pp);
                }
                vec![GroupPlan {
                    group: 0,
                    z_from,
                    z_to: *z,
                    total: offset,
                    parts: pps,
                }]
            }
            LevelScheme::PerPart { parts: tos } => tos
                .iter()
                .enumerate()
                .map(|(p, s)| {
                    let (w_from, z_from) = match prev {
                        None => (0, 0),
                        Some(LevelScheme::PerPart { parts }) => (parts[p].w, parts[p].z),
                        Some(LevelScheme::Shared { .. }) => unreachable!("structure is uniform"),
                    };
                    let pp = build_part_plan(parts, p, w_from, s.w, z_from, s.z, 0);
                    GroupPlan {
                        group: p as u32,
                        z_from,
                        z_to: s.z,
                        total: pp.count,
                        parts: vec![pp],
                    }
                })
                .collect(),
        };
        plans.push(LevelPlan { groups });
    }
    plans
}

/// The full hashing side of a sequence `H₁ … H_L`: elementary parts plus
/// per-level schemes and the precomputed batch plans.
#[derive(Debug)]
pub struct SequenceHasher {
    parts: Vec<HashPart>,
    levels: Vec<LevelScheme>,
    plans: Vec<LevelPlan>,
    scheme: MinhashScheme,
}

impl SequenceHasher {
    /// Creates a classic-scheme hasher; see
    /// [`SequenceHasher::with_scheme`].
    ///
    /// # Panics
    /// Panics on structural violations.
    pub fn new(parts: Vec<HashPart>, levels: Vec<LevelScheme>) -> Self {
        Self::with_scheme(parts, levels, MinhashScheme::Classic)
    }

    /// Creates a hasher, validating that all levels share the same
    /// structure, reference every part, and extend one another. `scheme`
    /// selects how shingle parts evaluate MinHash: classic (one keyed
    /// permutation per slot, bit-compatible with previously persisted
    /// states) or DOPH (all slots of the sequence in one pass per
    /// record). The two schemes produce different hash values, so states
    /// advanced under one must never be advanced under the other.
    ///
    /// # Panics
    /// Panics on structural violations.
    pub fn with_scheme(
        parts: Vec<HashPart>,
        levels: Vec<LevelScheme>,
        scheme: MinhashScheme,
    ) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        for level in &levels {
            assert_eq!(
                level.num_parts(),
                parts.len(),
                "level arity must match part count"
            );
        }
        for pair in levels.windows(2) {
            assert!(
                pair[1].extends(&pair[0]),
                "levels must be nondecreasing in w and z: {:?} does not extend {:?}",
                pair[1],
                pair[0]
            );
        }
        let mut hasher = Self {
            parts,
            levels,
            plans: Vec::new(),
            scheme,
        };
        // Materialize every hyperplane normal — and, for DOPH, every
        // slot grid — the whole sequence can touch (the last level
        // dominates, by monotonicity). After this, evaluation is pure —
        // `advance` takes `&self` and records can be hashed from
        // multiple threads.
        let mut next_space = 0usize;
        let last = hasher.levels.last().expect("non-empty").clone();
        match last {
            LevelScheme::Shared { ws, z } => {
                for (p, part) in hasher.parts.iter_mut().enumerate() {
                    part.materialize(z, ws[p], scheme, &mut next_space);
                }
            }
            LevelScheme::PerPart { parts } => {
                for (p, part) in hasher.parts.iter_mut().enumerate() {
                    part.materialize(parts[p].z, parts[p].w, scheme, &mut next_space);
                }
            }
        }
        hasher.plans = build_plans(&hasher.parts, &hasher.levels);
        hasher
    }

    /// The MinHash evaluation scheme this hasher was built with.
    pub fn scheme(&self) -> MinhashScheme {
        self.scheme
    }

    /// Number of sequence functions `L`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The scheme of level `lvl` (1-based).
    pub fn level(&self, lvl: usize) -> &LevelScheme {
        &self.levels[lvl - 1]
    }

    /// All level schemes, in order.
    pub fn levels(&self) -> &[LevelScheme] {
        &self.levels
    }

    /// The elementary hash parts, in order.
    pub fn parts(&self) -> &[HashPart] {
        &self.parts
    }

    /// Advances a record's state to `to_level` (1-based), evaluating only
    /// the hash functions not yet applied. No-op if already at or past
    /// `to_level` — re-applying an earlier level costs nothing, its keys
    /// are served from the state's history.
    ///
    /// Levels are applied one at a time so every record folds its table
    /// accumulators in the same canonical order — a record advanced
    /// 0→3 directly must end with bit-identical keys to one advanced
    /// 0→1→2→3, or cross-record bucket comparisons would silently fail
    /// for multi-part schemes.
    ///
    /// Evaluation is **batched**: each level dispatches one kernel call
    /// per part ([`MinHashFamily::hash_batch_keys`] /
    /// [`HyperplaneFamily::hash_batch`]) over the precomputed work-list,
    /// then folds the values in the canonical order — states and
    /// `Stats.hash_evals` are bit-identical to
    /// [`SequenceHasher::advance_scalar`].
    ///
    /// # Panics
    /// Panics if `to_level` is out of range.
    pub fn advance<R: RecordFields>(
        &self,
        record: &R,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
    ) {
        let mut scratch = HashScratch::default();
        self.advance_with_scratch(record, state, to_level, stats, &mut scratch);
    }

    /// Like [`SequenceHasher::advance`], reusing caller-owned scratch
    /// buffers — the form hot loops (one scratch per worker thread) use.
    ///
    /// # Panics
    /// Panics if `to_level` is out of range.
    pub fn advance_with_scratch<R: RecordFields>(
        &self,
        record: &R,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
        scratch: &mut HashScratch,
    ) {
        assert!(
            (1..=self.levels.len()).contains(&to_level),
            "level out of range"
        );
        let from = state.level as usize;
        // DOPH slot arrays are cached per advance call (one record): a
        // jump across several levels reads disjoint ranges of the same
        // array, so compute it once here and invalidate on entry.
        scratch.doph_valid.fill(false);
        // Already at or past `to_level`: nothing to evaluate — the
        // target level's keys are served from the state's history.
        for lvl in (from + 1)..=to_level {
            self.advance_one_batched(record, state, lvl, stats, scratch);
        }
    }

    /// Advances exactly one level via the batch plans.
    fn advance_one_batched<R: RecordFields>(
        &self,
        record: &R,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
        scratch: &mut HashScratch,
    ) {
        debug_assert_eq!(state.level as usize + 1, to_level);
        let plan = &self.plans[to_level - 1];
        // This level's accumulators start as a copy of the previous
        // level's (existing tables are extended, fresh ones appended);
        // the previous entry stays untouched so its keys remain servable.
        let prev = match state.history.last() {
            Some(g) => g.clone(),
            None => vec![Vec::new(); plan.groups.len()],
        };
        state.history.push(prev);
        let groups = state.history.last_mut().expect("just pushed");
        for (g, gp) in plan.groups.iter().enumerate() {
            scratch.vals.clear();
            scratch.vals.resize(gp.total, 0);
            for pp in &gp.parts {
                let out = &mut scratch.vals[pp.offset..pp.offset + pp.count];
                match &pp.kind {
                    PartPlanKind::Shingles { keys } => {
                        let HashPart::Shingles { field, .. } = &self.parts[pp.part] else {
                            unreachable!("plan kind matches part kind")
                        };
                        let set = record.field_ref(*field).as_shingles();
                        MinHashFamily::hash_batch_keys(keys, set, out);
                    }
                    PartPlanKind::DophSlots { slots } => {
                        let HashPart::Shingles {
                            field,
                            doph: Some(dp),
                            ..
                        } = &self.parts[pp.part]
                        else {
                            unreachable!("plan kind matches part kind")
                        };
                        let set = record.field_ref(*field).as_shingles();
                        let all = doph_slot_values(
                            &mut scratch.doph_vals,
                            &mut scratch.doph_valid,
                            dp.space,
                            &dp.family,
                            set,
                        );
                        for (o, &s) in out.iter_mut().zip(slots) {
                            *o = all[s];
                        }
                    }
                    PartPlanKind::Dense { runs } => {
                        let HashPart::Dense { field, tables, .. } = &self.parts[pp.part] else {
                            unreachable!("plan kind matches part kind")
                        };
                        let v = record.field_ref(*field).as_dense();
                        let mut cur = 0usize;
                        for (t, js) in runs {
                            tables[*t as usize].hash_batch(js, v, &mut out[cur..cur + js.len()]);
                            cur += js.len();
                        }
                    }
                    PartPlanKind::Weighted { choices: cplans } => {
                        let HashPart::Weighted { choices, .. } = &self.parts[pp.part] else {
                            unreachable!("plan kind matches part kind")
                        };
                        for cp in cplans {
                            scratch.tmp.clear();
                            scratch.tmp.resize(cp.positions.len(), 0);
                            match (&cp.kind, &choices[cp.choice]) {
                                (
                                    ChoiceKind::Shingles { keys },
                                    HashPart::Shingles { field, .. },
                                ) => {
                                    let set = record.field_ref(*field).as_shingles();
                                    MinHashFamily::hash_batch_keys(keys, set, &mut scratch.tmp);
                                }
                                (
                                    ChoiceKind::DophSlots { slots },
                                    HashPart::Shingles {
                                        field,
                                        doph: Some(dp),
                                        ..
                                    },
                                ) => {
                                    let set = record.field_ref(*field).as_shingles();
                                    let all = doph_slot_values(
                                        &mut scratch.doph_vals,
                                        &mut scratch.doph_valid,
                                        dp.space,
                                        &dp.family,
                                        set,
                                    );
                                    for (o, &s) in scratch.tmp.iter_mut().zip(slots) {
                                        *o = all[s];
                                    }
                                }
                                (
                                    ChoiceKind::Dense { runs },
                                    HashPart::Dense { field, tables, .. },
                                ) => {
                                    let v = record.field_ref(*field).as_dense();
                                    let mut cur = 0usize;
                                    for (t, js) in runs {
                                        tables[*t as usize].hash_batch(
                                            js,
                                            v,
                                            &mut scratch.tmp[cur..cur + js.len()],
                                        );
                                        cur += js.len();
                                    }
                                }
                                _ => unreachable!("choice plan kind matches sub-part kind"),
                            }
                            for (&pos, &val) in cp.positions.iter().zip(&scratch.tmp) {
                                out[pos] = val;
                            }
                        }
                    }
                }
            }
            stats.hash_evals += gp.total as u64;

            // Fold the values into the accumulators in the exact order
            // the scalar path uses: existing tables first (new function
            // range per part), then fresh tables (full widths), parts in
            // order within each table.
            let accs = &mut groups[g];
            debug_assert_eq!(accs.len(), gp.z_from as usize);
            scratch.cursors.clear();
            scratch.cursors.extend(gp.parts.iter().map(|pp| pp.offset));
            for t in 0..gp.z_from {
                let mut acc = accs[t as usize];
                for (pi, pp) in gp.parts.iter().enumerate() {
                    let n = (pp.w_to - pp.w_from) as usize;
                    let c = scratch.cursors[pi];
                    for &v in &scratch.vals[c..c + n] {
                        acc = combine(acc, v);
                    }
                    scratch.cursors[pi] = c + n;
                }
                accs[t as usize] = acc;
            }
            for t in gp.z_from..gp.z_to {
                let mut acc = splitmix64(u64::from(gp.group) << 32 | u64::from(t));
                for (pi, pp) in gp.parts.iter().enumerate() {
                    let n = pp.w_to as usize;
                    let c = scratch.cursors[pi];
                    for &v in &scratch.vals[c..c + n] {
                        acc = combine(acc, v);
                    }
                    scratch.cursors[pi] = c + n;
                }
                accs.push(acc);
            }
        }
        state.level = to_level as u16;
    }

    /// Reference implementation of [`SequenceHasher::advance`]: one
    /// scalar `eval` per hash function, folding as it goes. Kept as the
    /// differential-test oracle for the batched path; not used on hot
    /// paths.
    ///
    /// # Panics
    /// Panics if `to_level` is out of range.
    pub fn advance_scalar<R: RecordFields>(
        &self,
        record: &R,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
    ) {
        assert!(
            (1..=self.levels.len()).contains(&to_level),
            "level out of range"
        );
        let from = state.level as usize;
        for lvl in (from + 1)..=to_level {
            self.advance_one(record, state, lvl, stats);
        }
    }

    /// Advances exactly one level (from `lvl − 1` to `lvl`), scalar path.
    fn advance_one<R: RecordFields>(
        &self,
        record: &R,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
    ) {
        let from = state.level as usize;
        debug_assert_eq!(from + 1, to_level);
        // As in the batched path: extend a copy of the previous level's
        // accumulators so every completed level stays servable.
        let mut groups = state.history.last().cloned().unwrap_or_default();
        match &self.levels[to_level - 1] {
            LevelScheme::Shared { ws, z } => {
                let (ws_from, z_from) = if from == 0 {
                    (vec![0u32; ws.len()], 0u32)
                } else {
                    match &self.levels[from - 1] {
                        LevelScheme::Shared { ws, z } => (ws.clone(), *z),
                        LevelScheme::PerPart { .. } => unreachable!("structure is uniform"),
                    }
                };
                if groups.is_empty() {
                    groups.push(Vec::new());
                }
                let ws = ws.clone();
                let z = *z;
                Self::extend_group(
                    &self.parts,
                    &mut groups[0],
                    record,
                    &ws_from,
                    z_from,
                    &ws,
                    z,
                    0,
                    stats,
                );
            }
            LevelScheme::PerPart { parts: to_parts } => {
                let from_parts: Vec<WzScheme> = if from == 0 {
                    to_parts.iter().map(|_| WzScheme::new(1, 1)).collect() // placeholder, unused
                } else {
                    match &self.levels[from - 1] {
                        LevelScheme::PerPart { parts } => parts.clone(),
                        LevelScheme::Shared { .. } => unreachable!("structure is uniform"),
                    }
                };
                if groups.is_empty() {
                    groups = vec![Vec::new(); to_parts.len()];
                }
                let to_parts = to_parts.clone();
                for (p, to_s) in to_parts.iter().enumerate() {
                    let (w_from, z_from) = if from == 0 {
                        (0, 0)
                    } else {
                        (from_parts[p].w, from_parts[p].z)
                    };
                    let part = &self.parts[p..=p];
                    Self::extend_group(
                        part,
                        &mut groups[p],
                        record,
                        &[w_from],
                        z_from,
                        &[to_s.w],
                        to_s.z,
                        p as u32,
                        stats,
                    );
                }
            }
        }
        state.history.push(groups);
        state.level = to_level as u16;
    }

    /// Extends one table group's accumulators from `(ws_from, z_from)` to
    /// `(ws_to, z_to)`. `parts` are the elementary sources feeding this
    /// group (all of them for `Shared`, a single one for `PerPart`).
    #[allow(clippy::too_many_arguments)]
    fn extend_group<R: RecordFields>(
        parts: &[HashPart],
        accs: &mut Vec<u64>,
        record: &R,
        ws_from: &[u32],
        z_from: u32,
        ws_to: &[u32],
        z_to: u32,
        group: u32,
        stats: &mut Stats,
    ) {
        debug_assert_eq!(accs.len(), z_from as usize);
        // Extend existing tables with the new function range per part.
        for t in 0..z_from {
            let mut acc = accs[t as usize];
            for (p, part) in parts.iter().enumerate() {
                for j in ws_from[p]..ws_to[p] {
                    acc = combine(acc, part.eval(t, j, record));
                    stats.hash_evals += 1;
                }
            }
            accs[t as usize] = acc;
        }
        // Fresh tables get the full widths.
        for t in z_from..z_to {
            let mut acc = splitmix64(u64::from(group) << 32 | u64::from(t));
            for (p, part) in parts.iter().enumerate() {
                for j in 0..ws_to[p] {
                    acc = combine(acc, part.eval(t, j, record));
                    stats.hash_evals += 1;
                }
            }
            accs.push(acc);
        }
    }

    /// Bucket keys of a record at any *completed* level: `(table_tag,
    /// key)` pairs, where `table_tag` is unique per (group, table).
    /// Earlier levels stay addressable after the record advances — a
    /// later run re-applying `H₁` to a deep record reads the persisted
    /// level-1 keys instead of re-hashing.
    ///
    /// # Panics
    /// Panics if `level` is 0 or beyond the record's current level.
    pub fn keys<'s>(
        &self,
        state: &'s RecordHashState,
        level: usize,
    ) -> impl Iterator<Item = (u64, u64)> + 's {
        assert!(
            (1..=state.level as usize).contains(&level),
            "level {level} not yet applied to this record (state at {})",
            state.level
        );
        state.history[level - 1]
            .iter()
            .enumerate()
            .flat_map(|(g, accs)| {
                accs.iter()
                    .enumerate()
                    .map(move |(t, &acc)| ((g as u64) << 32 | t as u64, acc))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{DenseVector, FieldValue, Record, ShingleSet};

    fn dense_record(v: &[f64]) -> Record {
        Record::single(FieldValue::Dense(DenseVector::new(v.to_vec())))
    }

    fn shingle_record(s: &[u64]) -> Record {
        Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec())))
    }

    fn shared_levels() -> Vec<LevelScheme> {
        vec![
            LevelScheme::Shared { ws: vec![2], z: 3 },
            LevelScheme::Shared { ws: vec![4], z: 5 },
            LevelScheme::Shared { ws: vec![4], z: 9 },
        ]
    }

    #[test]
    fn budget_accounting() {
        let l = LevelScheme::Shared {
            ws: vec![3, 2],
            z: 4,
        };
        assert_eq!(l.budget(), 20);
        let o = LevelScheme::PerPart {
            parts: vec![WzScheme::new(2, 3), WzScheme::new(5, 2)],
        };
        assert_eq!(o.budget(), 16);
    }

    #[test]
    fn extends_checks_monotonicity() {
        let a = LevelScheme::Shared { ws: vec![2], z: 3 };
        let b = LevelScheme::Shared { ws: vec![4], z: 5 };
        assert!(b.extends(&a));
        assert!(!a.extends(&b));
        let o = LevelScheme::PerPart {
            parts: vec![WzScheme::new(2, 3)],
        };
        assert!(!o.extends(&a), "mixed structures never extend");
    }

    #[test]
    fn incremental_equals_from_scratch() {
        // Advancing 0→1→2→3 must produce the same accumulators as 0→3.
        let r = shingle_record(&[1, 5, 9, 42, 77]);
        let mk = || SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());

        let h1 = mk();
        let mut s1 = RecordHashState::default();
        let mut st = Stats::default();
        h1.advance(&r, &mut s1, 1, &mut st);
        h1.advance(&r, &mut s1, 2, &mut st);
        h1.advance(&r, &mut s1, 3, &mut st);

        let h2 = mk();
        let mut s2 = RecordHashState::default();
        h2.advance(&r, &mut s2, 3, &mut st);

        let k1: Vec<_> = h1.keys(&s1, 3).collect();
        let k2: Vec<_> = h2.keys(&s2, 3).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn jump_equals_stepwise_for_multipart() {
        // Two-part AND scheme: a record advanced 0→2 directly must agree
        // with one advanced 0→1→2 (canonical fold order).
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![9, 8])),
        ]);
        let levels = vec![
            LevelScheme::Shared {
                ws: vec![2, 1],
                z: 2,
            },
            LevelScheme::Shared {
                ws: vec![3, 2],
                z: 4,
            },
        ];
        let mk = || {
            SequenceHasher::new(
                vec![HashPart::shingles(0, 5), HashPart::shingles(1, 6)],
                levels.clone(),
            )
        };
        let mut st = Stats::default();
        let h1 = mk();
        let mut s1 = RecordHashState::default();
        h1.advance(&rec, &mut s1, 1, &mut st);
        h1.advance(&rec, &mut s1, 2, &mut st);
        let h2 = mk();
        let mut s2 = RecordHashState::default();
        h2.advance(&rec, &mut s2, 2, &mut st);
        assert_eq!(
            h1.keys(&s1, 2).collect::<Vec<_>>(),
            h2.keys(&s2, 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn incremental_saves_hash_evals() {
        let r = shingle_record(&[1, 2, 3]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());
        let mut s = RecordHashState::default();
        let mut st = Stats::default();
        h.advance(&r, &mut s, 1, &mut st);
        assert_eq!(st.hash_evals, 6, "level 1 = 2·3 evals");
        h.advance(&r, &mut s, 2, &mut st);
        // Level 2 = 4·5 = 20 cumulative ⇒ 14 new.
        assert_eq!(st.hash_evals, 20);
        h.advance(&r, &mut s, 3, &mut st);
        // Level 3 = 4·9 = 36 cumulative ⇒ 16 new.
        assert_eq!(st.hash_evals, 36);
    }

    #[test]
    fn identical_records_share_all_keys() {
        let a = shingle_record(&[10, 20, 30]);
        let b = shingle_record(&[30, 10, 20]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 5)], shared_levels());
        let mut st = Stats::default();
        let (mut sa, mut sb) = (RecordHashState::default(), RecordHashState::default());
        h.advance(&a, &mut sa, 2, &mut st);
        h.advance(&b, &mut sb, 2, &mut st);
        let ka: Vec<_> = h.keys(&sa, 2).collect();
        let kb: Vec<_> = h.keys(&sb, 2).collect();
        assert_eq!(ka, kb);
    }

    /// A record advanced straight to level 3 must serve the same level-1
    /// and level-2 keys as records stopped at those levels: completed
    /// levels stay addressable from the history, which is what lets a
    /// later query re-apply an earlier sequence function for free.
    #[test]
    fn earlier_level_keys_stay_readable_after_advancing() {
        let r = shingle_record(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 5)], shared_levels());
        let mut st = Stats::default();
        let mut deep = RecordHashState::default();
        h.advance(&r, &mut deep, 3, &mut st);
        for lvl in 1..=2 {
            let mut shallow = RecordHashState::default();
            h.advance(&r, &mut shallow, lvl, &mut st);
            assert_eq!(
                h.keys(&deep, lvl).collect::<Vec<_>>(),
                h.keys(&shallow, lvl).collect::<Vec<_>>(),
                "level {lvl} keys must survive deeper advancement"
            );
        }
    }

    /// Re-applying any already-completed level is a free no-op — the
    /// state is untouched and no hash function is evaluated.
    #[test]
    fn re_advancing_to_a_completed_level_is_free() {
        let r = shingle_record(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 5)], shared_levels());
        let mut st = Stats::default();
        let mut s = RecordHashState::default();
        h.advance(&r, &mut s, 3, &mut st);
        let frozen = s.clone();
        let evals = st.hash_evals;
        for lvl in 1..=3 {
            h.advance(&r, &mut s, lvl, &mut st);
            h.advance_scalar(&r, &mut s, lvl, &mut st);
        }
        assert_eq!(s, frozen, "no-op advances must not mutate the state");
        assert_eq!(st.hash_evals, evals, "and must not evaluate anything");
    }

    #[test]
    fn distant_records_share_no_keys() {
        let a = shingle_record(&(0..50).collect::<Vec<_>>());
        let b = shingle_record(&(1000..1050).collect::<Vec<_>>());
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 5)], shared_levels());
        let mut st = Stats::default();
        let (mut sa, mut sb) = (RecordHashState::default(), RecordHashState::default());
        h.advance(&a, &mut sa, 3, &mut st);
        h.advance(&b, &mut sb, 3, &mut st);
        let ka: Vec<u64> = h.keys(&sa, 3).map(|(_, k)| k).collect();
        let kb: Vec<u64> = h.keys(&sb, 3).map(|(_, k)| k).collect();
        assert!(ka.iter().zip(&kb).all(|(x, y)| x != y));
    }

    #[test]
    fn dense_part_works_end_to_end() {
        let a = dense_record(&[1.0, 0.1, -0.2, 0.5]);
        let b = dense_record(&[1.0, 0.1, -0.2, 0.5]);
        let h = SequenceHasher::new(
            vec![HashPart::dense(0, 4, 3)],
            vec![LevelScheme::Shared { ws: vec![3], z: 2 }],
        );
        let mut st = Stats::default();
        let (mut sa, mut sb) = (RecordHashState::default(), RecordHashState::default());
        h.advance(&a, &mut sa, 1, &mut st);
        h.advance(&b, &mut sb, 1, &mut st);
        assert_eq!(
            h.keys(&sa, 1).collect::<Vec<_>>(),
            h.keys(&sb, 1).collect::<Vec<_>>()
        );
        assert_eq!(st.hash_evals, 12);
    }

    #[test]
    fn per_part_groups_are_independent() {
        let schema_rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![100, 200])),
        ]);
        let levels = vec![
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 2), WzScheme::new(1, 3)],
            },
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 4), WzScheme::new(2, 3)],
            },
        ];
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, 1), HashPart::shingles(1, 2)],
            levels,
        );
        let mut st = Stats::default();
        let mut s = RecordHashState::default();
        h.advance(&schema_rec, &mut s, 1, &mut st);
        assert_eq!(st.hash_evals, 2 * 2 + 3);
        let keys: Vec<_> = h.keys(&s, 1).collect();
        assert_eq!(keys.len(), 5);
        // Table tags must be unique.
        let mut tags: Vec<u64> = keys.iter().map(|&(t, _)| t).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 5);
        h.advance(&schema_rec, &mut s, 2, &mut st);
        assert_eq!(h.keys(&s, 2).count(), 7);
    }

    #[test]
    fn weighted_part_hashes_by_selected_field() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![4, 5])),
        ]);
        let part = HashPart::weighted(
            &[
                (0, FieldDistance::Jaccard, 0.5),
                (1, FieldDistance::Jaccard, 0.5),
            ],
            &[0, 0],
            9,
        );
        let h = SequenceHasher::new(vec![part], vec![LevelScheme::Shared { ws: vec![8], z: 2 }]);
        let mut st = Stats::default();
        let mut s = RecordHashState::default();
        h.advance(&rec, &mut s, 1, &mut st);
        assert_eq!(st.hash_evals, 16);
        assert_eq!(h.keys(&s, 1).count(), 2);
    }

    /// Advances `rec` to every level along both paths and asserts states
    /// and eval counts stay bit-identical throughout.
    fn assert_paths_agree(h: &SequenceHasher, rec: &Record) {
        let mut scratch = HashScratch::default();
        let mut sb = RecordHashState::default();
        let mut ss = RecordHashState::default();
        let (mut stb, mut sts) = (Stats::default(), Stats::default());
        for lvl in 1..=h.num_levels() {
            h.advance_with_scratch(rec, &mut sb, lvl, &mut stb, &mut scratch);
            h.advance_scalar(rec, &mut ss, lvl, &mut sts);
            assert_eq!(sb, ss, "state mismatch at level {lvl}");
            assert_eq!(stb.hash_evals, sts.hash_evals, "eval count at level {lvl}");
        }
        // A direct jump must also agree.
        let mut jump = RecordHashState::default();
        let mut stj = Stats::default();
        h.advance(rec, &mut jump, h.num_levels(), &mut stj);
        assert_eq!(jump, sb, "jump state mismatch");
        assert_eq!(stj.hash_evals, stb.hash_evals);
    }

    #[test]
    fn batched_matches_scalar_shared_shingles() {
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());
        assert_paths_agree(&h, &shingle_record(&[1, 5, 9, 42, 77, 1000]));
        assert_paths_agree(&h, &shingle_record(&[3]));
        assert_paths_agree(&h, &shingle_record(&[]));
    }

    #[test]
    fn batched_matches_scalar_multipart_shared() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Dense(DenseVector::new(vec![0.5, -0.25, 1.5])),
        ]);
        let levels = vec![
            LevelScheme::Shared {
                ws: vec![2, 1],
                z: 2,
            },
            LevelScheme::Shared {
                ws: vec![3, 4],
                z: 5,
            },
        ];
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, 5), HashPart::dense(1, 3, 6)],
            levels,
        );
        assert_paths_agree(&h, &rec);
    }

    #[test]
    fn batched_matches_scalar_per_part() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![100, 200])),
        ]);
        let levels = vec![
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 2), WzScheme::new(1, 3)],
            },
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 4), WzScheme::new(2, 3)],
            },
        ];
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, 1), HashPart::shingles(1, 2)],
            levels,
        );
        assert_paths_agree(&h, &rec);
    }

    #[test]
    fn batched_matches_scalar_weighted() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3, 7])),
            FieldValue::Dense(DenseVector::new(vec![0.1, -0.9])),
        ]);
        let part = HashPart::weighted(
            &[
                (0, FieldDistance::Jaccard, 0.6),
                (1, FieldDistance::Angular, 0.4),
            ],
            &[0, 2],
            9,
        );
        let h = SequenceHasher::new(
            vec![part],
            vec![
                LevelScheme::Shared { ws: vec![4], z: 2 },
                LevelScheme::Shared { ws: vec![8], z: 6 },
            ],
        );
        assert_paths_agree(&h, &rec);
    }

    /// DOPH: batched path vs scalar oracle vs direct jump, across every
    /// part topology the planner supports.
    #[test]
    fn doph_batched_matches_scalar_shared_shingles() {
        let h = SequenceHasher::with_scheme(
            vec![HashPart::shingles(0, 11)],
            shared_levels(),
            MinhashScheme::Doph,
        );
        assert_paths_agree(&h, &shingle_record(&[1, 5, 9, 42, 77, 1000]));
        assert_paths_agree(&h, &shingle_record(&[3]));
        assert_paths_agree(&h, &shingle_record(&[]));
    }

    #[test]
    fn doph_batched_matches_scalar_multipart_shared() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Dense(DenseVector::new(vec![0.5, -0.25, 1.5])),
        ]);
        let levels = vec![
            LevelScheme::Shared {
                ws: vec![2, 1],
                z: 2,
            },
            LevelScheme::Shared {
                ws: vec![3, 4],
                z: 5,
            },
        ];
        let h = SequenceHasher::with_scheme(
            vec![HashPart::shingles(0, 5), HashPart::dense(1, 3, 6)],
            levels,
            MinhashScheme::Doph,
        );
        assert_paths_agree(&h, &rec);
    }

    #[test]
    fn doph_batched_matches_scalar_per_part() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![100, 200])),
        ]);
        let levels = vec![
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 2), WzScheme::new(1, 3)],
            },
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 4), WzScheme::new(2, 3)],
            },
        ];
        let h = SequenceHasher::with_scheme(
            vec![HashPart::shingles(0, 1), HashPart::shingles(1, 2)],
            levels,
            MinhashScheme::Doph,
        );
        assert_paths_agree(&h, &rec);
    }

    #[test]
    fn doph_batched_matches_scalar_weighted() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3, 7])),
            FieldValue::Dense(DenseVector::new(vec![0.1, -0.9])),
        ]);
        let part = HashPart::weighted(
            &[
                (0, FieldDistance::Jaccard, 0.6),
                (1, FieldDistance::Angular, 0.4),
            ],
            &[0, 2],
            9,
        );
        let h = SequenceHasher::with_scheme(
            vec![part],
            vec![
                LevelScheme::Shared { ws: vec![4], z: 2 },
                LevelScheme::Shared { ws: vec![8], z: 6 },
            ],
            MinhashScheme::Doph,
        );
        assert_paths_agree(&h, &rec);
    }

    /// The scheme flag must actually change the hash values (and the
    /// hasher must report it) — otherwise "classic is the bit-compatible
    /// default" would be vacuous.
    #[test]
    fn doph_and_classic_states_differ() {
        let r = shingle_record(&[1, 5, 9, 42, 77]);
        let classic = SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());
        let doph = SequenceHasher::with_scheme(
            vec![HashPart::shingles(0, 11)],
            shared_levels(),
            MinhashScheme::Doph,
        );
        assert_eq!(classic.scheme(), MinhashScheme::Classic);
        assert_eq!(doph.scheme(), MinhashScheme::Doph);
        let mut st = Stats::default();
        let (mut sc, mut sd) = (RecordHashState::default(), RecordHashState::default());
        classic.advance(&r, &mut sc, 2, &mut st);
        doph.advance(&r, &mut sd, 2, &mut st);
        assert_ne!(sc, sd, "schemes must produce different hash values");
    }

    /// A scratch reused across records (the per-worker pattern) must
    /// serve each record exactly as a fresh scratch would — the DOPH
    /// slot cache is per-call, never leaked across records.
    #[test]
    fn doph_scratch_reuse_is_deterministic() {
        let records = [
            shingle_record(&[1, 5, 9, 42, 77]),
            shingle_record(&[2, 5, 10]),
            shingle_record(&[]),
            shingle_record(&[1, 5, 9, 42, 77]),
        ];
        let h = SequenceHasher::with_scheme(
            vec![HashPart::shingles(0, 11)],
            shared_levels(),
            MinhashScheme::Doph,
        );
        let mut reused = HashScratch::default();
        let mut st = Stats::default();
        let states_reused: Vec<RecordHashState> = records
            .iter()
            .map(|r| {
                let mut s = RecordHashState::default();
                h.advance_with_scratch(r, &mut s, 3, &mut st, &mut reused);
                s
            })
            .collect();
        for (r, reused_state) in records.iter().zip(&states_reused) {
            let mut fresh = RecordHashState::default();
            let mut scratch = HashScratch::default();
            h.advance_with_scratch(r, &mut fresh, 3, &mut st, &mut scratch);
            assert_eq!(&fresh, reused_state, "scratch reuse changed a state");
        }
        assert_eq!(
            states_reused[0], states_reused[3],
            "same record must always produce the same slots"
        );
    }

    #[test]
    fn state_serde_roundtrip_is_exact() {
        let r = shingle_record(&[1, 5, 9, 42, 77]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());
        let mut s = RecordHashState::default();
        let mut st = Stats::default();
        h.advance(&r, &mut s, 2, &mut st);
        let json = serde_json::to_string(&s).unwrap();
        let back: RecordHashState = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s, "restored state must be bit-identical");
        // A restored state advances exactly like the original.
        let mut st2 = Stats::default();
        let (mut a, mut b) = (s.clone(), back);
        h.advance(&r, &mut a, 3, &mut st);
        h.advance(&r, &mut b, 3, &mut st2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn shrinking_levels_rejected() {
        let _ = SequenceHasher::new(
            vec![HashPart::shingles(0, 1)],
            vec![
                LevelScheme::Shared { ws: vec![4], z: 4 },
                LevelScheme::Shared { ws: vec![2], z: 8 },
            ],
        );
    }

    /// A state whose claimed level exceeds its history (corrupt or
    /// hand-edited) is detectable before use.
    #[test]
    fn corrupt_level_is_not_well_formed() {
        let r = shingle_record(&[1]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 1)], shared_levels());
        let mut s = RecordHashState::default();
        let mut st = Stats::default();
        h.advance(&r, &mut s, 2, &mut st);
        assert!(s.is_well_formed());
        s.level = 3; // simulate corruption
        assert!(!s.is_well_formed());
    }
}
