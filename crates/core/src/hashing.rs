//! The sequence of transitive-hashing schemes and incremental per-record
//! hash state.
//!
//! A sequence function `Hᵢ` is defined by a [`LevelScheme`]: either a
//! group of `z` **shared tables** each concatenating `ws[p]` hash values
//! from every elementary part `p` (single-field and AND rules, Appendix
//! C.1), or **per-part table groups** (OR rules, Appendix C.2).
//!
//! Incremental computation (paper §2.2 Property 4, Appendix B.2) works as
//! follows: table `t` of `Hᵢ` extends table `t` of `Hᵢ₋₁` — widths and
//! table counts are nondecreasing along the sequence (`wᵢ ≤ wᵢ₊₁`,
//! `zᵢ ≤ zᵢ₊₁`, §4.1) — so advancing a record from level `i−1` to `i`
//! evaluates only the *new* hash functions. Per-record state is one u64
//! accumulator per table ([`RecordHashState`]); the accumulator folds the
//! table's hash values in a fixed order, so two records share a bucket at
//! level `i` exactly when all their table-`t` values agree (up to a
//! 2⁻⁶⁴ mixing collision, which merely merges two clusters — harmless for
//! a conservative filter).

use adalsh_data::{FieldDistance, Record};
use adalsh_lsh::mix::{combine, derive_seed, splitmix64};
use adalsh_lsh::multifield::WeightedSelection;
use adalsh_lsh::scheme::WzScheme;
use adalsh_lsh::{HyperplaneFamily, MinHashFamily};

use crate::stats::Stats;

/// One function `Hᵢ` of the sequence: its per-part table parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LevelScheme {
    /// `z` tables shared by all parts; table `t` concatenates `ws[p]`
    /// values from part `p`. A single-field scheme is `ws.len() == 1`.
    Shared {
        /// Per-part widths (hash functions per table from each part).
        ws: Vec<u32>,
        /// Number of tables.
        z: u32,
    },
    /// Each part has its own `(w, z)` table group (OR rules).
    PerPart {
        /// Per-part schemes.
        parts: Vec<WzScheme>,
    },
}

impl LevelScheme {
    /// Number of elementary parts this scheme draws from.
    pub fn num_parts(&self) -> usize {
        match self {
            LevelScheme::Shared { ws, .. } => ws.len(),
            LevelScheme::PerPart { parts } => parts.len(),
        }
    }

    /// Total hash-function budget per record.
    pub fn budget(&self) -> u64 {
        match self {
            LevelScheme::Shared { ws, z } => {
                ws.iter().map(|&w| u64::from(w)).sum::<u64>() * u64::from(*z)
            }
            LevelScheme::PerPart { parts } => parts.iter().map(WzScheme::budget).sum(),
        }
    }

    /// Does `self` extend `prev` (all widths and table counts
    /// nondecreasing, same structure)? Required between consecutive
    /// sequence functions.
    pub fn extends(&self, prev: &LevelScheme) -> bool {
        match (self, prev) {
            (LevelScheme::Shared { ws: w1, z: z1 }, LevelScheme::Shared { ws: w0, z: z0 }) => {
                w1.len() == w0.len()
                    && z1 >= z0
                    && w1.iter().zip(w0).all(|(a, b)| a >= b)
            }
            (LevelScheme::PerPart { parts: p1 }, LevelScheme::PerPart { parts: p0 }) => {
                p1.len() == p0.len()
                    && p1
                        .iter()
                        .zip(p0)
                        .all(|(a, b)| a.w >= b.w && a.z >= b.z)
            }
            _ => false,
        }
    }
}

/// Elementary hash source backing one part of the scheme.
#[derive(Debug)]
pub enum HashPart {
    /// Random hyperplanes over a dense field; one lazily-created family
    /// per table so hash indices stay dense per table.
    Dense {
        /// Field index into the record.
        field: usize,
        /// Vector dimension.
        dim: usize,
        /// Part seed; table `t`'s family seed is derived from it.
        seed: u64,
        /// Per-table hyperplane families, grown on demand.
        tables: Vec<HyperplaneFamily>,
    },
    /// MinHash over a shingle field (stateless).
    Shingles {
        /// Field index into the record.
        field: usize,
        /// The MinHash family.
        family: MinHashFamily,
    },
    /// Definition-7 weighted selection over simple sub-parts.
    Weighted {
        /// The per-function field sampler.
        selection: WeightedSelection,
        /// One simple part per weighted component.
        choices: Vec<HashPart>,
    },
}

/// Index-mix stride separating functions of different tables for the
/// stateless families.
const TABLE_STRIDE: u64 = 1 << 24;

impl HashPart {
    /// Builds a dense part.
    pub fn dense(field: usize, dim: usize, seed: u64) -> Self {
        HashPart::Dense {
            field,
            dim,
            seed,
            tables: Vec::new(),
        }
    }

    /// Builds a shingle part.
    pub fn shingles(field: usize, seed: u64) -> Self {
        HashPart::Shingles {
            field,
            family: MinHashFamily::new(seed),
        }
    }

    /// Builds a Definition-7 weighted part from `(field, metric, weight)`
    /// components.
    ///
    /// # Panics
    /// Panics if a component nests another weighted part (Definition 7 is
    /// a one-level selection) or dims are needed but unknown.
    pub fn weighted(parts: &[(usize, FieldDistance, f64)], dims: &[usize], seed: u64) -> Self {
        let weights: Vec<f64> = parts.iter().map(|&(_, _, w)| w).collect();
        let selection = WeightedSelection::new(&weights, derive_seed(seed, 0));
        let choices = parts
            .iter()
            .enumerate()
            .map(|(i, &(field, metric, _))| match metric {
                FieldDistance::Angular => HashPart::dense(field, dims[i], derive_seed(seed, 1 + i as u64)),
                FieldDistance::Jaccard => HashPart::shingles(field, derive_seed(seed, 1 + i as u64)),
            })
            .collect();
        HashPart::Weighted { selection, choices }
    }

    /// Materializes every lazily-created structure needed to evaluate
    /// functions `0..w` of tables `0..z` (hyperplane normals). After this
    /// call, [`HashPart::eval`] is pure and thread-shareable.
    fn materialize(&mut self, z: u32, w: u32) {
        match self {
            HashPart::Dense {
                dim, seed, tables, ..
            } => {
                while tables.len() < z as usize {
                    let idx = tables.len() as u64;
                    tables.push(HyperplaneFamily::new(*dim, derive_seed(*seed, idx)));
                }
                for fam in tables.iter_mut().take(z as usize) {
                    fam.ensure_functions(w as usize);
                }
            }
            HashPart::Shingles { .. } => {}
            HashPart::Weighted { choices, .. } => {
                for c in choices {
                    c.materialize(z, w);
                }
            }
        }
    }

    /// Evaluates hash function `j` of table `t` on a record. Requires the
    /// function to be materialized (see [`HashPart::materialize`]).
    ///
    /// # Panics
    /// Panics if a dense function was not materialized.
    fn eval(&self, t: u32, j: u32, record: &Record) -> u64 {
        match self {
            HashPart::Dense { field, tables, .. } => tables[t as usize]
                .hash(j as usize, record.field(*field).as_dense().components()),
            HashPart::Shingles { field, family } => {
                let idx = u64::from(t) * TABLE_STRIDE + u64::from(j);
                family.hash(idx as usize, record.field(*field).as_shingles().shingles())
            }
            HashPart::Weighted { selection, choices } => {
                let idx = u64::from(t) * TABLE_STRIDE + u64::from(j);
                let c = selection.field_for(idx as usize);
                choices[c].eval(t, j, record)
            }
        }
    }
}

/// Per-record incremental hash state: the current level and one
/// accumulator per table, grouped as the scheme dictates.
#[derive(Debug, Clone, Default)]
pub struct RecordHashState {
    /// Last sequence level applied to this record (0 = none).
    pub level: u16,
    /// Accumulators: `groups[g][t]` for group `g`, table `t`.
    /// `Shared` schemes use a single group; `PerPart` one per part.
    groups: Vec<Vec<u64>>,
}

/// The full hashing side of a sequence `H₁ … H_L`: elementary parts plus
/// per-level schemes.
#[derive(Debug)]
pub struct SequenceHasher {
    parts: Vec<HashPart>,
    levels: Vec<LevelScheme>,
}

impl SequenceHasher {
    /// Creates a hasher, validating that all levels share the same
    /// structure, reference every part, and extend one another.
    ///
    /// # Panics
    /// Panics on structural violations.
    pub fn new(parts: Vec<HashPart>, levels: Vec<LevelScheme>) -> Self {
        assert!(!levels.is_empty(), "need at least one level");
        for level in &levels {
            assert_eq!(
                level.num_parts(),
                parts.len(),
                "level arity must match part count"
            );
        }
        for pair in levels.windows(2) {
            assert!(
                pair[1].extends(&pair[0]),
                "levels must be nondecreasing in w and z: {:?} does not extend {:?}",
                pair[1],
                pair[0]
            );
        }
        let mut hasher = Self { parts, levels };
        // Materialize every hyperplane normal the whole sequence can
        // touch (the last level dominates, by monotonicity). After this,
        // evaluation is pure — `advance` takes `&self` and records can be
        // hashed from multiple threads.
        let last = hasher.levels.last().expect("non-empty").clone();
        match last {
            LevelScheme::Shared { ws, z } => {
                for (p, part) in hasher.parts.iter_mut().enumerate() {
                    part.materialize(z, ws[p]);
                }
            }
            LevelScheme::PerPart { parts } => {
                for (p, part) in hasher.parts.iter_mut().enumerate() {
                    part.materialize(parts[p].z, parts[p].w);
                }
            }
        }
        hasher
    }

    /// Number of sequence functions `L`.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The scheme of level `lvl` (1-based).
    pub fn level(&self, lvl: usize) -> &LevelScheme {
        &self.levels[lvl - 1]
    }

    /// All level schemes, in order.
    pub fn levels(&self) -> &[LevelScheme] {
        &self.levels
    }

    /// The elementary hash parts, in order.
    pub fn parts(&self) -> &[HashPart] {
        &self.parts
    }

    /// Advances a record's state to `to_level` (1-based), evaluating only
    /// the hash functions not yet applied. No-op if already there.
    ///
    /// Levels are applied one at a time so every record folds its table
    /// accumulators in the same canonical order — a record advanced
    /// 0→3 directly must end with bit-identical keys to one advanced
    /// 0→1→2→3, or cross-record bucket comparisons would silently fail
    /// for multi-part schemes.
    ///
    /// # Panics
    /// Panics if `to_level` is out of range or behind the record's level.
    pub fn advance(
        &self,
        record: &Record,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
    ) {
        assert!(
            (1..=self.levels.len()).contains(&to_level),
            "level out of range"
        );
        let from = state.level as usize;
        assert!(from <= to_level, "hash state cannot move backwards");
        for lvl in (from + 1)..=to_level {
            self.advance_one(record, state, lvl, stats);
        }
    }

    /// Advances exactly one level (from `lvl − 1` to `lvl`).
    fn advance_one(
        &self,
        record: &Record,
        state: &mut RecordHashState,
        to_level: usize,
        stats: &mut Stats,
    ) {
        let from = state.level as usize;
        debug_assert_eq!(from + 1, to_level);
        match &self.levels[to_level - 1] {
            LevelScheme::Shared { ws, z } => {
                let (ws_from, z_from) = if from == 0 {
                    (vec![0u32; ws.len()], 0u32)
                } else {
                    match &self.levels[from - 1] {
                        LevelScheme::Shared { ws, z } => (ws.clone(), *z),
                        LevelScheme::PerPart { .. } => unreachable!("structure is uniform"),
                    }
                };
                if state.groups.is_empty() {
                    state.groups.push(Vec::new());
                }
                let ws = ws.clone();
                let z = *z;
                Self::extend_group(
                    &self.parts,
                    &mut state.groups[0],
                    record,
                    &ws_from,
                    z_from,
                    &ws,
                    z,
                    0,
                    stats,
                );
            }
            LevelScheme::PerPart { parts: to_parts } => {
                let from_parts: Vec<WzScheme> = if from == 0 {
                    to_parts.iter().map(|_| WzScheme::new(1, 1)).collect() // placeholder, unused
                } else {
                    match &self.levels[from - 1] {
                        LevelScheme::PerPart { parts } => parts.clone(),
                        LevelScheme::Shared { .. } => unreachable!("structure is uniform"),
                    }
                };
                if state.groups.is_empty() {
                    state.groups = vec![Vec::new(); to_parts.len()];
                }
                let to_parts = to_parts.clone();
                for (p, to_s) in to_parts.iter().enumerate() {
                    let (w_from, z_from) = if from == 0 {
                        (0, 0)
                    } else {
                        (from_parts[p].w, from_parts[p].z)
                    };
                    let part = &self.parts[p..=p];
                    Self::extend_group(
                        part,
                        &mut state.groups[p],
                        record,
                        &[w_from],
                        z_from,
                        &[to_s.w],
                        to_s.z,
                        p as u32,
                        stats,
                    );
                }
            }
        }
        state.level = to_level as u16;
    }

    /// Extends one table group's accumulators from `(ws_from, z_from)` to
    /// `(ws_to, z_to)`. `parts` are the elementary sources feeding this
    /// group (all of them for `Shared`, a single one for `PerPart`).
    #[allow(clippy::too_many_arguments)]
    fn extend_group(
        parts: &[HashPart],
        accs: &mut Vec<u64>,
        record: &Record,
        ws_from: &[u32],
        z_from: u32,
        ws_to: &[u32],
        z_to: u32,
        group: u32,
        stats: &mut Stats,
    ) {
        debug_assert_eq!(accs.len(), z_from as usize);
        // Extend existing tables with the new function range per part.
        for t in 0..z_from {
            let mut acc = accs[t as usize];
            for (p, part) in parts.iter().enumerate() {
                for j in ws_from[p]..ws_to[p] {
                    acc = combine(acc, part.eval(t, j, record));
                    stats.hash_evals += 1;
                }
            }
            accs[t as usize] = acc;
        }
        // Fresh tables get the full widths.
        for t in z_from..z_to {
            let mut acc = splitmix64(u64::from(group) << 32 | u64::from(t));
            for (p, part) in parts.iter().enumerate() {
                for j in 0..ws_to[p] {
                    acc = combine(acc, part.eval(t, j, record));
                    stats.hash_evals += 1;
                }
            }
            accs.push(acc);
        }
    }

    /// Bucket keys of a record at its current level: `(table_tag, key)`
    /// pairs, where `table_tag` is unique per (group, table).
    ///
    /// # Panics
    /// Panics if the state's level does not match `level`.
    pub fn keys<'s>(
        &self,
        state: &'s RecordHashState,
        level: usize,
    ) -> impl Iterator<Item = (u64, u64)> + 's {
        assert_eq!(state.level as usize, level, "state not at requested level");
        state.groups.iter().enumerate().flat_map(|(g, accs)| {
            accs.iter()
                .enumerate()
                .map(move |(t, &acc)| ((g as u64) << 32 | t as u64, acc))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{DenseVector, FieldValue, Record, ShingleSet};

    fn dense_record(v: &[f64]) -> Record {
        Record::single(FieldValue::Dense(DenseVector::new(v.to_vec())))
    }

    fn shingle_record(s: &[u64]) -> Record {
        Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec())))
    }

    fn shared_levels() -> Vec<LevelScheme> {
        vec![
            LevelScheme::Shared { ws: vec![2], z: 3 },
            LevelScheme::Shared { ws: vec![4], z: 5 },
            LevelScheme::Shared { ws: vec![4], z: 9 },
        ]
    }

    #[test]
    fn budget_accounting() {
        let l = LevelScheme::Shared {
            ws: vec![3, 2],
            z: 4,
        };
        assert_eq!(l.budget(), 20);
        let o = LevelScheme::PerPart {
            parts: vec![WzScheme::new(2, 3), WzScheme::new(5, 2)],
        };
        assert_eq!(o.budget(), 16);
    }

    #[test]
    fn extends_checks_monotonicity() {
        let a = LevelScheme::Shared { ws: vec![2], z: 3 };
        let b = LevelScheme::Shared { ws: vec![4], z: 5 };
        assert!(b.extends(&a));
        assert!(!a.extends(&b));
        let o = LevelScheme::PerPart {
            parts: vec![WzScheme::new(2, 3)],
        };
        assert!(!o.extends(&a), "mixed structures never extend");
    }

    #[test]
    fn incremental_equals_from_scratch() {
        // Advancing 0→1→2→3 must produce the same accumulators as 0→3.
        let r = shingle_record(&[1, 5, 9, 42, 77]);
        let mk = || SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());

        let h1 = mk();
        let mut s1 = RecordHashState::default();
        let mut st = Stats::default();
        h1.advance(&r, &mut s1, 1, &mut st);
        h1.advance(&r, &mut s1, 2, &mut st);
        h1.advance(&r, &mut s1, 3, &mut st);

        let h2 = mk();
        let mut s2 = RecordHashState::default();
        h2.advance(&r, &mut s2, 3, &mut st);

        let k1: Vec<_> = h1.keys(&s1, 3).collect();
        let k2: Vec<_> = h2.keys(&s2, 3).collect();
        assert_eq!(k1, k2);
    }

    #[test]
    fn jump_equals_stepwise_for_multipart() {
        // Two-part AND scheme: a record advanced 0→2 directly must agree
        // with one advanced 0→1→2 (canonical fold order).
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![9, 8])),
        ]);
        let levels = vec![
            LevelScheme::Shared {
                ws: vec![2, 1],
                z: 2,
            },
            LevelScheme::Shared {
                ws: vec![3, 2],
                z: 4,
            },
        ];
        let mk = || {
            SequenceHasher::new(
                vec![HashPart::shingles(0, 5), HashPart::shingles(1, 6)],
                levels.clone(),
            )
        };
        let mut st = Stats::default();
        let h1 = mk();
        let mut s1 = RecordHashState::default();
        h1.advance(&rec, &mut s1, 1, &mut st);
        h1.advance(&rec, &mut s1, 2, &mut st);
        let h2 = mk();
        let mut s2 = RecordHashState::default();
        h2.advance(&rec, &mut s2, 2, &mut st);
        assert_eq!(
            h1.keys(&s1, 2).collect::<Vec<_>>(),
            h2.keys(&s2, 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn incremental_saves_hash_evals() {
        let r = shingle_record(&[1, 2, 3]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 11)], shared_levels());
        let mut s = RecordHashState::default();
        let mut st = Stats::default();
        h.advance(&r, &mut s, 1, &mut st);
        assert_eq!(st.hash_evals, 6, "level 1 = 2·3 evals");
        h.advance(&r, &mut s, 2, &mut st);
        // Level 2 = 4·5 = 20 cumulative ⇒ 14 new.
        assert_eq!(st.hash_evals, 20);
        h.advance(&r, &mut s, 3, &mut st);
        // Level 3 = 4·9 = 36 cumulative ⇒ 16 new.
        assert_eq!(st.hash_evals, 36);
    }

    #[test]
    fn identical_records_share_all_keys() {
        let a = shingle_record(&[10, 20, 30]);
        let b = shingle_record(&[30, 10, 20]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 5)], shared_levels());
        let mut st = Stats::default();
        let (mut sa, mut sb) = (RecordHashState::default(), RecordHashState::default());
        h.advance(&a, &mut sa, 2, &mut st);
        h.advance(&b, &mut sb, 2, &mut st);
        let ka: Vec<_> = h.keys(&sa, 2).collect();
        let kb: Vec<_> = h.keys(&sb, 2).collect();
        assert_eq!(ka, kb);
    }

    #[test]
    fn distant_records_share_no_keys() {
        let a = shingle_record(&(0..50).collect::<Vec<_>>());
        let b = shingle_record(&(1000..1050).collect::<Vec<_>>());
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 5)], shared_levels());
        let mut st = Stats::default();
        let (mut sa, mut sb) = (RecordHashState::default(), RecordHashState::default());
        h.advance(&a, &mut sa, 3, &mut st);
        h.advance(&b, &mut sb, 3, &mut st);
        let ka: Vec<u64> = h.keys(&sa, 3).map(|(_, k)| k).collect();
        let kb: Vec<u64> = h.keys(&sb, 3).map(|(_, k)| k).collect();
        assert!(ka.iter().zip(&kb).all(|(x, y)| x != y));
    }

    #[test]
    fn dense_part_works_end_to_end() {
        let a = dense_record(&[1.0, 0.1, -0.2, 0.5]);
        let b = dense_record(&[1.0, 0.1, -0.2, 0.5]);
        let h = SequenceHasher::new(
            vec![HashPart::dense(0, 4, 3)],
            vec![LevelScheme::Shared { ws: vec![3], z: 2 }],
        );
        let mut st = Stats::default();
        let (mut sa, mut sb) = (RecordHashState::default(), RecordHashState::default());
        h.advance(&a, &mut sa, 1, &mut st);
        h.advance(&b, &mut sb, 1, &mut st);
        assert_eq!(
            h.keys(&sa, 1).collect::<Vec<_>>(),
            h.keys(&sb, 1).collect::<Vec<_>>()
        );
        assert_eq!(st.hash_evals, 12);
    }

    #[test]
    fn per_part_groups_are_independent() {
        let schema_rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![100, 200])),
        ]);
        let levels = vec![
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 2), WzScheme::new(1, 3)],
            },
            LevelScheme::PerPart {
                parts: vec![WzScheme::new(2, 4), WzScheme::new(2, 3)],
            },
        ];
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, 1), HashPart::shingles(1, 2)],
            levels,
        );
        let mut st = Stats::default();
        let mut s = RecordHashState::default();
        h.advance(&schema_rec, &mut s, 1, &mut st);
        assert_eq!(st.hash_evals, 2 * 2 + 3);
        let keys: Vec<_> = h.keys(&s, 1).collect();
        assert_eq!(keys.len(), 5);
        // Table tags must be unique.
        let mut tags: Vec<u64> = keys.iter().map(|&(t, _)| t).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 5);
        h.advance(&schema_rec, &mut s, 2, &mut st);
        assert_eq!(h.keys(&s, 2).count(), 7);
    }

    #[test]
    fn weighted_part_hashes_by_selected_field() {
        let rec = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3])),
            FieldValue::Shingles(ShingleSet::new(vec![4, 5])),
        ]);
        let part = HashPart::weighted(
            &[
                (0, FieldDistance::Jaccard, 0.5),
                (1, FieldDistance::Jaccard, 0.5),
            ],
            &[0, 0],
            9,
        );
        let h = SequenceHasher::new(
            vec![part],
            vec![LevelScheme::Shared { ws: vec![8], z: 2 }],
        );
        let mut st = Stats::default();
        let mut s = RecordHashState::default();
        h.advance(&rec, &mut s, 1, &mut st);
        assert_eq!(st.hash_evals, 16);
        assert_eq!(h.keys(&s, 1).count(), 2);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn shrinking_levels_rejected() {
        let _ = SequenceHasher::new(
            vec![HashPart::shingles(0, 1)],
            vec![
                LevelScheme::Shared { ws: vec![4], z: 4 },
                LevelScheme::Shared { ws: vec![2], z: 8 },
            ],
        );
    }

    #[test]
    #[should_panic(expected = "cannot move backwards")]
    fn backwards_advance_rejected() {
        let r = shingle_record(&[1]);
        let h = SequenceHasher::new(vec![HashPart::shingles(0, 1)], shared_levels());
        let mut s = RecordHashState::default();
        let mut st = Stats::default();
        h.advance(&r, &mut s, 2, &mut st);
        s.level = 3; // simulate corruption
        h.advance(&r, &mut s, 2, &mut st);
    }
}
