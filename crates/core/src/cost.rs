//! The cost model of Algorithm 1 (paper Definition 3, Appendix E.2).
//!
//! The model assigns `costᵢ` to "one record advanced to sequence level
//! `i` from scratch" and `cost_P` to "one pairwise comparison". The
//! gate on Line 5 of Algorithm 1 compares the *incremental* hashing cost
//! `(costₜ₊₁ − costₜ)·|C|` against the pairwise cost
//! `cost_P · |C|·(|C|−1)/2` and jumps ahead to `P` when hashing no longer
//! pays.
//!
//! Two constructions are provided:
//!
//! * [`CostModel::analytic`] — deterministic: counts elementary hash
//!   evaluations weighted by per-evaluation work (vector dimension for
//!   hyperplanes, mean shingle-set size for MinHash — sampled from the
//!   data), and likewise for distances. Reproducible across machines;
//!   used by default.
//! * [`CostModel::measured`] — wall-clock estimates from `samples`
//!   records/pairs (the paper's "estimated using 100 samples each").
//!
//! The `noise_factor` multiplies `cost_P` inside the gate only, to
//! reproduce the sensitivity experiment of Appendix E.2 (Figure 21).

use std::time::Instant;

use adalsh_data::{FieldDistance, FieldKind, MatchRule, RecordStore, RecordView};
use adalsh_lsh::mix::derive_seed;
use rand::{Rng, SeedableRng};

use crate::hashing::{HashPart, LevelScheme, RecordHashState, SequenceHasher};
use crate::stats::Stats;

/// The cost model driving Algorithm 1's jump-ahead gate.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// `level_cost[i]` = cost of advancing one record from scratch to
    /// level `i`; `level_cost[0] == 0`.
    pub level_cost: Vec<f64>,
    /// Cost of one pairwise comparison.
    pub cost_p: f64,
    /// Gate-only multiplier on `cost_p` (Appendix E.2's noise factor;
    /// `1.0` = clean model).
    pub noise_factor: f64,
}

impl CostModel {
    /// Builds the deterministic analytic model for a hasher and rule over
    /// a dataset. Unit costs are "elementary arithmetic operations":
    /// a hyperplane evaluation costs `dim`, a MinHash evaluation costs
    /// the mean shingle-set size of its field (sampled, up to 256
    /// records), a weighted part costs the weight-mean of its choices.
    pub fn analytic(hasher: &SequenceHasher, store: &dyn RecordStore, rule: &MatchRule) -> Self {
        let field_size = |field: usize| -> f64 {
            let n = store.len().min(256);
            if n == 0 {
                return 1.0;
            }
            let total: usize = (0..n)
                .map(|i| match store.schema().fields()[field].kind {
                    FieldKind::Dense => store.field(i as u32, field).as_dense().len(),
                    FieldKind::Shingles => store.field(i as u32, field).as_shingles().len().max(1),
                })
                .sum();
            total as f64 / n as f64
        };
        // Per-elementary-evaluation unit cost of each hash part.
        fn part_unit(part: &HashPart, field_size: &dyn Fn(usize) -> f64) -> f64 {
            match part {
                HashPart::Dense { field, .. } | HashPart::Shingles { field, .. } => {
                    field_size(*field)
                }
                HashPart::Weighted { choices, .. } => {
                    // Uniform over choices is close enough for a gate
                    // heuristic; exact weights would need the selection's
                    // internals.
                    choices
                        .iter()
                        .map(|c| part_unit(c, field_size))
                        .sum::<f64>()
                        / choices.len() as f64
                }
            }
        }
        let units: Vec<f64> = hasher
            .parts()
            .iter()
            .map(|p| part_unit(p, &field_size))
            .collect();

        let mut level_cost = vec![0.0];
        for level in hasher.levels() {
            let cost = match level {
                LevelScheme::Shared { ws, z } => ws
                    .iter()
                    .enumerate()
                    .map(|(p, &w)| f64::from(w) * f64::from(*z) * units[p])
                    .sum(),
                LevelScheme::PerPart { parts } => parts
                    .iter()
                    .enumerate()
                    .map(|(p, s)| s.budget() as f64 * units[p])
                    .sum(),
            };
            level_cost.push(cost);
        }

        // Pairwise cost: every elementary distance touches its field's
        // data once (merge pass ≈ 2·size for Jaccard, dim for cosine).
        fn rule_cost(rule: &MatchRule, field_size: &dyn Fn(usize) -> f64) -> f64 {
            match rule {
                MatchRule::Threshold { field, metric, .. } => match metric {
                    FieldDistance::Jaccard => 2.0 * field_size(*field),
                    FieldDistance::Angular => field_size(*field),
                },
                MatchRule::And(subs) | MatchRule::Or(subs) => {
                    subs.iter().map(|r| rule_cost(r, field_size)).sum()
                }
                MatchRule::WeightedAverage { parts, .. } => parts
                    .iter()
                    .map(|p| match p.metric {
                        FieldDistance::Jaccard => 2.0 * field_size(p.field),
                        FieldDistance::Angular => field_size(p.field),
                    })
                    .sum(),
            }
        }
        let cost_p = rule_cost(rule, &field_size);
        Self {
            level_cost,
            cost_p,
            noise_factor: 1.0,
        }
    }

    /// Builds a wall-clock model: advances `samples` random records
    /// through every level on a scratch hasher clone and times `samples`
    /// random pairwise comparisons (the paper's 100-sample estimation).
    pub fn measured(
        hasher: &mut SequenceHasher,
        store: &dyn RecordStore,
        rule: &MatchRule,
        samples: usize,
        seed: u64,
    ) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(seed, 0xC057));
        let n = store.len() as u32;
        let samples = samples.max(1);
        let mut stats = Stats::default();

        let num_levels = hasher.num_levels();
        let mut level_cost = vec![0.0];
        let sample_records: Vec<RecordView<'_>> = (0..samples)
            .map(|_| RecordView::new(store, rng.random_range(0..n)))
            .collect();
        let mut states: Vec<RecordHashState> = vec![RecordHashState::default(); samples];
        let mut cumulative = 0.0;
        for level in 1..=num_levels {
            let start = Instant::now();
            for (rec, state) in sample_records.iter().zip(states.iter_mut()) {
                hasher.advance(rec, state, level, &mut stats);
            }
            cumulative += start.elapsed().as_secs_f64() / samples as f64;
            level_cost.push(cumulative);
        }

        let pairs: Vec<(u32, u32)> = (0..samples)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let start = Instant::now();
        let mut matches = 0usize;
        for &(a, b) in &pairs {
            matches += usize::from(rule.matches_in(store, a, b));
        }
        std::hint::black_box(matches);
        let cost_p = start.elapsed().as_secs_f64() / samples as f64;

        Self {
            level_cost,
            cost_p: cost_p.max(f64::MIN_POSITIVE),
            noise_factor: 1.0,
        }
    }

    /// Sets the Appendix-E.2 noise factor and returns `self`.
    pub fn with_noise(mut self, noise_factor: f64) -> Self {
        assert!(noise_factor > 0.0, "noise factor must be positive");
        self.noise_factor = noise_factor;
        self
    }

    /// Number of levels the model covers.
    pub fn num_levels(&self) -> usize {
        self.level_cost.len() - 1
    }

    /// Algorithm 1, Line 5: should a cluster of `size` records at level
    /// `t` jump ahead to `P` instead of applying `H_{t+1}`?
    /// `(costₜ₊₁ − costₜ)·|C| ≥ cost_P·nf·(|C| choose 2)`.
    ///
    /// # Panics
    /// Panics if `t + 1` exceeds the modeled levels.
    pub fn jump_to_pairwise(&self, t: usize, size: usize) -> bool {
        assert!(t + 1 < self.level_cost.len(), "level out of range");
        let delta = self.level_cost[t + 1] - self.level_cost[t];
        let pairs = size as f64 * (size as f64 - 1.0) / 2.0;
        delta * size as f64 >= self.cost_p * self.noise_factor * pairs
    }

    /// Modeled incremental cost of hashing `size` records from level `t`
    /// to `t + 1` (for the Definition-3 ledger in [`Stats`]).
    pub fn hash_increment_cost(&self, t: usize, size: usize) -> f64 {
        (self.level_cost[t + 1] - self.level_cost[t]) * size as f64
    }

    /// Modeled cost of `P` on a cluster of `size` records (all pairs,
    /// conservatively — Definition 3).
    pub fn pairwise_cost(&self, size: usize) -> f64 {
        self.cost_p * size as f64 * (size as f64 - 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_data::{Dataset, FieldValue, Record, Schema, ShingleSet};

    fn shingle_dataset(sets: &[&[u64]]) -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let records = sets
            .iter()
            .map(|s| Record::single(FieldValue::Shingles(ShingleSet::new(s.to_vec()))))
            .collect();
        let gt = (0..sets.len() as u32).collect();
        Dataset::new(schema, records, gt)
    }

    fn simple_setup() -> (SequenceHasher, Dataset, MatchRule) {
        let d = shingle_dataset(&[&[1, 2, 3, 4], &[5, 6, 7, 8], &[1, 2]]);
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, 1)],
            vec![
                LevelScheme::Shared { ws: vec![1], z: 10 },
                LevelScheme::Shared { ws: vec![2], z: 10 },
            ],
        );
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
        (h, d, rule)
    }

    #[test]
    fn analytic_levels_scale_with_budget() {
        let (h, d, rule) = simple_setup();
        let m = CostModel::analytic(&h, &d, &rule);
        assert_eq!(m.num_levels(), 2);
        assert_eq!(m.level_cost[0], 0.0);
        // Level 2 budget (20) is double level 1 (10) ⇒ double the cost.
        assert!((m.level_cost[2] / m.level_cost[1] - 2.0).abs() < 1e-9);
        assert!(m.cost_p > 0.0);
    }

    #[test]
    fn gate_prefers_pairwise_for_small_clusters() {
        let (h, d, rule) = simple_setup();
        let m = CostModel::analytic(&h, &d, &rule);
        // A 2-record cluster: hashing 2 records 10 more functions each
        // beats 1 comparison only if the comparison is very expensive —
        // with these numbers the gate must fire (P is cheaper).
        assert!(m.jump_to_pairwise(1, 2));
        // A 1-record cluster: zero pairs ⇒ always jump (P is free).
        assert!(m.jump_to_pairwise(1, 1));
    }

    #[test]
    fn gate_prefers_hashing_for_large_clusters() {
        let (h, d, rule) = simple_setup();
        let m = CostModel::analytic(&h, &d, &rule);
        // Pair count grows quadratically: for 10_000 records hashing wins.
        assert!(!m.jump_to_pairwise(1, 10_000));
    }

    #[test]
    fn noise_factor_shifts_the_gate() {
        let (h, d, rule) = simple_setup();
        let m = CostModel::analytic(&h, &d, &rule);
        // Find a size where the clean gate says "hash".
        let size = (2..100_000)
            .find(|&s| !m.jump_to_pairwise(1, s))
            .expect("gate flips somewhere");
        // Heavily under-estimating P (nf = 1/5) makes P look cheap ⇒ jump.
        let noisy = m.clone().with_noise(0.02);
        assert!(noisy.jump_to_pairwise(1, size));
        // Over-estimating P (nf = 5) keeps hashing even longer.
        let (h2, d2, rule2) = simple_setup();
        let m2 = CostModel::analytic(&h2, &d2, &rule2).with_noise(5.0);
        assert!(!m2.jump_to_pairwise(1, size));
        let _ = (h, d, rule, m2, d2, rule2, h2);
    }

    #[test]
    fn measured_model_is_positive_and_monotone() {
        let (mut h, d, rule) = simple_setup();
        let m = CostModel::measured(&mut h, &d, &rule, 16, 7);
        assert_eq!(m.num_levels(), 2);
        assert!(m.cost_p > 0.0);
        assert!(m.level_cost.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn ledger_helpers() {
        let m = CostModel {
            level_cost: vec![0.0, 1.0, 3.0],
            cost_p: 0.5,
            noise_factor: 1.0,
        };
        assert!((m.hash_increment_cost(1, 10) - 20.0).abs() < 1e-12);
        assert!((m.pairwise_cost(4) - 3.0).abs() < 1e-12);
        assert_eq!(m.pairwise_cost(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "level out of range")]
    fn gate_beyond_last_level_panics() {
        let m = CostModel {
            level_cost: vec![0.0, 1.0],
            cost_p: 0.5,
            noise_factor: 1.0,
        };
        let _ = m.jump_to_pairwise(1, 5);
    }
}
