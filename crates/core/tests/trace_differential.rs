//! Tracing must be a pure observer: clusters and `Stats` bit-identical
//! whether the sink is disabled, discarding, or writing JSONL, at any
//! thread count — and every emitted trace must reconcile exactly with
//! the run's `Stats` under the `adalsh_obs::schema` identities.

use std::path::PathBuf;
use std::sync::Arc;

use adalsh_core::{AdaLsh, AdaLshConfig, FilterOutput, OnlineAdaLsh, TraceSink};
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use adalsh_lsh::mix::derive_seed;
use adalsh_obs::{jsonl, schema, summary, JsonlSubscriber, MemorySubscriber, NoopSubscriber};

/// A dataset with planted entities: entity `e` has `sizes[e]` records
/// sharing a 20-shingle core plus two noise shingles.
fn planted(sizes: &[usize], seed: u64) -> Dataset {
    let schema = Schema::single("s", FieldKind::Shingles);
    let mut records = Vec::new();
    let mut gt = Vec::new();
    for (e, &sz) in sizes.iter().enumerate() {
        let base: Vec<u64> = (0..20).map(|i| (e as u64) * 1000 + i).collect();
        for r in 0..sz {
            let mut s = base.clone();
            s.push(derive_seed(seed, (e * 10_000 + r) as u64) % 7 + (e as u64) * 1000 + 500);
            s.push(derive_seed(seed, (e * 10_000 + r + 5000) as u64) % 7 + (e as u64) * 1000 + 600);
            records.push(Record::single(FieldValue::Shingles(ShingleSet::new(s))));
            gt.push(e as u32);
        }
    }
    Dataset::new(schema, records, gt)
}

fn config(threads: usize) -> AdaLshConfig {
    let mut cfg = AdaLshConfig::new(MatchRule::threshold(0, FieldDistance::Jaccard, 0.4));
    cfg.threads = threads;
    cfg
}

fn run(dataset: &Dataset, k: usize, cfg: AdaLshConfig) -> FilterOutput {
    let mut ada = AdaLsh::for_dataset(dataset, cfg).unwrap();
    ada.run(dataset, k)
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "adalsh-trace-{tag}-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ))
}

#[test]
fn subscribers_and_threads_do_not_change_results() {
    let d = planted(&[24, 15, 9, 4, 2, 1, 1], 19);
    let reference = run(&d, 3, config(1));
    assert_eq!(reference.clusters.len(), 3);

    for threads in [1usize, 4] {
        // Disabled sink.
        let out = run(&d, 3, config(threads));
        assert_eq!(out.clusters, reference.clusters, "disabled t={threads}");
        assert_eq!(out.stats, reference.stats, "disabled t={threads}");

        // Discarding subscriber: the emission paths run, results don't move.
        let mut cfg = config(threads);
        cfg.trace = TraceSink::new(Arc::new(NoopSubscriber));
        let out = run(&d, 3, cfg);
        assert_eq!(out.clusters, reference.clusters, "noop t={threads}");
        assert_eq!(out.stats, reference.stats, "noop t={threads}");

        // JSONL writer: same results, and the file round-trips + validates.
        let path = temp_path(&format!("diff{threads}"));
        let mut cfg = config(threads);
        cfg.trace = TraceSink::new(Arc::new(JsonlSubscriber::create(&path).unwrap()));
        let out = run(&d, 3, cfg);
        assert_eq!(out.clusters, reference.clusters, "jsonl t={threads}");
        assert_eq!(out.stats, reference.stats, "jsonl t={threads}");
        let events = jsonl::read_events(&path).unwrap();
        let report = schema::validate(&events).unwrap();
        assert_eq!(report.runs, 1, "jsonl t={threads}");
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn trace_reconciles_with_stats_exactly() {
    let d = planted(&[20, 12, 6, 3, 1, 1], 37);
    for threads in [1usize, 4] {
        let memory = Arc::new(MemorySubscriber::new());
        let mut cfg = config(threads);
        cfg.trace = TraceSink::new(memory.clone());
        let out = run(&d, 2, cfg);
        let events = memory.events();

        // The schema validator enforces every identity (Σ hash_evals,
        // Σ pairs, event counts vs call counters, the bit-exact
        // modeled_cost fold, …) against the run_end totals; here we pin
        // run_end to the actual Stats so the identities bind to reality.
        let end = events.iter().find(|e| e.name == "run_end").unwrap();
        assert_eq!(end.u64("rounds"), Some(out.stats.rounds), "t={threads}");
        assert_eq!(
            end.u64("hash_evals"),
            Some(out.stats.hash_evals),
            "t={threads}"
        );
        assert_eq!(
            end.u64("distance_evals"),
            Some(out.stats.distance_evals),
            "t={threads}"
        );
        assert_eq!(
            end.u64("pair_comparisons"),
            Some(out.stats.pair_comparisons),
            "t={threads}"
        );
        assert_eq!(
            end.u64("bucket_inserts"),
            Some(out.stats.bucket_inserts),
            "t={threads}"
        );
        assert_eq!(
            end.u64("transitive_calls"),
            Some(out.stats.transitive_calls),
            "t={threads}"
        );
        assert_eq!(
            end.u64("pairwise_calls"),
            Some(out.stats.pairwise_calls),
            "t={threads}"
        );
        assert_eq!(
            end.f64("modeled_cost").map(f64::to_bits),
            Some(out.stats.modeled_cost.to_bits()),
            "t={threads}"
        );
        schema::validate(&events).unwrap_or_else(|e| panic!("t={threads}: {e}"));

        // The human summary renders without panicking and mentions the
        // hash levels that actually ran.
        let text = summary::summarize(&events);
        assert!(text.contains("H1"), "summary lists level 1:\n{text}");
    }
}

#[test]
fn design_level_events_cover_every_level() {
    let d = planted(&[10, 5, 2], 7);
    let memory = Arc::new(MemorySubscriber::new());
    let mut cfg = config(2);
    cfg.trace = TraceSink::new(memory.clone());
    let ada = AdaLsh::for_dataset(&d, cfg).unwrap();
    let designs: Vec<_> = memory
        .events()
        .into_iter()
        .filter(|e| e.name == "design_level")
        .collect();
    assert_eq!(designs.len(), ada.num_levels());
    for (i, ev) in designs.iter().enumerate() {
        assert_eq!(ev.u64("level"), Some(i as u64 + 1));
        assert!(ev.u64("budget").unwrap() > 0);
    }
}

#[test]
fn online_query_events_track_freshness() {
    let d = planted(&[8, 6, 4], 11);
    let n = d.len() as u64;
    let memory = Arc::new(MemorySubscriber::new());
    let mut cfg = config(2);
    cfg.trace = TraceSink::new(memory.clone());
    let mut online = OnlineAdaLsh::new(&d, cfg).unwrap();

    let first = online.query(2);
    let second = online.query(2);
    assert_eq!(second.stats.hash_evals, 0, "re-query reuses all hashes");

    let events = memory.events();
    schema::validate(&events).unwrap();
    let queries: Vec<_> = events.iter().filter(|e| e.name == "online_query").collect();
    assert_eq!(queries.len(), 2);
    assert_eq!(queries[0].u64("fresh_records"), Some(n));
    assert_eq!(queries[0].u64("hash_evals"), Some(first.stats.hash_evals));
    assert_eq!(queries[1].u64("fresh_records"), Some(0));
    assert_eq!(queries[1].u64("advanced_records"), Some(0));
    assert_eq!(queries[1].u64("hash_evals"), Some(0));
}
