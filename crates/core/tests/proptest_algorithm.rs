//! Property-based tests of Algorithm 1 itself: on arbitrary randomly
//! generated shingle datasets, the adaptive filter must agree with exact
//! pairwise resolution.

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, SelectionStrategy};
use adalsh_core::pairwise::apply_pairwise;
use adalsh_core::stats::Stats;
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use proptest::prelude::*;

/// Strategy producing small datasets with planted clusters of varied
/// sizes: entity `e` has a 12-token core; each record keeps the core and
/// adds 1–2 noise tokens. Cores are disjoint across entities, so the
/// exact clustering equals the plant.
fn planted_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(1usize..12, 2..8), // entity sizes
        any::<u64>(),                            // noise seed
    )
        .prop_map(|(sizes, seed)| {
            let schema = Schema::single("s", FieldKind::Shingles);
            let mut records = Vec::new();
            let mut gt = Vec::new();
            for (e, &sz) in sizes.iter().enumerate() {
                let core: Vec<u64> = (0..12).map(|i| (e as u64) * 1000 + i).collect();
                for r in 0..sz {
                    let mut s = core.clone();
                    let n1 = seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((e * 100 + r) as u64);
                    s.push((e as u64) * 1000 + 500 + n1 % 5);
                    records.push(Record::single(FieldValue::Shingles(ShingleSet::new(s))));
                    gt.push(e as u32);
                }
            }
            Dataset::new(schema, records, gt)
        })
}

fn rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
}

/// Exact top-k records via pairwise closure, with deterministic
/// size-then-id ordering.
fn exact_top_k(dataset: &Dataset, k: usize) -> Vec<u32> {
    let all: Vec<u32> = (0..dataset.len() as u32).collect();
    let mut st = Stats::default();
    let mut clusters = apply_pairwise(dataset, &rule(), &all, 1, &mut st);
    clusters.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    let mut out: Vec<u32> = clusters.into_iter().take(k).flatten().collect();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// adaLSH output = exact output, for arbitrary planted datasets and
    /// k, as long as cluster sizes are untied at the k-th position.
    #[test]
    fn adalsh_equals_exact(dataset in planted_dataset(), k in 1usize..4) {
        let sizes = dataset.entity_sizes();
        prop_assume!(k <= sizes.len());
        // Ambiguous top-k (ties at the boundary) legitimately differ.
        prop_assume!(k == sizes.len() || sizes[k - 1] != sizes.get(k).copied().unwrap_or(0));
        let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule())).unwrap();
        let got = ada.run(&dataset, k).records();
        prop_assert_eq!(got, exact_top_k(&dataset, k));
    }

    /// All selection strategies find the same top-k record set.
    #[test]
    fn strategies_agree(dataset in planted_dataset()) {
        let sizes = dataset.entity_sizes();
        prop_assume!(sizes.len() >= 2 && sizes[0] != sizes[1]);
        let expected = exact_top_k(&dataset, 1);
        for strategy in [
            SelectionStrategy::LargestFirst,
            SelectionStrategy::SmallestFirst,
            SelectionStrategy::Random,
            SelectionStrategy::Fifo,
        ] {
            let mut cfg = AdaLshConfig::new(rule());
            cfg.selection = strategy;
            let mut ada = AdaLsh::for_dataset(&dataset, cfg).unwrap();
            prop_assert_eq!(ada.run(&dataset, 1).records(), expected.clone());
        }
    }

    /// Output clusters never mix planted entities (the conservative
    /// property: the rule's exact components are entity-pure here).
    #[test]
    fn clusters_are_entity_pure(dataset in planted_dataset(), k in 1usize..4) {
        let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule())).unwrap();
        let out = ada.run(&dataset, k);
        for cluster in &out.clusters {
            let e = dataset.entity_of(cluster[0]);
            prop_assert!(cluster.iter().all(|&r| dataset.entity_of(r) == e));
        }
    }

    /// Requiring pairwise verification never changes the answer — only
    /// the work done.
    #[test]
    fn pairwise_final_is_equivalent(dataset in planted_dataset()) {
        let sizes = dataset.entity_sizes();
        prop_assume!(sizes.len() >= 2 && sizes[0] != sizes[1]);
        let mut a = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule())).unwrap();
        let mut cfg = AdaLshConfig::new(rule());
        cfg.require_pairwise_final = true;
        let mut b = AdaLsh::for_dataset(&dataset, cfg).unwrap();
        prop_assert_eq!(a.run(&dataset, 1).records(), b.run(&dataset, 1).records());
    }

    /// Modeled cost is monotone in k (more entities ⇒ at least as much
    /// work) — the Theorem-2 flavour of Largest-First.
    #[test]
    fn cost_monotone_in_k(dataset in planted_dataset()) {
        let n_entities = dataset.num_entities();
        prop_assume!(n_entities >= 3);
        let run_cost = |k: usize| {
            let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule())).unwrap();
            ada.run(&dataset, k).stats.modeled_cost
        };
        let c1 = run_cost(1);
        let c2 = run_cost(2);
        let c3 = run_cost(3);
        prop_assert!(c1 <= c2 + 1e-9);
        prop_assert!(c2 <= c3 + 1e-9);
    }
}
