//! Property-based determinism tests of the DOPH MinHash scheme: on
//! arbitrary shingle datasets, the densified one-permutation hash states
//! must be identical however they are computed — any thread count, any
//! scratch-reuse pattern, jump or stepwise level advancement — and the
//! end-to-end adaptive filter under DOPH must still agree with exact
//! pairwise resolution.

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig};
use adalsh_core::hashing::{HashPart, HashScratch, LevelScheme, RecordHashState, SequenceHasher};
use adalsh_core::pairwise::apply_pairwise;
use adalsh_core::stats::Stats;
use adalsh_core::transitive::apply_transitive_threaded;
use adalsh_core::MinhashScheme;
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use proptest::prelude::*;

/// Strategy producing small shingle datasets with varied set sizes,
/// including empty and singleton sets and exact duplicates.
fn shingle_sets() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(prop::collection::vec(0u64..500, 0..40), 2..24).prop_map(|mut sets| {
        // Plant a duplicate pair so shared-bucket paths get exercised.
        if sets.len() >= 2 {
            sets[1] = sets[0].clone();
        }
        sets
    })
}

fn dataset_of(sets: &[Vec<u64>]) -> Dataset {
    let schema = Schema::single("s", FieldKind::Shingles);
    let records = sets
        .iter()
        .map(|s| Record::single(FieldValue::Shingles(ShingleSet::new(s.clone()))))
        .collect();
    let gt = (0..sets.len() as u32).collect();
    Dataset::new(schema, records, gt)
}

fn doph_hasher(seed: u64) -> SequenceHasher {
    SequenceHasher::with_scheme(
        vec![HashPart::shingles(0, seed)],
        vec![
            LevelScheme::Shared { ws: vec![1], z: 8 },
            LevelScheme::Shared { ws: vec![2], z: 12 },
            LevelScheme::Shared { ws: vec![3], z: 16 },
        ],
        MinhashScheme::Doph,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The same records advanced through one long-lived scratch, through
    /// fresh scratches, and via the scalar oracle end in identical states
    /// with identical Stats.
    #[test]
    fn doph_states_independent_of_scratch_reuse(
        sets in shingle_sets(),
        seed in any::<u64>(),
    ) {
        let d = dataset_of(&sets);
        let h = doph_hasher(seed);

        let mut shared = vec![RecordHashState::default(); d.len()];
        let mut st_shared = Stats::default();
        let mut scratch = HashScratch::default();
        for rid in 0..d.len() as u32 {
            h.advance_with_scratch(
                d.record(rid), &mut shared[rid as usize], 3, &mut st_shared, &mut scratch,
            );
        }

        let mut fresh = vec![RecordHashState::default(); d.len()];
        let mut st_fresh = Stats::default();
        for rid in 0..d.len() as u32 {
            let mut scratch = HashScratch::default();
            h.advance_with_scratch(
                d.record(rid), &mut fresh[rid as usize], 3, &mut st_fresh, &mut scratch,
            );
        }

        let mut scalar = vec![RecordHashState::default(); d.len()];
        let mut st_scalar = Stats::default();
        for rid in 0..d.len() as u32 {
            h.advance_scalar(d.record(rid), &mut scalar[rid as usize], 3, &mut st_scalar);
        }

        prop_assert_eq!(&shared, &fresh);
        prop_assert_eq!(&shared, &scalar);
        prop_assert_eq!(st_shared, st_fresh);
        prop_assert_eq!(st_shared, st_scalar);
    }

    /// Jumping straight to the last level equals advancing one level at a
    /// time — DOPH slot values are pure in (seed, total bins, set), so
    /// the path must not matter.
    #[test]
    fn doph_jump_equals_stepwise(sets in shingle_sets(), seed in any::<u64>()) {
        let d = dataset_of(&sets);
        let h = doph_hasher(seed);
        let mut scratch = HashScratch::default();
        for rid in 0..d.len() as u32 {
            let mut jump = RecordHashState::default();
            let mut step = RecordHashState::default();
            let mut st = Stats::default();
            h.advance_with_scratch(d.record(rid), &mut jump, 3, &mut st, &mut scratch);
            for level in 1..=3 {
                h.advance_with_scratch(d.record(rid), &mut step, level, &mut st, &mut scratch);
            }
            prop_assert_eq!(jump, step, "record {}", rid);
        }
    }

    /// Transitive hashing under DOPH returns identical clusters, states,
    /// and Stats at every thread count.
    #[test]
    fn doph_transitive_identical_across_threads(
        sets in shingle_sets(),
        seed in any::<u64>(),
    ) {
        let d = dataset_of(&sets);
        let ids: Vec<u32> = (0..d.len() as u32).collect();
        let run = |threads: usize| {
            let h = doph_hasher(seed);
            let mut states = vec![RecordHashState::default(); d.len()];
            let mut st = Stats::default();
            let out = apply_transitive_threaded(&h, &mut states, &d, &ids, 3, threads, &mut st);
            (out, states, st)
        };
        let (out1, states1, st1) = run(1);
        let (out4, states4, st4) = run(4);
        prop_assert_eq!(out1, out4);
        prop_assert_eq!(states1, states4);
        prop_assert_eq!(st1, st4);
    }
}

/// Deterministic planted-cluster check: the full adaptive filter under
/// DOPH must find the same top-k record set as exact pairwise closure.
#[test]
fn doph_filter_matches_exact_on_planted_clusters() {
    let schema = Schema::single("s", FieldKind::Shingles);
    let mut records = Vec::new();
    let mut gt = Vec::new();
    for (e, sz) in [(0u64, 7usize), (1, 5), (2, 3), (3, 2), (4, 1)] {
        let core: Vec<u64> = (0..20).map(|i| e * 1000 + i).collect();
        for r in 0..sz {
            let mut s = core.clone();
            s.push(e * 1000 + 500 + r as u64 % 3);
            records.push(Record::single(FieldValue::Shingles(ShingleSet::new(s))));
            gt.push(e as u32);
        }
    }
    let d = Dataset::new(schema, records, gt);
    let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);

    let all: Vec<u32> = (0..d.len() as u32).collect();
    let mut st = Stats::default();
    let mut exact = apply_pairwise(&d, &rule, &all, 1, &mut st);
    exact.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    for k in 1..=3 {
        let mut expected: Vec<u32> = exact.iter().take(k).flatten().copied().collect();
        expected.sort_unstable();
        let mut config = AdaLshConfig::new(rule.clone());
        config.minhash_scheme = MinhashScheme::Doph;
        let mut ada = AdaLsh::for_dataset(&d, config).unwrap();
        assert_eq!(ada.run(&d, k).records(), expected, "k={k}");
    }
}
