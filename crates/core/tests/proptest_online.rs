//! Property-based tests for the online mode: any interleaving of pushes
//! and queries must agree with batch resolution on the same snapshot.

use adalsh_core::algorithm::{AdaLshConfig, FilterMethod};
use adalsh_core::baselines::Pairs;
use adalsh_core::online::OnlineAdaLsh;
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use proptest::prelude::*;

fn record(entity: u64, noise: u64) -> Record {
    let mut s: Vec<u64> = (0..15).map(|i| entity * 1000 + i).collect();
    s.push(entity * 1000 + 500 + noise % 4);
    Record::single(FieldValue::Shingles(ShingleSet::new(s)))
}

fn rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.4)
}

fn bootstrap() -> Dataset {
    let schema = Schema::single("s", FieldKind::Shingles);
    let records: Vec<Record> = (0..12).map(|i| record(i % 3, i)).collect();
    let gt = (0..12).map(|i| (i % 3) as u32).collect();
    Dataset::new(schema, records, gt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Push an arbitrary stream (entity ids 0..5) with interleaved
    /// queries; every query must equal Pairs on the snapshot.
    #[test]
    fn online_queries_match_batch(
        stream in prop::collection::vec((0u64..5, any::<u64>(), prop::bool::ANY), 1..40),
    ) {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        let mut all_records: Vec<Record> = boot.records().to_vec();
        for (entity, noise, query_now) in stream {
            let r = record(entity, noise);
            online.push(r.clone()).unwrap();
            all_records.push(r);
            if query_now {
                let out = online.query(1);
                let snapshot = Dataset::new(
                    boot.schema().clone(),
                    all_records.clone(),
                    vec![0; all_records.len()],
                );
                let gold = Pairs::new(rule()).filter(&snapshot, 1);
                // Sizes must agree (record sets may differ only under
                // exact size ties, which this stream can produce).
                prop_assert_eq!(
                    out.clusters[0].len(),
                    gold.clusters[0].len(),
                    "online vs batch top-1 size"
                );
            }
        }
        // Final full check: top-2 record sets match exactly when untied.
        let snapshot = Dataset::new(
            boot.schema().clone(),
            all_records.clone(),
            vec![0; all_records.len()],
        );
        let gold = Pairs::new(rule()).filter(&snapshot, 2);
        let sizes: Vec<usize> = gold.clusters.iter().map(Vec::len).collect();
        prop_assume!(sizes.len() < 2 || sizes[0] != sizes[1]);
        let out = online.query(2);
        prop_assert_eq!(out.clusters[0].clone(), gold.clusters[0].clone());
    }

    /// Query cost is monotone-amortized: an immediate repeat query does
    /// zero hash evaluations.
    #[test]
    fn repeat_queries_are_free(pushes in 0usize..20) {
        let boot = bootstrap();
        let mut online = OnlineAdaLsh::new(&boot, AdaLshConfig::new(rule())).unwrap();
        for i in 0..pushes {
            online.push(record((i % 4) as u64, i as u64)).unwrap();
        }
        let _ = online.query(2);
        let again = online.query(2);
        prop_assert_eq!(again.stats.hash_evals, 0);
    }
}
