//! Differential property tests for the noisy-oracle pairwise path: at
//! **zero noise** (no error model, no faults, no budget) the
//! [`OracleMode::Noisy`] path must be a pure pass-through — clusters
//! and `Stats` bit-identical to the exact path on arbitrary mixed
//! datasets, under every rule kind and any thread count. This pins the
//! invariant that the resilience layer (retry, majority vote, budget
//! settlement in canonical fold order) is behaviour-free until faults
//! are actually injected, and that oracle accounting lives entirely in
//! `OracleSpend` rather than leaking into the paper's counters.
//!
//! A second property pins seeded determinism under real noise: the same
//! `NoisyOracleConfig` yields identical clusters, `Stats`, and full
//! spend ledgers across thread counts.

use adalsh_core::{AdaLsh, AdaLshConfig, FilterOutput, NoisyOracleConfig, OracleMode};
use adalsh_data::rule::WeightedPart;
use adalsh_data::{
    Dataset, DenseVector, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema,
    ShingleSet,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Datasets with one shingle field and one dense field (same shape as
/// `proptest_pairwise`): entity `e` has a shingle core and a direction;
/// records perturb both so match graphs have non-trivial components
/// under every rule kind.
fn mixed_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(1usize..7, 2..7), // entity sizes
        any::<u64>(),                           // noise seed
    )
        .prop_map(|(sizes, seed)| {
            let schema = Schema::new(vec![("s", FieldKind::Shingles), ("v", FieldKind::Dense)]);
            let mut rng = seed | 1;
            let mut next = move || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng
            };
            let mut records = Vec::new();
            let mut gt = Vec::new();
            for (e, &sz) in sizes.iter().enumerate() {
                let core: Vec<u64> = (0..10).map(|i| (e as u64) * 1000 + i).collect();
                for _ in 0..sz {
                    let mut s = core.clone();
                    for _ in 0..(next() % 3) {
                        s.push((e as u64) * 1000 + 500 + next() % 30);
                    }
                    let dim = 4;
                    let mut v = vec![0.0f64; dim];
                    if next() % 7 != 0 {
                        v[e % dim] = 1.0;
                        let j = (next() % dim as u64) as usize;
                        v[j] += (next() % 100) as f64 / 250.0;
                    }
                    records.push(Record::new(vec![
                        FieldValue::Shingles(ShingleSet::new(s)),
                        FieldValue::Dense(DenseVector::new(v)),
                    ]));
                    gt.push(e as u32);
                }
            }
            Dataset::new(schema, records, gt)
        })
}

/// All four rule kinds over the two fields, at a tunable threshold.
fn rules(dthr: f64) -> Vec<MatchRule> {
    let jacc = MatchRule::threshold(0, FieldDistance::Jaccard, dthr);
    let ang = MatchRule::threshold(1, FieldDistance::Angular, dthr);
    vec![
        jacc.clone(),
        ang.clone(),
        MatchRule::And(vec![jacc.clone(), ang.clone()]),
        MatchRule::Or(vec![jacc, ang]),
        MatchRule::WeightedAverage {
            parts: vec![
                WeightedPart {
                    field: 0,
                    metric: FieldDistance::Jaccard,
                    weight: 0.6,
                },
                WeightedPart {
                    field: 1,
                    metric: FieldDistance::Angular,
                    weight: 0.4,
                },
            ],
            dthr,
        },
    ]
}

/// Builds and runs the filter; `Err` when the sequence design is
/// infeasible at this threshold (construction must not depend on the
/// oracle mode, so both paths fail or succeed together).
fn run(
    dataset: &Dataset,
    k: usize,
    rule: MatchRule,
    threads: usize,
    oracle: OracleMode,
) -> Result<FilterOutput, String> {
    let mut cfg = AdaLshConfig::new(rule);
    cfg.threads = threads;
    cfg.oracle = oracle;
    let mut ada = AdaLsh::for_dataset(dataset, cfg)?;
    Ok(ada.run(dataset, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Zero-noise noisy oracle ≡ exact path: identical clusters and
    /// identical full `Stats` for every rule kind and thread count. The
    /// spend ledger still records the traffic (calls > 0 whenever the
    /// exact path compared pairs) but never degrades.
    #[test]
    fn zero_noise_oracle_is_a_pass_through(
        dataset in mixed_dataset(),
        dthr in 0.05f64..0.95,
        threads in 1usize..6,
        k in 1usize..4,
    ) {
        for rule in rules(dthr) {
            let exact = run(&dataset, k, rule.clone(), threads, OracleMode::Exact);
            let noisy = run(
                &dataset,
                k,
                rule.clone(),
                threads,
                OracleMode::Noisy(NoisyOracleConfig::default()),
            );
            let (exact, noisy) = match (exact, noisy) {
                (Ok(e), Ok(n)) => (e, n),
                (Err(e), Err(n)) => {
                    // Infeasible sequence design at this threshold: the
                    // failure must be oracle-independent.
                    prop_assert_eq!(e, n, "construction errors diverge");
                    continue;
                }
                (e, n) => {
                    return Err(TestCaseError::Fail(format!(
                        "construction feasibility depends on oracle mode: \
                         exact={e:?} noisy={n:?}"
                    )));
                }
            };
            prop_assert_eq!(
                &noisy.clusters,
                &exact.clusters,
                "clusters diverge: rule={:?} threads={}", &rule, threads
            );
            prop_assert_eq!(
                &noisy.stats,
                &exact.stats,
                "stats diverge: rule={:?} threads={}", &rule, threads
            );
            prop_assert!(exact.oracle.is_none(), "exact path must not carry a ledger");
            let spend = noisy.oracle.expect("noisy path must carry a ledger");
            prop_assert_eq!(spend.degraded, 0, "zero noise never degrades");
            prop_assert_eq!(spend.timeouts, 0);
            prop_assert_eq!(spend.transient_errors, 0);
            prop_assert_eq!(spend.retries, 0);
            if noisy.stats.pair_comparisons > 0 {
                prop_assert!(spend.calls > 0, "compared pairs must be ledgered");
            }
        }
    }

    /// Seeded determinism under real noise: error rates, faults, votes,
    /// and a finite budget produce identical clusters, `Stats`, and the
    /// bit-identical spend ledger at every thread count.
    #[test]
    fn noisy_runs_are_thread_deterministic(
        dataset in mixed_dataset(),
        seed in any::<u64>(),
        fp in 0.0f64..0.3,
        fnr in 0.0f64..0.3,
        fault in 0.0f64..0.4,
        budget_idx in 0usize..4,
    ) {
        let cfg = NoisyOracleConfig {
            false_match_rate: fp,
            false_non_match_rate: fnr,
            fault_rate: fault,
            seed,
            budget: [None, Some(0), Some(17), Some(10_000)][budget_idx],
            ..NoisyOracleConfig::default()
        };
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
        let reference = run(&dataset, 2, rule.clone(), 1, OracleMode::Noisy(cfg.clone())).unwrap();
        let ref_spend = reference.oracle.clone().expect("ledger present");
        for threads in [2usize, 5] {
            let out =
                run(&dataset, 2, rule.clone(), threads, OracleMode::Noisy(cfg.clone())).unwrap();
            prop_assert_eq!(&out.clusters, &reference.clusters, "threads={}", threads);
            prop_assert_eq!(&out.stats, &reference.stats, "threads={}", threads);
            prop_assert_eq!(
                out.oracle.as_ref(),
                Some(&ref_spend),
                "spend ledger diverges at threads={}", threads
            );
        }
    }
}
