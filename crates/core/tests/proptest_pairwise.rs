//! Differential property tests for the block-wavefront `P`
//! ([`apply_pairwise`]) against the scalar oracle
//! ([`apply_pairwise_scalar`]): on arbitrary mixed shingle/dense
//! datasets, every rule kind, any thread count, and any block size, the
//! parallel path must produce **identical clusters and identical
//! `Stats`** — the bit-identity contract that lets figure pipelines run
//! on all cores without perturbing the paper's counters.
//!
//! Because the oracle evaluates pairs through the plain
//! `MatchRule::matches` kernels while the wavefront goes through the
//! cached-norm / early-exit kernels (`matches_in`), these tests also pin
//! the kernel fast paths to the naive evaluation.

use adalsh_core::pairwise::{apply_pairwise_blocked, apply_pairwise_scalar};
use adalsh_core::stats::Stats;
use adalsh_data::rule::WeightedPart;
use adalsh_data::{
    Dataset, DenseVector, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema,
    ShingleSet,
};
use proptest::prelude::*;

/// Datasets with one shingle field and one dense field. Entity `e` has a
/// shingle core and a direction; records perturb both, so match graphs
/// have non-trivial components under every rule kind and clusters of
/// varied sizes exercise transitive skipping.
fn mixed_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec(1usize..7, 2..7), // entity sizes
        any::<u64>(),                           // noise seed
    )
        .prop_map(|(sizes, seed)| {
            let schema = Schema::new(vec![("s", FieldKind::Shingles), ("v", FieldKind::Dense)]);
            let mut rng = seed | 1;
            let mut next = move || {
                rng = rng
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                rng
            };
            let mut records = Vec::new();
            let mut gt = Vec::new();
            for (e, &sz) in sizes.iter().enumerate() {
                let core: Vec<u64> = (0..10).map(|i| (e as u64) * 1000 + i).collect();
                for _ in 0..sz {
                    let mut s = core.clone();
                    // 0–2 noise tokens; occasionally large sets so the
                    // galloping/size-ratio paths fire.
                    for _ in 0..(next() % 3) {
                        s.push((e as u64) * 1000 + 500 + next() % 30);
                    }
                    if next() % 5 == 0 {
                        s.extend((0..40).map(|i| (e as u64) * 1000 + 100 + i));
                    }
                    // Direction near entity axis `e`, with noise; some
                    // zero vectors to hit the degenerate-norm branch.
                    let dim = 4;
                    let mut v = vec![0.0f64; dim];
                    if next() % 7 != 0 {
                        v[e % dim] = 1.0;
                        let j = (next() % dim as u64) as usize;
                        v[j] += (next() % 100) as f64 / 250.0;
                    }
                    records.push(Record::new(vec![
                        FieldValue::Shingles(ShingleSet::new(s)),
                        FieldValue::Dense(DenseVector::new(v)),
                    ]));
                    gt.push(e as u32);
                }
            }
            Dataset::new(schema, records, gt)
        })
}

/// All four rule kinds over the two fields, at a tunable threshold.
fn rules(dthr: f64) -> Vec<MatchRule> {
    let jacc = MatchRule::threshold(0, FieldDistance::Jaccard, dthr);
    let ang = MatchRule::threshold(1, FieldDistance::Angular, dthr);
    vec![
        jacc.clone(),
        ang.clone(),
        MatchRule::And(vec![jacc.clone(), ang.clone()]),
        MatchRule::Or(vec![jacc, ang]),
        MatchRule::WeightedAverage {
            parts: vec![
                WeightedPart {
                    field: 0,
                    metric: FieldDistance::Jaccard,
                    weight: 0.6,
                },
                WeightedPart {
                    field: 1,
                    metric: FieldDistance::Angular,
                    weight: 0.4,
                },
            ],
            dthr,
        },
    ]
}

fn normalized(mut clusters: Vec<Vec<u32>>) -> Vec<Vec<u32>> {
    for c in &mut clusters {
        c.sort_unstable();
    }
    clusters.sort();
    clusters
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wavefront `P` ≡ scalar `P`: identical clusters and identical
    /// full `Stats` for every rule kind, thread count, and block size.
    #[test]
    fn wavefront_equals_scalar(
        dataset in mixed_dataset(),
        dthr in 0.05f64..0.95,
        threads in 1usize..6,
        block_idx in 0usize..10,
    ) {
        // Degenerate (1), small odd, power-of-two, and one-block sizes.
        let block = [1usize, 2, 3, 5, 7, 8, 13, 64, 4096, 1 << 20][block_idx];
        let all: Vec<u32> = (0..dataset.len() as u32).collect();
        for rule in rules(dthr) {
            let mut st_scalar = Stats::default();
            let scalar = apply_pairwise_scalar(&dataset, &rule, &all, &mut st_scalar);
            let mut st = Stats::default();
            let wave = apply_pairwise_blocked(&dataset, &rule, &all, threads, block, &mut st);
            prop_assert_eq!(
                normalized(wave),
                normalized(scalar),
                "clusters diverge: rule={:?} threads={} block={}", rule, threads, block
            );
            prop_assert_eq!(
                st,
                st_scalar,
                "stats diverge: rule={:?} threads={} block={}", rule, threads, block
            );
        }
    }

    /// Cluster subsets (the shape `P` sees inside the engine: a slice of
    /// non-contiguous record ids) agree too.
    #[test]
    fn wavefront_equals_scalar_on_subsets(
        dataset in mixed_dataset(),
        threads in 1usize..5,
        block in 1usize..20,
        stride in 1usize..4,
        offset in 0usize..3,
    ) {
        let ids: Vec<u32> = (0..dataset.len() as u32)
            .skip(offset)
            .step_by(stride)
            .collect();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
        let mut st_scalar = Stats::default();
        let scalar = apply_pairwise_scalar(&dataset, &rule, &ids, &mut st_scalar);
        let mut st = Stats::default();
        let wave = apply_pairwise_blocked(&dataset, &rule, &ids, threads, block, &mut st);
        prop_assert_eq!(normalized(wave), normalized(scalar));
        prop_assert_eq!(st, st_scalar);
    }
}
