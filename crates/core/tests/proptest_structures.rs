//! Property-based tests for the core data structures: the parent-pointer
//! forest against a reference union-find, the bin index against a sorted
//! oracle, and metric invariants.

use adalsh_core::bins::BinIndex;
use adalsh_core::metrics::{map_mar, set_metrics};
use adalsh_core::ppt::Forest;
use proptest::prelude::*;

/// Reference disjoint-set for differential testing.
struct NaiveDsu {
    parent: Vec<usize>,
}

impl NaiveDsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }
    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
    fn clusters(&mut self, n: usize) -> Vec<Vec<u32>> {
        let mut map: std::collections::BTreeMap<usize, Vec<u32>> = Default::default();
        for x in 0..n {
            let r = self.find(x);
            map.entry(r).or_default().push(x as u32);
        }
        let mut out: Vec<Vec<u32>> = map.into_values().collect();
        out.sort();
        out
    }
}

fn forest_clusters_sorted(forest: &Forest) -> Vec<Vec<u32>> {
    let mut out = forest.clusters();
    out.iter_mut().for_each(|c| c.sort_unstable());
    out.sort();
    out
}

proptest! {
    /// The forest under arbitrary merge sequences partitions slots
    /// exactly like a reference union-find.
    #[test]
    fn forest_equals_naive_dsu(
        n in 2usize..40,
        merges in prop::collection::vec((0usize..40, 0usize..40), 0..80),
    ) {
        let mut forest = Forest::new(n);
        for s in 0..n as u32 {
            forest.add_singleton(s);
        }
        let mut dsu = NaiveDsu::new(n);
        for (a, b) in merges {
            let (a, b) = (a % n, b % n);
            if a == b {
                continue;
            }
            let ra = forest.find_root_of_slot(a as u32).unwrap();
            let rb = forest.find_root_of_slot(b as u32).unwrap();
            if ra != rb {
                forest.merge_roots(ra, rb);
            }
            dsu.union(a, b);
        }
        prop_assert_eq!(forest_clusters_sorted(&forest), dsu.clusters(n));
    }

    /// Leaf counts at the roots always equal the actual leaf-chain
    /// lengths, and the chains partition all slots.
    #[test]
    fn forest_leaf_chain_invariants(
        n in 1usize..30,
        merges in prop::collection::vec((0usize..30, 0usize..30), 0..40),
    ) {
        let mut forest = Forest::new(n);
        for s in 0..n as u32 {
            forest.add_singleton(s);
        }
        for (a, b) in merges {
            let (a, b) = (a % n, b % n);
            let ra = forest.find_root_of_slot(a as u32).unwrap();
            let rb = forest.find_root_of_slot(b as u32).unwrap();
            if ra != rb {
                forest.merge_roots(ra, rb);
            }
        }
        let mut all: Vec<u32> = Vec::new();
        for root in forest.roots() {
            let slots = forest.cluster_slots(root);
            prop_assert_eq!(slots.len(), forest.cluster_size(root));
            all.extend(slots);
        }
        all.sort_unstable();
        prop_assert_eq!(all, (0..n as u32).collect::<Vec<_>>());
    }

    /// The bin index pops sizes in exactly descending order.
    #[test]
    fn bins_pop_descending(sizes in prop::collection::vec(1u32..10_000, 1..200)) {
        let mut idx = BinIndex::new();
        for (i, &s) in sizes.iter().enumerate() {
            idx.push(s, i as u32);
        }
        let mut popped = Vec::new();
        while let Some(e) = idx.pop_largest() {
            popped.push(e.size);
        }
        let mut expected = sizes.clone();
        expected.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(popped, expected);
    }

    /// Interleaved pushes and pops still respect the max-invariant: a
    /// pop always returns the current maximum.
    #[test]
    fn bins_interleaved_max_invariant(
        ops in prop::collection::vec(prop::option::of(1u32..1000), 1..120),
    ) {
        let mut idx = BinIndex::new();
        let mut model: Vec<u32> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Some(size) => {
                    idx.push(size, i as u32);
                    model.push(size);
                }
                None => {
                    let got = idx.pop_largest().map(|e| e.size);
                    model.sort_unstable();
                    let want = model.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(idx.len(), model.len());
        }
    }

    /// Set metrics stay in [0, 1] and F1 is the harmonic mean.
    #[test]
    fn set_metrics_bounds(
        output in prop::collection::vec(0u32..100, 0..60),
        gold in prop::collection::vec(0u32..100, 0..60),
    ) {
        let m = set_metrics(&output, &gold);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        if m.precision + m.recall > 0.0 {
            let h = 2.0 * m.precision * m.recall / (m.precision + m.recall);
            prop_assert!((m.f1 - h).abs() < 1e-12);
        }
    }

    /// mAP/mAR are 1 exactly when comparing a clustering to itself.
    #[test]
    fn map_mar_self_identity(
        clusters in prop::collection::vec(
            prop::collection::btree_set(0u32..1000, 1..10),
            1..8,
        ),
        k in 1usize..8,
    ) {
        // Make clusters disjoint by offsetting.
        let clusters: Vec<Vec<u32>> = clusters
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.into_iter().map(|x| x + (i as u32) * 10_000).collect())
            .collect();
        let (map, mar) = map_mar(&clusters, &clusters, k);
        prop_assert!((map - 1.0).abs() < 1e-12);
        prop_assert!((mar - 1.0).abs() < 1e-12);
    }

    /// mAP/mAR never leave [0, 1].
    #[test]
    fn map_mar_bounds(
        a in prop::collection::vec(prop::collection::btree_set(0u32..50, 1..6), 1..6),
        b in prop::collection::vec(prop::collection::btree_set(0u32..50, 1..6), 1..6),
        k in 1usize..6,
    ) {
        let a: Vec<Vec<u32>> = a.into_iter().map(|c| c.into_iter().collect()).collect();
        let b: Vec<Vec<u32>> = b.into_iter().map(|c| c.into_iter().collect()).collect();
        let (map, mar) = map_mar(&a, &b, k);
        prop_assert!((0.0..=1.0).contains(&map));
        prop_assert!((0.0..=1.0).contains(&mar));
    }
}
