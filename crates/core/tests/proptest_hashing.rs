//! Differential property tests: the batched advance path (one-pass
//! kernels + precomputed level plans) against the scalar oracle
//! [`SequenceHasher::advance_scalar`], over random scheme shapes, random
//! level ladders, and random records. States must be **bit-identical**
//! at every level — including the `Stats::hash_evals` count — for all
//! three scheme structures (Shared, PerPart, Weighted parts).

use adalsh_core::hashing::{HashPart, HashScratch, LevelScheme, RecordHashState, SequenceHasher};
use adalsh_core::stats::Stats;
use adalsh_data::{DenseVector, FieldDistance, FieldValue, Record, ShingleSet};
use adalsh_lsh::scheme::WzScheme;
use proptest::prelude::*;

/// Advances `rec` along both paths through every level of `h` and
/// asserts the full hash state and the eval counter agree throughout,
/// then checks a direct 0→max jump agrees with the stepwise result.
fn check_paths_agree(
    h: &SequenceHasher,
    rec: &Record,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut scratch = HashScratch::default();
    let mut batched = RecordHashState::default();
    let mut scalar = RecordHashState::default();
    let (mut stb, mut sts) = (Stats::default(), Stats::default());
    for lvl in 1..=h.num_levels() {
        h.advance_with_scratch(rec, &mut batched, lvl, &mut stb, &mut scratch);
        h.advance_scalar(rec, &mut scalar, lvl, &mut sts);
        prop_assert_eq!(&batched, &scalar, "state diverged at level {}", lvl);
        prop_assert_eq!(
            stb.hash_evals,
            sts.hash_evals,
            "eval count at level {}",
            lvl
        );
    }
    let mut jump = RecordHashState::default();
    let mut stj = Stats::default();
    h.advance_with_scratch(rec, &mut jump, h.num_levels(), &mut stj, &mut scratch);
    prop_assert_eq!(&jump, &batched, "direct jump diverged from stepwise");
    prop_assert_eq!(stj.hash_evals, stb.hash_evals);
    Ok(())
}

/// Builds a monotone level ladder from per-level `(w, z)` increments so
/// every level extends the previous one (the sequence invariant).
fn shared_ladder(increments: &[(u32, u32)], num_parts: usize, skew: u32) -> Vec<LevelScheme> {
    let mut ws = vec![1u32; num_parts];
    let mut z = 1u32;
    let mut levels = Vec::new();
    for (li, &(dw, dz)) in increments.iter().enumerate() {
        for (p, w) in ws.iter_mut().enumerate() {
            // Parts grow at slightly different rates so widths differ.
            *w += dw + ((li + p) as u32 % (skew + 1));
        }
        z += dz;
        levels.push(LevelScheme::Shared { ws: ws.clone(), z });
    }
    levels
}

fn per_part_ladder(increments: &[(u32, u32)], num_parts: usize) -> Vec<LevelScheme> {
    let mut parts: Vec<(u32, u32)> = vec![(1, 1); num_parts];
    let mut levels = Vec::new();
    for (li, &(dw, dz)) in increments.iter().enumerate() {
        for (p, wz) in parts.iter_mut().enumerate() {
            wz.0 += dw + ((li + p) as u32 % 2);
            wz.1 += dz + (p as u32 % 2);
        }
        levels.push(LevelScheme::PerPart {
            parts: parts.iter().map(|&(w, z)| WzScheme::new(w, z)).collect(),
        });
    }
    levels
}

fn shingle_field(shingles: Vec<u64>) -> FieldValue {
    FieldValue::Shingles(ShingleSet::new(shingles))
}

fn dense_field(raw: Vec<u64>, dim: usize) -> FieldValue {
    // Map raw u64 draws to components in [-1, 1); pad/cut to `dim`.
    let v: Vec<f64> = (0..dim)
        .map(|i| {
            let bits = raw.get(i).copied().unwrap_or(i as u64 * 0x9e37_79b9);
            (bits % 2000) as f64 / 1000.0 - 1.0
        })
        .collect();
    FieldValue::Dense(DenseVector::new(v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shared scheme over a shingle part and a dense part: batched path
    /// is bit-identical to the scalar oracle for random ladders and
    /// records (including empty and tiny shingle sets).
    #[test]
    fn batched_equals_scalar_shared(
        increments in prop::collection::vec((0u32..3, 0u32..3), 1..5),
        skew in 0u32..3,
        shingles in prop::collection::vec(any::<u64>(), 0..24),
        dense_raw in prop::collection::vec(any::<u64>(), 0..8),
        dim in 2usize..7,
        seed in any::<u64>(),
    ) {
        let levels = shared_ladder(&increments, 2, skew);
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, seed), HashPart::dense(1, dim, seed ^ 0xabcd)],
            levels,
        );
        let rec = Record::new(vec![shingle_field(shingles), dense_field(dense_raw, dim)]);
        check_paths_agree(&h, &rec)?;
    }

    /// PerPart (OR-rule) scheme: independent table groups per part still
    /// fold identically on both paths.
    #[test]
    fn batched_equals_scalar_per_part(
        increments in prop::collection::vec((0u32..3, 0u32..2), 1..4),
        sh_a in prop::collection::vec(any::<u64>(), 0..16),
        sh_b in prop::collection::vec(any::<u64>(), 0..16),
        seed in any::<u64>(),
    ) {
        let levels = per_part_ladder(&increments, 2);
        let h = SequenceHasher::new(
            vec![HashPart::shingles(0, seed), HashPart::shingles(1, seed ^ 0x55)],
            levels,
        );
        let rec = Record::new(vec![shingle_field(sh_a), shingle_field(sh_b)]);
        check_paths_agree(&h, &rec)?;
    }

    /// Definition-7 weighted part (Jaccard + Angular components): the
    /// per-function sub-part selection partitions the batch work-list;
    /// the scattered results must fold exactly like the scalar path.
    #[test]
    fn batched_equals_scalar_weighted(
        increments in prop::collection::vec((0u32..3, 0u32..3), 1..4),
        weight in 0.15f64..0.85,
        shingles in prop::collection::vec(any::<u64>(), 0..20),
        dense_raw in prop::collection::vec(any::<u64>(), 0..6),
        dim in 2usize..6,
        seed in any::<u64>(),
    ) {
        let levels = shared_ladder(&increments, 1, 1);
        let part = HashPart::weighted(
            &[
                (0, FieldDistance::Jaccard, weight),
                (1, FieldDistance::Angular, 1.0 - weight),
            ],
            &[0, dim],
            seed,
        );
        let h = SequenceHasher::new(vec![part], levels);
        let rec = Record::new(vec![shingle_field(shingles), dense_field(dense_raw, dim)]);
        check_paths_agree(&h, &rec)?;
    }

    /// A mixed three-part AND rule (shingles + dense + weighted) under a
    /// deeper ladder — the heaviest structural combination.
    #[test]
    fn batched_equals_scalar_mixed_parts(
        increments in prop::collection::vec((0u32..2, 0u32..2), 2..5),
        shingles in prop::collection::vec(any::<u64>(), 1..16),
        dense_raw in prop::collection::vec(any::<u64>(), 0..5),
        seed in any::<u64>(),
    ) {
        let dim = 4usize;
        let levels = shared_ladder(&increments, 3, 2);
        let weighted = HashPart::weighted(
            &[
                (0, FieldDistance::Jaccard, 0.5),
                (1, FieldDistance::Angular, 0.5),
            ],
            &[0, dim],
            seed ^ 0xf00d,
        );
        let h = SequenceHasher::new(
            vec![
                HashPart::shingles(0, seed),
                HashPart::dense(1, dim, seed ^ 1),
                weighted,
            ],
            levels,
        );
        let rec = Record::new(vec![
            shingle_field(shingles),
            dense_field(dense_raw, dim),
        ]);
        check_paths_agree(&h, &rec)?;
    }
}
