//! A minimal flat-JSON-object parser for reading trace lines back.
//!
//! The trace wire schema (see [`crate::schema`]) is deliberately a flat
//! object of string/number values per line, so this crate can read its
//! own output without depending on a JSON library (keeping `adalsh-obs`
//! dependency-free, per its charter). The parser accepts exactly the
//! subset the writer emits — one object, string keys, string / number
//! values — plus `true`/`false`/`null` for robustness, and rejects
//! nesting: a nested object or array in a trace line is a schema
//! violation worth failing loudly on.

/// A parsed flat-object value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A number without sign, fraction, or exponent — kept exact (the
    /// trace schema's counters must reconcile exactly, and `u64` counts
    /// near 2⁶⁴ would lose precision through `f64`).
    U64(u64),
    /// Any other number.
    F64(f64),
    /// A string.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

/// Parses one line holding a flat JSON object into its key/value pairs,
/// preserving order.
///
/// # Errors
/// Fails with a position-annotated message on malformed JSON, nested
/// containers, duplicate keys, or trailing garbage.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out: Vec<(String, JsonValue)> = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            if out.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key '{key}'"));
            }
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            out.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(p.err(&format!("expected ',' or '}}', got {other:?}"))),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after object"));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(self.err(&format!("expected '{}', got {other:?}", want as char))),
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b'{' | b'[') => Err(self.err("nested containers are not part of the flat schema")),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(self.err(&format!("unexpected value start {other:?}"))),
        }
    }

    fn parse_literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::F64)
            .map_err(|e| self.err(&format!("bad number '{text}': {e}")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .ok_or_else(|| self.err("truncated \\u escape"))?;
                        self.pos += 4;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| self.err("bad \\u escape"))?;
                        // The writer only escapes control characters, all
                        // below the surrogate range; reject surrogates
                        // instead of decoding pairs.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                        );
                    }
                    other => return Err(self.err(&format!("bad escape {other:?}"))),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-for-byte.
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8 lead byte"))?;
                    let start = self.pos - 1;
                    self.pos = start + len;
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?,
                    );
                }
            }
        }
    }
}

/// Length of a UTF-8 sequence from its lead byte (`None` for
/// continuation or invalid lead bytes).
fn utf8_len(lead: u8) -> Option<usize> {
    match lead {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_writer_subset() {
        let pairs =
            parse_flat_object(r#"{"ev":"hash_round","level":2,"wall":0.25,"cost":1e3}"#).unwrap();
        assert_eq!(pairs[0], ("ev".into(), JsonValue::Str("hash_round".into())));
        assert_eq!(pairs[1], ("level".into(), JsonValue::U64(2)));
        assert_eq!(pairs[2], ("wall".into(), JsonValue::F64(0.25)));
        assert_eq!(pairs[3], ("cost".into(), JsonValue::F64(1e3)));
    }

    #[test]
    fn empty_object_and_whitespace() {
        assert!(parse_flat_object("  { }  ").unwrap().is_empty());
    }

    #[test]
    fn integers_stay_exact() {
        let big = u64::MAX;
        let pairs = parse_flat_object(&format!("{{\"n\":{big}}}")).unwrap();
        assert_eq!(pairs[0].1, JsonValue::U64(big));
        // Negative and fractional numbers fall back to f64.
        let pairs = parse_flat_object(r#"{"a":-3,"b":2.5}"#).unwrap();
        assert_eq!(pairs[0].1, JsonValue::F64(-3.0));
        assert_eq!(pairs[1].1, JsonValue::F64(2.5));
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut buf = String::new();
        crate::jsonl::escape_json_into("a\"b\\c\nd\tü€", &mut buf);
        let line = format!("{{\"s\":\"{buf}\"}}");
        let pairs = parse_flat_object(&line).unwrap();
        assert_eq!(pairs[0].1, JsonValue::Str("a\"b\\c\nd\tü€".into()));
    }

    #[test]
    fn literals_parse() {
        let pairs = parse_flat_object(r#"{"t":true,"f":false,"n":null}"#).unwrap();
        assert_eq!(pairs[0].1, JsonValue::Bool(true));
        assert_eq!(pairs[1].1, JsonValue::Bool(false));
        assert_eq!(pairs[2].1, JsonValue::Null);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{]",
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1}{"#,
            r#"{"a":{"b":1}}"#,
            r#"{"a":[1]}"#,
            r#"{"a":1,"a":2}"#,
            r#"{"a":"unterminated}"#,
            "{\"a\":\"raw\ncontrol\"}",
        ] {
            assert!(parse_flat_object(bad).is_err(), "accepted: {bad}");
        }
    }
}
