//! The shared metrics registry: counters and fixed-bucket histograms
//! with Prometheus text exposition.
//!
//! Extracted and generalized from the registry that previously lived
//! privately inside `adalsh-serve`. Handles ([`Counter`],
//! [`LabeledCounter`], [`Histogram`]) are cheap `Arc` clones registered
//! once and incremented lock-free (the labeled counter's small map is
//! the one mutex, guarding request-count cells, never hot engine
//! paths). [`Registry::render`] walks families in registration order.
//!
//! ## Histogram correctness
//!
//! The Prometheus text format requires `_bucket{le="+Inf"} == _count`
//! and an exact `_sum`. Both hold here **by construction**: buckets are
//! stored *non-cumulative* (each observation lands in exactly one
//! bucket) and cumulated at render time, `+Inf` is the running total
//! itself, and the sum is an exact `f64` accumulated with a
//! compare-exchange loop on its bit pattern — not a truncated integer
//! unit. The matching parser in [`crate::promtext`] turns these
//! invariants into tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotone counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, current
/// epoch). Stored as a `u64` — every gauge in this workspace is a
/// non-negative count — with saturating decrements so a racy
/// `dec` during startup can never wrap to `u64::MAX`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Decrements by one, saturating at zero.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Subtracts `delta`, saturating at zero.
    pub fn sub(&self, delta: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(delta);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge carrying a fractional value (e.g. the age in seconds of the
/// oldest queued batch). The `f64` is stored as its bit pattern in an
/// `AtomicU64`, so `set`/`get` stay lock-free like every other handle.
#[derive(Clone, Debug)]
pub struct GaugeF64(Arc<AtomicU64>);

impl Default for GaugeF64 {
    fn default() -> Self {
        Self(Arc::new(AtomicU64::new(0.0f64.to_bits())))
    }
}

impl GaugeF64 {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A counter family keyed by label values (e.g. `(endpoint, status)`).
#[derive(Clone, Debug)]
pub struct LabeledCounter {
    label_names: Arc<[String]>,
    cells: Arc<Mutex<std::collections::BTreeMap<Vec<String>, u64>>>,
}

impl LabeledCounter {
    fn new(label_names: &[&str]) -> Self {
        Self {
            label_names: label_names.iter().map(|s| s.to_string()).collect(),
            cells: Arc::default(),
        }
    }

    /// Adds `delta` to the cell for `label_values`.
    ///
    /// # Panics
    /// Panics when the number of values does not match the registered
    /// label names — a programming error, not a runtime condition.
    pub fn add(&self, label_values: &[&str], delta: u64) {
        assert_eq!(
            label_values.len(),
            self.label_names.len(),
            "label arity mismatch"
        );
        let mut cells = lock_unpoisoned(&self.cells);
        *cells
            .entry(label_values.iter().map(|s| s.to_string()).collect())
            .or_insert(0) += delta;
    }

    /// Increments the cell for `label_values` by one.
    pub fn inc(&self, label_values: &[&str]) {
        self.add(label_values, 1);
    }

    /// The value of one cell (0 when never incremented).
    pub fn get(&self, label_values: &[&str]) -> u64 {
        lock_unpoisoned(&self.cells)
            .get(
                &label_values
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>(),
            )
            .copied()
            .unwrap_or(0)
    }
}

/// A fixed-bucket histogram with an exact `f64` sum.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Upper bounds of the finite buckets, strictly increasing.
    bounds: Arc<[f64]>,
    /// Non-cumulative per-bucket counts; one extra slot past the last
    /// finite bound collects overflow (the `+Inf`-only observations).
    buckets: Arc<[AtomicU64]>,
    count: Arc<AtomicU64>,
    /// `f64` bit pattern of the exact observation sum.
    sum_bits: Arc<AtomicU64>,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "+Inf is implicit, bounds must be finite"
        );
        Self {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: Arc::default(),
            sum_bits: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => current = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

/// One registered metric family.
enum Family {
    Counter {
        name: String,
        help: String,
        handle: Counter,
    },
    Gauge {
        name: String,
        help: String,
        handle: Gauge,
    },
    GaugeF64 {
        name: String,
        help: String,
        handle: GaugeF64,
    },
    LabeledCounter {
        name: String,
        help: String,
        handle: LabeledCounter,
    },
    Histogram {
        name: String,
        help: String,
        handle: Histogram,
    },
}

/// A registry of metric families, rendered in registration order.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter and returns its handle.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let handle = Counter::default();
        self.push(Family::Counter {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers a gauge and returns its handle.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let handle = Gauge::default();
        self.push(Family::Gauge {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers a fractional-valued gauge and returns its handle.
    pub fn gauge_f64(&self, name: &str, help: &str) -> GaugeF64 {
        let handle = GaugeF64::default();
        self.push(Family::GaugeF64 {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers a labeled counter and returns its handle.
    pub fn labeled_counter(&self, name: &str, help: &str, label_names: &[&str]) -> LabeledCounter {
        let handle = LabeledCounter::new(label_names);
        self.push(Family::LabeledCounter {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    /// Registers a histogram with the given finite bucket bounds
    /// (strictly increasing; `+Inf` is implicit) and returns its handle.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        let handle = Histogram::new(bounds);
        self.push(Family::Histogram {
            name: name.to_string(),
            help: help.to_string(),
            handle: handle.clone(),
        });
        handle
    }

    fn push(&self, family: Family) {
        let mut families = lock_unpoisoned(&self.families);
        let name = match &family {
            Family::Counter { name, .. }
            | Family::Gauge { name, .. }
            | Family::GaugeF64 { name, .. }
            | Family::LabeledCounter { name, .. }
            | Family::Histogram { name, .. } => name,
        };
        assert!(
            !families.iter().any(|f| match f {
                Family::Counter { name: n, .. }
                | Family::Gauge { name: n, .. }
                | Family::GaugeF64 { name: n, .. }
                | Family::LabeledCounter { name: n, .. }
                | Family::Histogram { name: n, .. } => n == name,
            }),
            "metric family '{name}' registered twice"
        );
        families.push(family);
    }

    /// Renders every family in Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(2048);
        for family in lock_unpoisoned(&self.families).iter() {
            match family {
                Family::Counter { name, help, handle } => {
                    render_preamble(&mut out, name, help, "counter");
                    out.push_str(&format!("{name} {}\n", handle.get()));
                }
                Family::Gauge { name, help, handle } => {
                    render_preamble(&mut out, name, help, "gauge");
                    out.push_str(&format!("{name} {}\n", handle.get()));
                }
                Family::GaugeF64 { name, help, handle } => {
                    render_preamble(&mut out, name, help, "gauge");
                    out.push_str(&format!("{name} {}\n", handle.get()));
                }
                Family::LabeledCounter { name, help, handle } => {
                    render_preamble(&mut out, name, help, "counter");
                    for (values, count) in lock_unpoisoned(&handle.cells).iter() {
                        out.push_str(name);
                        out.push('{');
                        for (i, (label, value)) in handle.label_names.iter().zip(values).enumerate()
                        {
                            if i > 0 {
                                out.push(',');
                            }
                            out.push_str(&format!("{label}=\"{}\"", escape_label(value)));
                        }
                        out.push_str(&format!("}} {count}\n"));
                    }
                }
                Family::Histogram { name, help, handle } => {
                    render_preamble(&mut out, name, help, "histogram");
                    let mut cumulative = 0u64;
                    for (i, bound) in handle.bounds.iter().enumerate() {
                        cumulative += handle.buckets[i].load(Ordering::Relaxed);
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                    }
                    // +Inf is the total count itself — the overflow slot
                    // only exists so non-cumulative storage stays exact.
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n",
                        handle.count()
                    ));
                    out.push_str(&format!("{name}_sum {}\n", handle.sum()));
                    out.push_str(&format!("{name}_count {}\n", handle.count()));
                }
            }
        }
        out
    }
}

fn render_preamble(out: &mut String, name: &str, help: &str, kind: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
}

/// Escapes a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::promtext::{check_histogram, parse};

    #[test]
    fn counters_render_and_accumulate() {
        let registry = Registry::new();
        let c = registry.counter("adalsh_test_total", "A test counter.");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let text = registry.render();
        assert!(text.contains("# TYPE adalsh_test_total counter"), "{text}");
        assert!(text.contains("adalsh_test_total 5"), "{text}");
    }

    #[test]
    fn gauges_move_both_ways_and_render_as_gauge() {
        let registry = Registry::new();
        let g = registry.gauge("adalsh_queue_depth", "Queued batches.");
        g.set(3);
        g.inc();
        g.add(2);
        g.dec();
        assert_eq!(g.get(), 5);
        g.sub(100);
        assert_eq!(g.get(), 0, "decrements saturate at zero");
        g.set(7);
        let text = registry.render();
        assert!(text.contains("# TYPE adalsh_queue_depth gauge"), "{text}");
        assert!(text.contains("adalsh_queue_depth 7"), "{text}");
        let samples = parse(&text).unwrap();
        assert_eq!(samples[0].name, "adalsh_queue_depth");
        assert_eq!(samples[0].value, 7.0);
    }

    #[test]
    fn f64_gauge_holds_fractions_and_parses_back() {
        let registry = Registry::new();
        let g = registry.gauge_f64("adalsh_queue_age_seconds", "Oldest queued batch age.");
        g.set(0.125);
        assert_eq!(g.get(), 0.125);
        let text = registry.render();
        assert!(
            text.contains("# TYPE adalsh_queue_age_seconds gauge"),
            "{text}"
        );
        let samples = parse(&text).unwrap();
        assert_eq!(samples[0].name, "adalsh_queue_age_seconds");
        assert_eq!(samples[0].value, 0.125);
    }

    #[test]
    fn labeled_counter_cells_are_independent() {
        let registry = Registry::new();
        let requests = registry.labeled_counter("req_total", "Requests.", &["endpoint", "status"]);
        requests.inc(&["/topk", "200"]);
        requests.inc(&["/topk", "200"]);
        requests.inc(&["/ingest", "400"]);
        assert_eq!(requests.get(&["/topk", "200"]), 2);
        assert_eq!(requests.get(&["/none", "500"]), 0);
        let text = registry.render();
        assert!(
            text.contains("req_total{endpoint=\"/topk\",status=\"200\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("req_total{endpoint=\"/ingest\",status=\"400\"} 1"),
            "{text}"
        );
    }

    #[test]
    #[should_panic(expected = "label arity mismatch")]
    fn labeled_counter_rejects_wrong_arity() {
        let registry = Registry::new();
        registry
            .labeled_counter("x_total", "x", &["a", "b"])
            .inc(&["only-one"]);
    }

    #[test]
    fn histogram_buckets_sum_and_count_are_consistent() {
        let registry = Registry::new();
        let h = registry.histogram("lat_seconds", "Latency.", &[0.001, 0.01, 0.1]);
        h.observe(0.0005); // le=0.001
        h.observe(0.05); // le=0.1
        h.observe(3.0); // +Inf only
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 3.0505).abs() < 1e-12);

        let samples = parse(&registry.render()).unwrap();
        check_histogram(&samples, "lat_seconds").unwrap();
        let bucket = |le: &str| {
            samples
                .iter()
                .find(|s| s.name == "lat_seconds_bucket" && s.labels.iter().any(|(_, v)| v == le))
                .map(|s| s.value)
                .unwrap()
        };
        assert_eq!(bucket("0.001"), 1.0);
        assert_eq!(bucket("0.01"), 1.0, "buckets are cumulative");
        assert_eq!(bucket("0.1"), 2.0);
        assert_eq!(bucket("+Inf"), 3.0);
    }

    #[test]
    fn histogram_sum_is_exact_f64_not_truncated() {
        let registry = Registry::new();
        let h = registry.histogram("s_seconds", "s", &[1.0]);
        // Sub-micro observations would each truncate to zero in an
        // integer-micros sum; the exact f64 sum keeps them.
        for _ in 0..1000 {
            h.observe(1e-7);
        }
        assert!((h.sum() - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn boundary_observation_lands_in_its_bucket_inclusively() {
        let registry = Registry::new();
        let h = registry.histogram("b_seconds", "b", &[0.1, 1.0]);
        h.observe(0.1); // le is inclusive
        let text = registry.render();
        assert!(text.contains("b_seconds_bucket{le=\"0.1\"} 1"), "{text}");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_family_names_panic() {
        let registry = Registry::new();
        let _a = registry.counter("dup_total", "a");
        let _b = registry.counter("dup_total", "b");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let registry = Registry::new();
        let _ = registry.histogram("h", "h", &[1.0, 0.5]);
    }

    #[test]
    fn handles_are_shared_clones() {
        let registry = Registry::new();
        let a = registry.counter("shared_total", "s");
        let b = a.clone();
        b.inc();
        assert_eq!(a.get(), 1);
    }
}
