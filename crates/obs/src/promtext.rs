//! A minimal parser for the Prometheus text exposition format, plus the
//! histogram-consistency checks the serving tests assert with.
//!
//! The goal is not a general scrape client — it is to let tests parse
//! [`crate::metrics::Registry::render`] output (and a live `/metrics`
//! response) back into samples and verify the format's invariants
//! mechanically: bucket counts nondecreasing, `+Inf` equal to `_count`,
//! `_sum` present and finite.

/// One sample line: `name{label="value",...} 1.5`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (including `_bucket`/`_sum`/`_count` suffixes).
    pub name: String,
    /// Label name/value pairs, in source order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, name: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses exposition text into samples, skipping `# HELP` comment lines
/// and blank lines. `# TYPE` lines are checked — a family declared
/// twice is a scrape-breaking emitter bug (Prometheus itself drops such
/// expositions), so it is rejected with a line-precise error rather
/// than silently merged.
///
/// # Errors
/// Fails with a line-annotated message on lines that are neither
/// comments nor well-formed samples, and on duplicate `# TYPE` family
/// declarations.
pub fn parse(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    let mut declared: Vec<(String, usize)> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE") {
            if rest.is_empty() || rest.starts_with(char::is_whitespace) {
                let family = rest.split_whitespace().next().unwrap_or_default();
                if family.is_empty() {
                    return Err(format!("line {}: # TYPE without a family name", lineno + 1));
                }
                if let Some((_, first)) = declared.iter().find(|(name, _)| name == family) {
                    return Err(format!(
                        "line {}: duplicate # TYPE for family '{family}' \
                         (first declared on line {first})",
                        lineno + 1
                    ));
                }
                declared.push((family.to_string(), lineno + 1));
                continue;
            }
        }
        if line.starts_with('#') {
            continue;
        }
        samples.push(parse_sample(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    Ok(samples)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let (ident, value_text) = match line.find('{') {
        Some(open) => {
            let close = line[open..]
                .find('}')
                .map(|i| open + i)
                .ok_or("unclosed label braces")?;
            (&line[..close + 1], line[close + 1..].trim())
        }
        None => {
            let space = line.find(' ').ok_or("missing value")?;
            (&line[..space], line[space..].trim())
        }
    };
    let (name, labels) = match ident.find('{') {
        Some(open) => (
            ident[..open].to_string(),
            parse_labels(&ident[open + 1..ident.len() - 1])?,
        ),
        None => (ident.to_string(), Vec::new()),
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    {
        return Err(format!("bad metric name '{name}'"));
    }
    let value = match value_text {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v
            .parse::<f64>()
            .map_err(|e| format!("bad value '{v}': {e}"))?,
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let bytes = body.as_bytes();
    let mut pos = 0;
    while pos < bytes.len() {
        let eq = body[pos..]
            .find('=')
            .map(|i| pos + i)
            .ok_or("label without '='")?;
        let name = body[pos..eq].trim().to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return Err("label value must be quoted".into());
        }
        let mut value = String::new();
        let mut i = eq + 2;
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => break,
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => return Err(format!("bad label escape {other:?}")),
                    }
                    i += 2;
                }
                Some(_) => {
                    // Take the full UTF-8 character, not one byte.
                    let c = body[i..].chars().next().ok_or("invalid UTF-8")?;
                    value.push(c);
                    i += c.len_utf8();
                }
            }
        }
        labels.push((name, value));
        pos = i + 1;
        if bytes.get(pos) == Some(&b',') {
            pos += 1;
        }
    }
    Ok(labels)
}

/// Checks the exposition invariants of one histogram family:
///
/// * at least one `_bucket` sample, with a `+Inf` bucket present;
/// * bucket counts nondecreasing in `le` order (cumulativeness);
/// * `_bucket{le="+Inf"} == _count` exactly;
/// * `_sum` present and finite.
///
/// # Errors
/// Fails with a message naming the violated invariant.
pub fn check_histogram(samples: &[Sample], family: &str) -> Result<(), String> {
    let bucket_name = format!("{family}_bucket");
    let buckets: Vec<&Sample> = samples.iter().filter(|s| s.name == bucket_name).collect();
    if buckets.is_empty() {
        return Err(format!("{family}: no _bucket samples"));
    }
    let mut bounds: Vec<(f64, f64)> = Vec::with_capacity(buckets.len());
    for bucket in &buckets {
        let le = bucket
            .label("le")
            .ok_or_else(|| format!("{family}: bucket without le label"))?;
        let bound = match le {
            "+Inf" => f64::INFINITY,
            v => v
                .parse::<f64>()
                .map_err(|_| format!("{family}: bad le '{v}'"))?,
        };
        bounds.push((bound, bucket.value));
    }
    bounds.sort_by(|a, b| a.0.total_cmp(&b.0));
    for pair in bounds.windows(2) {
        if pair[1].1 < pair[0].1 {
            return Err(format!(
                "{family}: bucket counts decrease ({} -> {})",
                pair[0].1, pair[1].1
            ));
        }
    }
    let (last_bound, inf_count) = *bounds.last().expect("nonempty");
    if !last_bound.is_infinite() {
        return Err(format!("{family}: missing le=\"+Inf\" bucket"));
    }
    let count = samples
        .iter()
        .find(|s| s.name == format!("{family}_count"))
        .ok_or_else(|| format!("{family}: missing _count"))?
        .value;
    if inf_count != count {
        return Err(format!(
            "{family}: +Inf bucket ({inf_count}) != _count ({count})"
        ));
    }
    let sum = samples
        .iter()
        .find(|s| s.name == format!("{family}_sum"))
        .ok_or_else(|| format!("{family}: missing _sum"))?
        .value;
    if !sum.is_finite() {
        return Err(format!("{family}: _sum is not finite ({sum})"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let text = "\
# HELP x_total Things.
# TYPE x_total counter
x_total 5
req_total{endpoint=\"/topk\",status=\"200\"} 2
lat_bucket{le=\"+Inf\"} 3
";
        let samples = parse(text).unwrap();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[0].name, "x_total");
        assert_eq!(samples[0].value, 5.0);
        assert_eq!(samples[1].label("endpoint"), Some("/topk"));
        assert_eq!(samples[1].label("status"), Some("200"));
        assert!(samples[2].value == 3.0);
        assert_eq!(samples[2].label("le"), Some("+Inf"));
    }

    #[test]
    fn parses_escaped_label_values() {
        let samples = parse("m{path=\"a\\\"b\\\\c\\nd\"} 1").unwrap();
        assert_eq!(samples[0].label("path"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn parses_special_float_samples() {
        let samples = parse("a +Inf\nb -Inf\nc NaN\n").unwrap();
        assert_eq!(samples[0].value, f64::INFINITY);
        assert_eq!(samples[1].value, f64::NEG_INFINITY);
        assert!(samples[2].value.is_nan());
    }

    #[test]
    fn rejects_duplicate_family_declarations_with_line_numbers() {
        let text = "\
# TYPE x_total counter
x_total 1
# TYPE y gauge
y 2
# TYPE x_total counter
x_total 3
";
        let err = parse(text).unwrap_err();
        assert!(err.contains("line 5"), "{err}");
        assert!(err.contains("duplicate # TYPE"), "{err}");
        assert!(err.contains("x_total"), "{err}");
        assert!(err.contains("line 1"), "{err}");
    }

    #[test]
    fn rejects_type_line_without_family() {
        assert!(parse("# TYPE\nx 1").unwrap_err().contains("line 1"));
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "just_a_name",
            "m{unclosed 1",
            "m{l=unquoted} 1",
            "m notanumber",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn histogram_check_catches_violations() {
        let good = "\
h_bucket{le=\"0.1\"} 1
h_bucket{le=\"+Inf\"} 2
h_sum 0.3
h_count 2
";
        check_histogram(&parse(good).unwrap(), "h").unwrap();

        let inf_mismatch = good.replace("h_count 2", "h_count 3");
        assert!(check_histogram(&parse(&inf_mismatch).unwrap(), "h")
            .unwrap_err()
            .contains("+Inf"));

        let decreasing = "\
h_bucket{le=\"0.1\"} 5
h_bucket{le=\"+Inf\"} 2
h_sum 0.3
h_count 2
";
        assert!(check_histogram(&parse(decreasing).unwrap(), "h")
            .unwrap_err()
            .contains("decrease"));

        let no_inf = "h_bucket{le=\"0.1\"} 1\nh_sum 0.3\nh_count 1\n";
        assert!(check_histogram(&parse(no_inf).unwrap(), "h")
            .unwrap_err()
            .contains("+Inf"));

        let no_sum = "h_bucket{le=\"+Inf\"} 1\nh_count 1\n";
        assert!(check_histogram(&parse(no_sum).unwrap(), "h")
            .unwrap_err()
            .contains("_sum"));
    }
}
