//! Renders span trees into the per-phase latency attribution shown by
//! the CLI's `trace attribute`.
//!
//! For every root operation in the trace (`ingest_batch`, `topk_query`,
//! `filter_run`) the report gives the root-latency distribution (count,
//! p50, p99, total) and a flamegraph-style breakdown: child phases
//! aggregated by their op path, each with total time, share of the root
//! total, and a proportional bar. `(self)` rows account for time a span
//! spent outside all of its children — the unattributed remainder the
//! next optimization PR goes hunting for.
//!
//! Rendering is read-only and tolerant of dangling parents (it skips
//! orphans); run [`crate::schema::validate`] first when integrity
//! matters — the CLI does.

use std::collections::HashMap;

use crate::trace::OwnedEvent;

const BAR_WIDTH: usize = 24;

struct Span {
    id: u64,
    parent: u64,
    op: String,
    start: u64,
    duration: u64,
}

/// One aggregated op-path row, in first-traversal order.
struct PathRow {
    depth: usize,
    label: String,
    total_micros: u64,
    count: u64,
}

/// Renders the attribution report for a trace. Traces without span
/// events get a short note instead of an empty report.
pub fn attribute(events: &[OwnedEvent]) -> String {
    let spans: Vec<Span> = events
        .iter()
        .filter(|e| e.name == "span")
        .filter_map(|e| {
            Some(Span {
                id: e.u64("span_id")?,
                parent: e.u64("parent_span_id")?,
                op: e.str("op")?.to_string(),
                start: e.u64("start_micros")?,
                duration: e.u64("duration_micros")?,
            })
        })
        .collect();
    if spans.is_empty() {
        return "no span events in trace (span emission requires --trace-out on a \
                span-instrumented path: serve ingest/topk or filter runs)\n"
            .to_string();
    }

    let by_id: HashMap<u64, usize> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, span) in spans.iter().enumerate() {
        if span.parent != 0 && by_id.contains_key(&span.parent) {
            children.entry(span.parent).or_default().push(i);
        }
    }
    for list in children.values_mut() {
        list.sort_by_key(|&i| (spans[i].start, spans[i].id));
    }

    let mut root_ops: Vec<&str> = Vec::new();
    for span in &spans {
        if span.parent == 0 && !root_ops.contains(&span.op.as_str()) {
            root_ops.push(&span.op);
        }
    }

    let mut out = String::new();
    out.push_str(&format!(
        "span attribution: {} span(s), {} root(s)\n",
        spans.len(),
        spans.iter().filter(|s| s.parent == 0).count()
    ));
    for root_op in root_ops {
        let roots: Vec<usize> = spans
            .iter()
            .enumerate()
            .filter(|(_, s)| s.parent == 0 && s.op == root_op)
            .map(|(i, _)| i)
            .collect();
        let mut durations: Vec<u64> = roots.iter().map(|&i| spans[i].duration).collect();
        durations.sort_unstable();
        let total: u64 = durations.iter().sum();
        out.push_str(&format!(
            "\n{root_op}: {} span(s)  p50 {}  p99 {}  total {}\n",
            roots.len(),
            ms(percentile(&durations, 50)),
            ms(percentile(&durations, 99)),
            ms(total),
        ));

        // Aggregate by op path across every root of this op.
        let mut rows: Vec<PathRow> = Vec::new();
        for &root in &roots {
            walk(&spans, &children, root, 0, root_op, &mut rows);
        }
        for row in &rows {
            if row.depth == 0 {
                continue; // the root line already printed above
            }
            let pct = if total > 0 {
                100.0 * row.total_micros as f64 / total as f64
            } else {
                0.0
            };
            let bar_len = ((pct / 100.0) * BAR_WIDTH as f64).round() as usize;
            out.push_str(&format!(
                "  {:<32} {:>10}  {:>5.1}%  x{:<5} {}\n",
                format!("{}{}", "  ".repeat(row.depth - 1), row.label),
                ms(row.total_micros),
                pct,
                row.count,
                "#".repeat(bar_len.min(BAR_WIDTH)),
            ));
        }
    }
    out
}

/// Depth-first aggregation: merges `span` into the row for its op path
/// (depth + label), recurses into children in start order, then charges
/// the unattributed remainder to a `(self)` row when the span has
/// children.
fn walk(
    spans: &[Span],
    children: &HashMap<u64, Vec<usize>>,
    index: usize,
    depth: usize,
    label: &str,
    rows: &mut Vec<PathRow>,
) {
    let span = &spans[index];
    merge(rows, depth, label, span.duration);
    let Some(kids) = children.get(&span.id) else {
        return;
    };
    let mut child_total = 0u64;
    for &kid in kids {
        child_total += spans[kid].duration;
        let op = spans[kid].op.clone();
        walk(spans, children, kid, depth + 1, &op, rows);
    }
    merge(
        rows,
        depth + 1,
        "(self)",
        span.duration.saturating_sub(child_total),
    );
}

fn merge(rows: &mut Vec<PathRow>, depth: usize, label: &str, micros: u64) {
    // `(self)` rows sort after their siblings by being merged last per
    // traversal; lookup is by (depth, label), which is unambiguous for
    // the fixed tree shapes the emitters produce.
    if let Some(row) = rows
        .iter_mut()
        .find(|r| r.depth == depth && r.label == label)
    {
        row.total_micros += micros;
        row.count += 1;
    } else {
        rows.push(PathRow {
            depth,
            label: label.to_string(),
            total_micros: micros,
            count: 1,
        });
    }
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[rank]
}

fn ms(micros: u64) -> String {
    format!("{:.3}ms", micros as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OwnedValue;

    fn span(id: u64, parent: u64, op: &str, start: u64, dur: u64) -> OwnedEvent {
        OwnedEvent {
            name: "span".to_string(),
            fields: vec![
                ("span_id".to_string(), OwnedValue::U64(id)),
                ("parent_span_id".to_string(), OwnedValue::U64(parent)),
                ("op".to_string(), OwnedValue::Str(op.to_string())),
                ("start_micros".to_string(), OwnedValue::U64(start)),
                ("duration_micros".to_string(), OwnedValue::U64(dur)),
            ],
        }
    }

    #[test]
    fn empty_trace_gets_a_note() {
        assert!(attribute(&[]).contains("no span events"));
    }

    #[test]
    fn aggregates_phases_under_their_root() {
        let events = vec![
            span(2, 1, "queue_wait", 0, 100),
            span(3, 1, "resolve", 100, 700),
            span(5, 3, "hash_rounds", 100, 400),
            span(4, 1, "publish", 800, 100),
            span(1, 0, "ingest_batch", 0, 1000),
            // A second batch with the same shape.
            span(7, 6, "queue_wait", 2000, 300),
            span(6, 0, "ingest_batch", 2000, 1000),
        ];
        let report = attribute(&events);
        assert!(report.contains("ingest_batch: 2 span(s)"), "{report}");
        assert!(report.contains("p50 1.000ms"), "{report}");
        // queue_wait totals across both batches: 400us = 20% of 2000us.
        assert!(report.contains("queue_wait"), "{report}");
        assert!(report.contains("0.400ms"), "{report}");
        assert!(report.contains("20.0%"), "{report}");
        // Nested hash_rounds appears indented under resolve, and the
        // resolve span's unattributed 300us lands in a (self) row.
        assert!(report.contains("hash_rounds"), "{report}");
        assert!(report.contains("(self)"), "{report}");
        assert!(report.contains("0.300ms"), "{report}");
    }

    #[test]
    fn separate_root_ops_get_separate_sections() {
        let events = vec![
            span(1, 0, "ingest_batch", 0, 10),
            span(2, 0, "topk_query", 5, 20),
        ];
        let report = attribute(&events);
        assert!(report.contains("\ningest_batch: 1 span(s)"), "{report}");
        assert!(report.contains("\ntopk_query: 1 span(s)"), "{report}");
    }
}
