//! Renders a trace into the per-level cost/latency table shown by the
//! CLI's `trace summarize`.
//!
//! The table aggregates over every run segment in the trace (an online
//! trace holds one segment per query): one row per sequence level
//! `H_i`, one row for the pairwise function `P`, then the gate-decision
//! and run-total footers. Rendering is read-only and schema-tolerant —
//! it sums whatever well-named events are present — so it works on
//! traces [`crate::schema::validate`] would reject; validate first when
//! integrity matters.

use std::collections::BTreeMap;

use crate::trace::OwnedEvent;

#[derive(Default)]
struct LevelRow {
    rounds: u64,
    records: u64,
    hash_evals: u64,
    keys: u64,
    wall_micros: u64,
    cost: f64,
}

#[derive(Default)]
struct PairwiseRow {
    calls: u64,
    records: u64,
    pairs: u64,
    distance_evals: u64,
    kernel_checks: u64,
    early_exits: u64,
    blocks: u64,
    wall_micros: u64,
    cost: f64,
}

/// Renders the summary table for a trace.
pub fn summarize(events: &[OwnedEvent]) -> String {
    let mut levels: BTreeMap<u64, LevelRow> = BTreeMap::new();
    let mut pairwise = PairwiseRow::default();
    let mut gate_hash = 0u64;
    let mut gate_pairwise = 0u64;
    let mut gate_forced = 0u64;
    let mut runs = 0u64;
    let mut rounds = 0u64;
    let mut finals = 0u64;
    let mut wall_micros = 0u64;
    let mut modeled = 0.0f64;
    let mut queries = 0u64;
    let mut query_fresh = 0u64;
    let mut query_advanced = 0u64;
    let mut query_hash_evals = 0u64;
    let mut oracle_calls = 0u64;
    let mut oracle_retries = 0u64;
    let mut oracle_timeouts = 0u64;
    let mut oracle_errors = 0u64;
    let mut oracle_degraded = 0u64;
    let mut oracle_spend = 0u64;

    let u = |event: &OwnedEvent, name: &str| event.u64(name).unwrap_or(0);
    for event in events {
        match event.name.as_str() {
            "hash_round" => {
                let row = levels.entry(u(event, "level")).or_default();
                row.rounds += 1;
                row.records += u(event, "cluster_size");
                row.hash_evals += u(event, "hash_evals");
                row.keys += u(event, "keys_emitted");
                row.wall_micros += u(event, "wall_micros");
                row.cost += event.f64("predicted_cost").unwrap_or(0.0);
            }
            "pairwise" => {
                pairwise.calls += 1;
                pairwise.records += u(event, "cluster_size");
                pairwise.pairs += u(event, "pairs");
                pairwise.distance_evals += u(event, "distance_evals");
                pairwise.kernel_checks += u(event, "kernel_checks");
                pairwise.early_exits += u(event, "early_exits");
                pairwise.blocks += u(event, "blocks");
                pairwise.wall_micros += u(event, "wall_micros");
                pairwise.cost += event.f64("predicted_cost").unwrap_or(0.0);
            }
            "gate" => {
                match event.str("action") {
                    Some("pairwise") => gate_pairwise += 1,
                    _ => gate_hash += 1,
                }
                gate_forced += u(event, "forced");
            }
            "run_end" => {
                runs += 1;
                rounds += u(event, "rounds");
                finals += u(event, "finals");
                wall_micros += u(event, "wall_micros");
                modeled += event.f64("modeled_cost").unwrap_or(0.0);
            }
            "online_query" => {
                queries += 1;
                query_fresh += u(event, "fresh_records");
                query_advanced += u(event, "advanced_records");
                query_hash_evals += u(event, "hash_evals");
            }
            "oracle_call" => {
                oracle_calls += 1;
                oracle_retries += u(event, "retries");
                oracle_timeouts += u(event, "timeouts");
                oracle_errors += u(event, "errors");
                oracle_degraded += u(event, "degraded");
                oracle_spend += u(event, "spend");
            }
            _ => {}
        }
    }

    let ms = |micros: u64| format!("{:.3}", micros as f64 / 1000.0);
    let mut rows: Vec<Vec<String>> = vec![vec![
        "level".into(),
        "rounds".into(),
        "records".into(),
        "hash evals".into(),
        "keys".into(),
        "pairs".into(),
        "exit rate".into(),
        "wall ms".into(),
        "modeled cost".into(),
    ]];
    for (level, row) in &levels {
        rows.push(vec![
            format!("H{level}"),
            row.rounds.to_string(),
            row.records.to_string(),
            row.hash_evals.to_string(),
            row.keys.to_string(),
            "-".into(),
            "-".into(),
            ms(row.wall_micros),
            format!("{:.1}", row.cost),
        ]);
    }
    if pairwise.calls > 0 {
        let exit_rate = if pairwise.kernel_checks > 0 {
            format!(
                "{:.1}%",
                100.0 * pairwise.early_exits as f64 / pairwise.kernel_checks as f64
            )
        } else {
            "-".into()
        };
        rows.push(vec![
            "P".into(),
            pairwise.calls.to_string(),
            pairwise.records.to_string(),
            "-".into(),
            "-".into(),
            pairwise.pairs.to_string(),
            exit_rate,
            ms(pairwise.wall_micros),
            format!("{:.1}", pairwise.cost),
        ]);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "trace summary: {runs} run(s), {} event(s)\n\n",
        events.len()
    ));
    out.push_str(&render_table(&rows));
    out.push_str(&format!(
        "\ngate decisions: hash={gate_hash} pairwise={gate_pairwise} (forced={gate_forced})\n"
    ));
    if pairwise.calls > 0 {
        out.push_str(&format!(
            "pairwise kernels: {} checks, {} early exits, {} blocks, {} distance evals\n",
            pairwise.kernel_checks, pairwise.early_exits, pairwise.blocks, pairwise.distance_evals
        ));
    }
    if queries > 0 {
        out.push_str(&format!(
            "online: {queries} query(ies), {query_fresh} fresh records, \
             {query_advanced} advanced, {query_hash_evals} hash evals\n"
        ));
    }
    if oracle_calls > 0 {
        out.push_str(&format!(
            "oracle: {oracle_calls} call(s), {oracle_retries} retries, \
             {oracle_timeouts} timeouts, {oracle_errors} errors, \
             {oracle_degraded} degraded, spend={oracle_spend}\n"
        ));
    }
    out.push_str(&format!(
        "totals: rounds={rounds} finals={finals} wall={} ms modeled_cost={modeled:.1}\n",
        ms(wall_micros)
    ));
    out
}

/// Renders rows (first row = header) with right-aligned, padded columns.
fn render_table(rows: &[Vec<String>]) -> String {
    let columns = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; columns];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (r, row) in rows.iter().enumerate() {
        for (i, cell) in row.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            for _ in 0..widths[i].saturating_sub(cell.len()) {
                out.push(' ');
            }
            out.push_str(cell);
        }
        out.push('\n');
        if r == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
            out.extend(std::iter::repeat_n('-', total));
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OwnedValue;

    fn ev(name: &str, fields: &[(&str, OwnedValue)]) -> OwnedEvent {
        OwnedEvent {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        }
    }

    fn u(v: u64) -> OwnedValue {
        OwnedValue::U64(v)
    }

    #[test]
    fn aggregates_levels_pairwise_and_gates() {
        let events = vec![
            ev(
                "hash_round",
                &[
                    ("level", u(1)),
                    ("cluster_size", u(100)),
                    ("hash_evals", u(800)),
                    ("keys_emitted", u(200)),
                    ("wall_micros", u(1500)),
                    ("predicted_cost", OwnedValue::F64(10.0)),
                ],
            ),
            ev(
                "hash_round",
                &[
                    ("level", u(1)),
                    ("cluster_size", u(50)),
                    ("hash_evals", u(400)),
                    ("keys_emitted", u(100)),
                    ("wall_micros", u(500)),
                    ("predicted_cost", OwnedValue::F64(5.0)),
                ],
            ),
            ev(
                "gate",
                &[
                    ("action", OwnedValue::Str("pairwise".into())),
                    ("forced", u(0)),
                ],
            ),
            ev(
                "pairwise",
                &[
                    ("cluster_size", u(10)),
                    ("pairs", u(45)),
                    ("kernel_checks", u(50)),
                    ("early_exits", u(25)),
                    ("blocks", u(1)),
                    ("wall_micros", u(100)),
                ],
            ),
            ev(
                "run_end",
                &[
                    ("rounds", u(3)),
                    ("finals", u(1)),
                    ("wall_micros", u(2500)),
                    ("modeled_cost", OwnedValue::F64(15.5)),
                ],
            ),
        ];
        let table = summarize(&events);
        assert!(table.contains("H1"), "{table}");
        assert!(table.contains("1200"), "summed hash evals: {table}");
        assert!(table.contains("150"), "summed records: {table}");
        assert!(table.contains("50.0%"), "early-exit rate: {table}");
        assert!(table.contains("hash=0 pairwise=1"), "{table}");
        assert!(table.contains("rounds=3 finals=1"), "{table}");
        assert!(table.contains("modeled_cost=15.5"), "{table}");
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        let table = summarize(&[]);
        assert!(table.contains("0 run(s)"), "{table}");
    }

    #[test]
    fn oracle_calls_get_their_own_footer() {
        let events = vec![
            ev(
                "oracle_call",
                &[
                    ("attempts", u(3)),
                    ("retries", u(2)),
                    ("votes", u(0)),
                    ("timeouts", u(1)),
                    ("errors", u(1)),
                    ("spend", u(3)),
                    ("degraded", u(0)),
                    ("matched", u(1)),
                    ("latency_micros", u(500)),
                ],
            ),
            ev(
                "oracle_call",
                &[
                    ("attempts", u(1)),
                    ("retries", u(0)),
                    ("votes", u(0)),
                    ("timeouts", u(0)),
                    ("errors", u(0)),
                    ("spend", u(0)),
                    ("degraded", u(1)),
                    ("matched", u(0)),
                    ("latency_micros", u(0)),
                ],
            ),
        ];
        let table = summarize(&events);
        assert!(table.contains("oracle: 2 call(s), 2 retries"), "{table}");
        assert!(table.contains("1 degraded, spend=3"), "{table}");
    }

    #[test]
    fn online_queries_get_their_own_footer() {
        let events = vec![ev(
            "online_query",
            &[
                ("k", u(1)),
                ("records", u(30)),
                ("fresh_records", u(10)),
                ("advanced_records", u(12)),
                ("hash_evals", u(99)),
                ("wall_micros", u(10)),
            ],
        )];
        let table = summarize(&events);
        assert!(table.contains("online: 1 query(ies), 10 fresh"), "{table}");
    }
}
