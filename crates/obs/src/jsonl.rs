//! The JSON Lines trace writer (and reader).
//!
//! One flat JSON object per event, one event per line — the format
//! `--trace-out` produces, `trace summarize` / `trace validate`
//! consume, and [`crate::schema`] documents. Writing is hand-rolled
//! (this crate is dependency-free); reading goes through the matching
//! minimal parser in [`crate::json`].

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::json::{parse_flat_object, JsonValue};
use crate::trace::{Event, OwnedEvent, OwnedValue, Subscriber, Value};

/// A [`Subscriber`] appending each event as one JSON line to a file.
///
/// Events are flushed line-by-line: traces are round-granular (low
/// rate), and a trace that survives `SIGKILL` up to the last completed
/// round is worth far more than buffered writes. The writer is behind a
/// [`Mutex`] — events from parallel engine sections serialize here, and
/// the engine only emits from its sequential control path anyway.
pub struct JsonlSubscriber {
    out: Mutex<BufWriter<File>>,
}

impl JsonlSubscriber {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    /// Fails when the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }

    fn write_event(&self, event: &Event<'_>) -> std::io::Result<()> {
        let mut line = String::with_capacity(128);
        line.push_str("{\"ev\":\"");
        escape_json_into(event.name, &mut line);
        line.push('"');
        for (name, value) in event.fields {
            line.push_str(",\"");
            escape_json_into(name, &mut line);
            line.push_str("\":");
            match value {
                Value::U64(v) => line.push_str(&v.to_string()),
                Value::F64(v) if v.is_finite() => line.push_str(&v.to_string()),
                // Non-finite measurements have no JSON number form; the
                // schema treats null as "unmeasurable".
                Value::F64(_) => line.push_str("null"),
                Value::Str(v) => {
                    line.push('"');
                    escape_json_into(v, &mut line);
                    line.push('"');
                }
            }
        }
        line.push_str("}\n");
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        out.write_all(line.as_bytes())?;
        out.flush()
    }
}

impl Subscriber for JsonlSubscriber {
    fn event(&self, event: &Event<'_>) {
        // Fire-and-forget: a full disk must not take the engine down.
        let _ = self.write_event(event);
    }

    fn flush(&self) {
        let _ = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .flush();
    }
}

/// Appends `text` to `out` with JSON string escaping (quotes,
/// backslashes, and control characters).
pub fn escape_json_into(text: &str, out: &mut String) {
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Reads a JSONL trace file back into owned events.
///
/// Every line must be a flat object with a string `"ev"` field naming
/// the event; remaining fields become the event's fields. Booleans and
/// nulls are rejected here — the engine never writes them (flag fields
/// are `0`/`1`), so their presence means the file is not an engine
/// trace.
///
/// # Errors
/// Fails with a line-annotated message on I/O errors or any line that
/// violates the flat schema.
pub fn read_events(path: &Path) -> Result<Vec<OwnedEvent>, String> {
    let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
    let mut events = Vec::new();
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let pairs = parse_flat_object(&line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let mut name = None;
        let mut fields = Vec::with_capacity(pairs.len().saturating_sub(1));
        for (key, value) in pairs {
            if key == "ev" {
                match value {
                    JsonValue::Str(s) => name = Some(s),
                    other => {
                        return Err(format!(
                            "line {}: 'ev' must be a string, got {other:?}",
                            lineno + 1
                        ))
                    }
                }
                continue;
            }
            let owned = match value {
                JsonValue::U64(v) => OwnedValue::U64(v),
                JsonValue::F64(v) => OwnedValue::F64(v),
                JsonValue::Str(v) => OwnedValue::Str(v),
                other => {
                    return Err(format!(
                        "line {}: field '{key}' has non-schema value {other:?}",
                        lineno + 1
                    ))
                }
            };
            fields.push((key, owned));
        }
        let name = name.ok_or_else(|| format!("line {}: missing 'ev' field", lineno + 1))?;
        events.push(OwnedEvent { name, fields });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceSink;
    use std::sync::Arc;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("adalsh_obs_tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn write_then_read_round_trips() {
        let path = tmp("roundtrip.jsonl");
        let sink = TraceSink::new(Arc::new(JsonlSubscriber::create(&path).unwrap()));
        sink.emit(
            "hash_round",
            &[
                ("level", Value::U64(2)),
                ("predicted_cost", Value::F64(12.5)),
                ("action", Value::Str("hash")),
            ],
        );
        sink.emit("run_end", &[("rounds", Value::U64(3))]);
        sink.flush();

        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "hash_round");
        assert_eq!(events[0].u64("level"), Some(2));
        assert_eq!(events[0].f64("predicted_cost"), Some(12.5));
        assert_eq!(events[0].str("action"), Some("hash"));
        assert_eq!(events[1].u64("rounds"), Some(3));
    }

    #[test]
    fn integral_f64_survives_as_exact_value() {
        let path = tmp("intfloat.jsonl");
        let sink = TraceSink::new(Arc::new(JsonlSubscriber::create(&path).unwrap()));
        // 3.0 serializes as "3"; the reader sees an exact integer and the
        // f64 accessor coerces it back.
        sink.emit("e", &[("cost", Value::F64(3.0))]);
        let events = read_events(&path).unwrap();
        assert_eq!(events[0].f64("cost"), Some(3.0));
    }

    #[test]
    fn read_rejects_non_trace_lines() {
        let path = tmp("bad.jsonl");
        std::fs::write(&path, "{\"no_ev\":1}\n").unwrap();
        assert!(read_events(&path).unwrap_err().contains("missing 'ev'"));
        std::fs::write(&path, "{\"ev\":\"x\",\"flag\":true}\n").unwrap();
        assert!(read_events(&path).unwrap_err().contains("non-schema"));
        std::fs::write(&path, "not json\n").unwrap();
        assert!(read_events(&path).is_err());
    }

    #[test]
    fn blank_lines_are_skipped() {
        let path = tmp("blank.jsonl");
        std::fs::write(&path, "\n{\"ev\":\"a\"}\n\n{\"ev\":\"b\"}\n").unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events.len(), 2);
    }
}
