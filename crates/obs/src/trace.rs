//! The tracing core: events, subscribers, and the [`TraceSink`] handle
//! instrumented code holds.
//!
//! Design constraints, in order:
//!
//! 1. **Near-zero cost when disabled.** The engine's round loop is the
//!    hot path of the whole workspace; a disabled sink must cost one
//!    well-predicted branch. [`TraceSink::enabled`] is the guard —
//!    instrumentation computes fields (and takes `Instant` timestamps)
//!    only behind it, and [`TraceSink::emit`] on a disabled sink is a
//!    `None` check.
//! 2. **No allocation to emit.** An [`Event`] borrows its name and its
//!    field slice from the emitter's stack; only subscribers that need
//!    ownership (JSONL, memory) pay for copies.
//! 3. **Explicit plumbing, no globals.** Sinks are threaded through
//!    configuration, never process-wide state, so parallel tests and
//!    embedded engines cannot observe each other's events.

use std::fmt;
use std::sync::{Arc, Mutex};

/// One field value of a trace event. The schema is deliberately small:
/// counters are `u64`, modeled costs and timings are `f64`, and
/// decisions are short static strings. Booleans are encoded as
/// `U64(0|1)` so the wire schema stays three-typed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned counter (counts, sizes, 0/1 flags).
    U64(u64),
    /// Floating-point measurement (modeled costs, seconds).
    F64(f64),
    /// Short label (event actions, origins).
    Str(&'a str),
}

/// A structured trace event: a name and a flat bag of fields, both
/// borrowed from the emitter.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Event name (see [`crate::schema`] for the taxonomy).
    pub name: &'a str,
    /// Field name/value pairs, in emission order.
    pub fields: &'a [(&'a str, Value<'a>)],
}

impl<'a> Event<'a> {
    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<Value<'a>> {
        self.fields
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// The field as a `u64`, if present and of that type.
    pub fn u64(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(Value::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// The field as an `f64` (`U64` fields coerce losslessly enough for
    /// metric observation), if present.
    pub fn f64(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(Value::F64(v)) => Some(v),
            Some(Value::U64(v)) => Some(v as f64),
            _ => None,
        }
    }

    /// The field as a string, if present and of that type.
    pub fn str(&self, name: &str) -> Option<&'a str> {
        match self.get(name) {
            Some(Value::Str(v)) => Some(v),
            _ => None,
        }
    }
}

/// A consumer of trace events. Implementations must be cheap and must
/// never panic across the subscriber boundary — the engine treats
/// tracing as fire-and-forget.
pub trait Subscriber: Send + Sync {
    /// Receives one event. Field slices are only valid for the call.
    fn event(&self, event: &Event<'_>);

    /// Flushes any buffered output (no-op by default).
    fn flush(&self) {}
}

/// The handle instrumented code holds: either disabled (the default —
/// one branch per decision point) or an [`Arc`] to a subscriber.
#[derive(Clone, Default)]
pub struct TraceSink(Option<Arc<dyn Subscriber>>);

impl TraceSink {
    /// The disabled sink (same as `TraceSink::default()`).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A sink delivering to one subscriber.
    pub fn new(subscriber: Arc<dyn Subscriber>) -> Self {
        Self(Some(subscriber))
    }

    /// Is any subscriber attached? Instrumentation guards all field
    /// computation (sizes, deltas, `Instant::now`) behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Delivers one event to the subscriber, if any.
    #[inline]
    pub fn emit(&self, name: &str, fields: &[(&str, Value<'_>)]) {
        if let Some(subscriber) = &self.0 {
            subscriber.event(&Event { name, fields });
        }
    }

    /// Flushes the subscriber, if any.
    pub fn flush(&self) {
        if let Some(subscriber) = &self.0 {
            subscriber.flush();
        }
    }

    /// Returns a sink that delivers to this sink's subscriber (if any)
    /// **and** to `subscriber`. Used by the serving layer to add its
    /// metrics fold-in without displacing a caller-installed JSONL
    /// writer.
    pub fn with(&self, subscriber: Arc<dyn Subscriber>) -> Self {
        match &self.0 {
            None => Self::new(subscriber),
            Some(existing) => Self::new(Arc::new(Fanout(vec![existing.clone(), subscriber]))),
        }
    }
}

impl fmt::Debug for TraceSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.enabled() {
            "TraceSink(enabled)"
        } else {
            "TraceSink(disabled)"
        })
    }
}

/// Delivers every event to each inner subscriber in order.
struct Fanout(Vec<Arc<dyn Subscriber>>);

impl Subscriber for Fanout {
    fn event(&self, event: &Event<'_>) {
        for subscriber in &self.0 {
            subscriber.event(event);
        }
    }

    fn flush(&self) {
        for subscriber in &self.0 {
            subscriber.flush();
        }
    }
}

/// A subscriber that discards every event. Distinct from a *disabled*
/// sink: the engine still walks its emission paths (field computation,
/// timestamps), which is exactly what the tracing-overhead differential
/// tests need to exercise.
#[derive(Debug, Default)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn event(&self, _event: &Event<'_>) {}
}

/// An owned copy of an event, as stored by [`MemorySubscriber`] and
/// returned by [`crate::jsonl::read_events`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Event name.
    pub name: String,
    /// Field name/value pairs, in emission order.
    pub fields: Vec<(String, OwnedValue)>,
}

/// Owned counterpart of [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned counter.
    U64(u64),
    /// Floating-point measurement.
    F64(f64),
    /// Short label.
    Str(String),
}

impl OwnedEvent {
    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The field as a `u64`, if present and integral.
    pub fn u64(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(OwnedValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The field as an `f64` (`U64` coerces), if present.
    pub fn f64(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(OwnedValue::F64(v)) => Some(*v),
            Some(OwnedValue::U64(v)) => Some(*v as f64),
            _ => None,
        }
    }

    /// The field as a string, if present and of that type.
    pub fn str(&self, name: &str) -> Option<&str> {
        match self.get(name) {
            Some(OwnedValue::Str(v)) => Some(v),
            _ => None,
        }
    }
}

impl From<&Event<'_>> for OwnedEvent {
    fn from(event: &Event<'_>) -> Self {
        Self {
            name: event.name.to_string(),
            fields: event
                .fields
                .iter()
                .map(|&(n, v)| {
                    let owned = match v {
                        Value::U64(x) => OwnedValue::U64(x),
                        Value::F64(x) => OwnedValue::F64(x),
                        Value::Str(x) => OwnedValue::Str(x.to_string()),
                    };
                    (n.to_string(), owned)
                })
                .collect(),
        }
    }
}

/// Collects owned copies of every event — the test-side subscriber
/// behind the trace↔`Stats` reconciliation and differential tests.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    events: Mutex<Vec<OwnedEvent>>,
}

impl MemorySubscriber {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of everything collected so far.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }
}

impl Subscriber for MemorySubscriber {
    fn event(&self, event: &Event<'_>) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(OwnedEvent::from(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_emits_nothing_and_reports_disabled() {
        let sink = TraceSink::default();
        assert!(!sink.enabled());
        sink.emit("x", &[("a", Value::U64(1))]); // must not panic
        sink.flush();
        assert_eq!(format!("{sink:?}"), "TraceSink(disabled)");
    }

    #[test]
    fn memory_subscriber_collects_in_order() {
        let memory = Arc::new(MemorySubscriber::new());
        let sink = TraceSink::new(memory.clone());
        assert!(sink.enabled());
        sink.emit("a", &[("n", Value::U64(7)), ("s", Value::Str("hash"))]);
        sink.emit("b", &[("c", Value::F64(1.5))]);
        let events = memory.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].u64("n"), Some(7));
        assert_eq!(events[0].str("s"), Some("hash"));
        assert_eq!(events[1].f64("c"), Some(1.5));
        assert_eq!(events[0].u64("missing"), None);
    }

    #[test]
    fn event_field_accessors_coerce_u64_to_f64_only() {
        let fields = [("n", Value::U64(3)), ("x", Value::F64(0.5))];
        let event = Event {
            name: "e",
            fields: &fields,
        };
        assert_eq!(event.f64("n"), Some(3.0));
        assert_eq!(event.u64("x"), None, "f64 does not silently truncate");
        assert_eq!(event.str("n"), None);
    }

    #[test]
    fn fanout_delivers_to_both() {
        let a = Arc::new(MemorySubscriber::new());
        let b = Arc::new(MemorySubscriber::new());
        let sink = TraceSink::new(a.clone()).with(b.clone());
        sink.emit("e", &[]);
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
        // `with` on a disabled sink attaches directly.
        let c = Arc::new(MemorySubscriber::new());
        let lone = TraceSink::disabled().with(c.clone());
        lone.emit("e", &[]);
        assert_eq!(c.events().len(), 1);
    }
}
