//! # adalsh-obs
//!
//! The workspace's observability substrate: a structured tracing layer
//! and a shared metrics registry, both **dependency-free** (std only —
//! not even the vendored serde stubs), so every crate can emit signals
//! without pulling serialization machinery into its hot paths.
//!
//! ## Tracing
//!
//! The engine's whole contribution is *adaptive* control flow — which
//! sequence level each cluster reaches, when the Line-5 gate jumps to
//! pairwise `P` — and those decisions are worth recording, not just
//! their final `Stats` totals. The tracing layer is built around three
//! pieces:
//!
//! * [`trace::Event`] — a named, flat bag of `u64`/`f64`/`str` fields,
//!   borrowed from the emitter's stack (no allocation to emit);
//! * [`trace::Subscriber`] — anything consuming events
//!   ([`jsonl::JsonlSubscriber`] writes them as JSON Lines,
//!   [`trace::MemorySubscriber`] collects them for tests, a metrics
//!   subscriber can fold them into histograms);
//! * [`trace::TraceSink`] — the handle instrumented code holds. A
//!   disabled sink is a `None` and costs one predictable branch per
//!   decision point; instrumentation guards its field computation (and
//!   its `Instant::now` calls) behind [`trace::TraceSink::enabled`], so
//!   tracing compiles to near-zero cost when off.
//!
//! The event taxonomy — which events exist, their required fields, and
//! the exact accounting identities tying event totals to the engine's
//! `Stats` counters — lives in [`schema`] and is enforced by
//! [`schema::validate`].
//!
//! ## Metrics
//!
//! [`metrics::Registry`] generalizes the registry that previously lived
//! privately inside `adalsh-serve`: plain and labeled counters plus
//! fixed-bucket histograms, rendered in Prometheus text exposition
//! format. Histograms keep an exact `f64` sum (not truncated micros)
//! and derive the `+Inf` bucket from the observation count, so
//! `_bucket{le="+Inf"} == _count` and `_sum` hold by construction.
//! [`promtext`] is the matching minimal parser, so the exposition
//! format is *tested*, not eyeballed.
//!
//! ## Reading traces back
//!
//! [`json`] is a minimal flat-JSON-object parser (the trace schema is
//! deliberately flat), [`jsonl::read_events`] loads a trace file, and
//! [`summary`] renders the per-level cost/latency table behind the
//! CLI's `trace summarize`.

pub mod attr;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod promtext;
pub mod schema;
pub mod span;
pub mod summary;
pub mod trace;

pub use jsonl::JsonlSubscriber;
pub use metrics::{Counter, Gauge, GaugeF64, Histogram, LabeledCounter, Registry};
pub use span::{ActiveSpan, CompletedSpan, ProcSample, SegmentAttribution, SpanCollector, Spans};
pub use trace::{
    Event, MemorySubscriber, NoopSubscriber, OwnedEvent, Subscriber, TraceSink, Value,
};
