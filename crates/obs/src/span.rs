//! Completed-span recording: parent/child span trees with typed
//! attribution fields, riding the existing trace pipe.
//!
//! A **span** is a named interval of work (`op`) with a unique id, an
//! optional parent, and attribution fields (records touched, engine
//! sums, RSS/page-fault deltas). Spans are emitted **at completion** as
//! ordinary `"span"` trace events through the caller's [`TraceSink`] —
//! so a `--trace-out` file interleaves span events with the engine's
//! nine-event taxonomy and [`crate::schema::validate`] can reconcile
//! the two (see the span invariants there). Completed spans are also
//! kept in a bounded in-memory ring for a live `/debug/spans` surface,
//! and root spans crossing a slow threshold are logged to stderr.
//!
//! ## Exact-arithmetic timestamps
//!
//! All stamps are **truncated** microseconds from one process-wide
//! origin [`Instant`], and every duration is a *difference of stamps*,
//! never an independently truncated elapsed time. This makes the span
//! invariants hold exactly rather than "up to rounding":
//!
//! * `floor(b) - floor(a) >= floor(b - a)` — a parent's stamp-derived
//!   duration can only round *up* relative to real elapsed time, so a
//!   child interval measured the same way always fits;
//! * `Σ floor(xᵢ) <= floor(Σ xᵢ)` — children synthesized from engine
//!   per-round `wall_micros` sums (already truncated per round) never
//!   exceed a stamp-derived parent window.
//!
//! ## Concurrency
//!
//! The ring push uses `try_lock`: a serving read path finishing a
//! `topk_query` span must never block behind a `/debug/spans` scrape.
//! A contended push drops the span from the *ring* only — the trace
//! event was already emitted, so the durable record is complete.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::trace::{Event, OwnedValue, Subscriber, TraceSink, Value};

/// Default capacity of the completed-span ring.
pub const DEFAULT_RING_CAP: usize = 256;

/// An in-flight span: finish it with [`Spans::finish`]. A span begun on
/// a disabled [`Spans`] carries `id == 0` and finishing it is a no-op.
#[derive(Debug, Clone, Copy)]
pub struct ActiveSpan {
    /// Unique nonzero span id (0 on a disabled recorder).
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Operation name (one of [`crate::schema::SPAN_OPS`]).
    pub op: &'static str,
    /// Truncated-microsecond start stamp from the recorder's origin.
    pub start_micros: u64,
}

/// A finished span as kept in the ring.
#[derive(Debug, Clone)]
pub struct CompletedSpan {
    /// Unique span id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Operation name.
    pub op: &'static str,
    /// Start stamp (truncated micros from the recorder origin).
    pub start_micros: u64,
    /// Duration (difference of truncated stamps).
    pub duration_micros: u64,
    /// Extra attribution fields, in emission order.
    pub fields: Vec<(&'static str, OwnedValue)>,
}

/// The span recorder: id allocation, the shared time origin, the
/// completed-span ring, and the slow-op threshold. One per process
/// surface (a serving stack, a CLI run), shared by `Arc`.
pub struct Spans {
    enabled: bool,
    origin: Instant,
    next_id: AtomicU64,
    slow_micros: u64,
    cap: usize,
    ring: Mutex<VecDeque<CompletedSpan>>,
}

impl Spans {
    /// An enabled recorder keeping up to `cap` completed spans;
    /// `slow_ms > 0` logs root spans at or above the threshold to
    /// stderr.
    pub fn new(cap: usize, slow_ms: u64) -> Self {
        Self {
            enabled: true,
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
            slow_micros: slow_ms.saturating_mul(1000),
            cap: cap.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// A recorder whose every operation is a no-op — the
    /// tracing-disabled arm of the overhead benchmark, and the default
    /// for paths that opted out of spans.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            origin: Instant::now(),
            next_id: AtomicU64::new(1),
            slow_micros: 0,
            cap: 1,
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Is this recorder live? Callers guard span-only field computation
    /// (proc sampling, stamp taking) behind this, mirroring
    /// [`TraceSink::enabled`].
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Truncated microseconds since the recorder origin. All stamps
    /// passed to [`Spans::begin_at`] / [`Spans::finish_at`] must come
    /// from here so the exact-arithmetic invariants hold.
    #[inline]
    pub fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Starts a span now. `parent == 0` makes it a root.
    pub fn begin(&self, op: &'static str, parent: u64) -> ActiveSpan {
        let start = if self.enabled { self.now_micros() } else { 0 };
        self.begin_at(op, parent, start)
    }

    /// Starts a span at an explicit earlier stamp (e.g. the enqueue
    /// stamp of a batch popped from a queue).
    pub fn begin_at(&self, op: &'static str, parent: u64, start_micros: u64) -> ActiveSpan {
        let id = if self.enabled {
            self.next_id.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        ActiveSpan {
            id,
            parent,
            op,
            start_micros,
        }
    }

    /// Finishes a span now. See [`Spans::finish_at`].
    pub fn finish(
        &self,
        span: ActiveSpan,
        extra: &[(&'static str, Value<'static>)],
        sink: &TraceSink,
    ) -> u64 {
        if !self.enabled {
            return 0;
        }
        self.finish_at(span, self.now_micros(), extra, sink)
    }

    /// Finishes a span at an explicit end stamp: emits the `"span"`
    /// trace event through `sink`, pushes the completed span into the
    /// ring (best-effort), logs slow roots, and returns the duration.
    ///
    /// `end_micros` values before the start stamp clamp to a zero
    /// duration rather than wrapping.
    pub fn finish_at(
        &self,
        span: ActiveSpan,
        end_micros: u64,
        extra: &[(&'static str, Value<'static>)],
        sink: &TraceSink,
    ) -> u64 {
        if !self.enabled || span.id == 0 {
            return 0;
        }
        let duration = end_micros.saturating_sub(span.start_micros);
        self.record(span, duration, extra, sink);
        duration
    }

    /// Records a completed span with an explicit duration — for
    /// children synthesized from engine `wall_micros` sums rather than
    /// stamp pairs (the `Σ floor(xᵢ) <= floor(Σ xᵢ)` case).
    pub fn record(
        &self,
        span: ActiveSpan,
        duration_micros: u64,
        extra: &[(&'static str, Value<'static>)],
        sink: &TraceSink,
    ) {
        if !self.enabled || span.id == 0 {
            return;
        }
        if sink.enabled() {
            let mut fields: Vec<(&str, Value<'_>)> = Vec::with_capacity(5 + extra.len());
            fields.extend([
                ("span_id", Value::U64(span.id)),
                ("parent_span_id", Value::U64(span.parent)),
                ("op", Value::Str(span.op)),
                ("start_micros", Value::U64(span.start_micros)),
                ("duration_micros", Value::U64(duration_micros)),
            ]);
            fields.extend_from_slice(extra);
            sink.emit("span", &fields);
        }
        if self.slow_micros > 0 && span.parent == 0 && duration_micros >= self.slow_micros {
            eprintln!(
                "slow op: {} {:.1}ms{}",
                span.op,
                duration_micros as f64 / 1000.0,
                slow_suffix(extra)
            );
        }
        if let Ok(mut ring) = self.ring.try_lock() {
            if ring.len() == self.cap {
                ring.pop_front();
            }
            ring.push_back(CompletedSpan {
                id: span.id,
                parent: span.parent,
                op: span.op,
                start_micros: span.start_micros,
                duration_micros,
                fields: extra.iter().map(|&(n, v)| (n, own(v))).collect(),
            });
        }
    }

    /// The completed spans currently in the ring, newest first.
    pub fn recent(&self) -> Vec<CompletedSpan> {
        let ring = self
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ring.iter().rev().cloned().collect()
    }
}

fn own(value: Value<'_>) -> OwnedValue {
    match value {
        Value::U64(v) => OwnedValue::U64(v),
        Value::F64(v) => OwnedValue::F64(v),
        Value::Str(v) => OwnedValue::Str(v.to_string()),
    }
}

fn slow_suffix(extra: &[(&'static str, Value<'static>)]) -> String {
    let mut out = String::new();
    for (name, value) in extra {
        out.push_str("  ");
        out.push_str(name);
        out.push('=');
        match value {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&v.to_string()),
            Value::Str(v) => out.push_str(v),
        }
    }
    out
}

/// A point sample of this process's memory counters, for per-phase
/// RSS/page-fault deltas around mmap-backed work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcSample {
    /// Current resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Minor page faults since process start.
    pub minor_faults: u64,
    /// Major page faults since process start.
    pub major_faults: u64,
}

impl ProcSample {
    /// Samples `/proc/self/status` (RSS) and `/proc/self/stat`
    /// (fault counters); `None` where procfs is unavailable.
    pub fn capture() -> Option<Self> {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let rss_kib: u64 = status
            .lines()
            .find(|l| l.starts_with("VmRSS:"))?
            .split_whitespace()
            .nth(1)?
            .parse()
            .ok()?;
        let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
        // Fields after the parenthesized comm (which may itself contain
        // spaces): state(3) ppid pgrp session tty tpgid flags minflt(10)
        // cminflt majflt(12) — so minflt is token 7 and majflt token 9
        // of the tail.
        let tail = stat.rsplit_once(')')?.1;
        let mut tokens = tail.split_whitespace();
        let minor: u64 = tokens.nth(7)?.parse().ok()?;
        let major: u64 = tokens.nth(1)?.parse().ok()?;
        Some(Self {
            rss_bytes: rss_kib * 1024,
            minor_faults: minor,
            major_faults: major,
        })
    }

    /// Attribution fields for the phase between `self` and `after`:
    /// `rss_delta_bytes` (signed, so it rides the wire as `f64`) plus
    /// monotone fault deltas.
    pub fn delta_fields(&self, after: &ProcSample) -> [(&'static str, Value<'static>); 3] {
        let rss_delta = after.rss_bytes as i64 - self.rss_bytes as i64;
        [
            ("rss_delta_bytes", Value::F64(rss_delta as f64)),
            (
                "minor_faults",
                Value::U64(after.minor_faults.saturating_sub(self.minor_faults)),
            ),
            (
                "major_faults",
                Value::U64(after.major_faults.saturating_sub(self.major_faults)),
            ),
        ]
    }
}

/// Per-segment engine attribution, accumulated by [`SpanCollector`]
/// from the engine's own trace events on the emitting thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentAttribution {
    /// 1-based index of the run segment in the trace stream — the
    /// `segment` field linking engine-derived spans back to the events
    /// they summarize.
    pub segment: u64,
    /// Number of `hash_round` events.
    pub hash_rounds: u64,
    /// Σ `hash_round.wall_micros`.
    pub hash_wall_micros: u64,
    /// Σ `hash_round.hash_evals`.
    pub hash_evals: u64,
    /// Number of `pairwise` events.
    pub pairwise_calls: u64,
    /// Σ `pairwise.wall_micros`.
    pub pairwise_wall_micros: u64,
    /// Σ `pairwise.pairs`.
    pub pairs: u64,
    /// Number of in-segment `oracle_call` events.
    pub oracle_calls: u64,
    /// Σ `oracle_call.spend`.
    pub oracle_spend: u64,
    /// Σ `oracle_call.latency_micros` (modeled, not wall — oracle time
    /// is attribution on the `pairwise` span, never a span duration).
    pub oracle_latency_micros: u64,
}

#[derive(Default)]
struct CollectorInner {
    /// Completed run segments seen — must match the trace file's
    /// segment count, so the collector is attached before the first
    /// resolve that emits into the file.
    segments_seen: u64,
    open: Option<SegmentAttribution>,
    last: Option<SegmentAttribution>,
}

/// A [`Subscriber`] that folds engine events into per-segment sums so
/// span emitters can attach exact engine attribution (`hash_rounds` /
/// `pairwise` child spans) without re-reading the trace. Attach it to
/// the same sink the engine emits through; take the finished segment
/// with [`SpanCollector::take_last_segment`] after each resolve.
#[derive(Default)]
pub struct SpanCollector {
    inner: Mutex<CollectorInner>,
}

impl SpanCollector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The attribution of the most recently completed segment, consumed
    /// — `None` when no segment completed since the last take (e.g. a
    /// resolve served from the cache emits no segment at all).
    pub fn take_last_segment(&self) -> Option<SegmentAttribution> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .last
            .take()
    }
}

impl Subscriber for SpanCollector {
    fn event(&self, event: &Event<'_>) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match event.name {
            "run_start" => {
                let segment = inner.segments_seen + 1;
                inner.open = Some(SegmentAttribution {
                    segment,
                    ..SegmentAttribution::default()
                });
            }
            "run_end" => {
                inner.segments_seen += 1;
                inner.last = inner.open.take();
            }
            "hash_round" => {
                if let Some(seg) = &mut inner.open {
                    seg.hash_rounds += 1;
                    seg.hash_wall_micros += event.u64("wall_micros").unwrap_or(0);
                    seg.hash_evals += event.u64("hash_evals").unwrap_or(0);
                }
            }
            "pairwise" => {
                if let Some(seg) = &mut inner.open {
                    seg.pairwise_calls += 1;
                    seg.pairwise_wall_micros += event.u64("wall_micros").unwrap_or(0);
                    seg.pairs += event.u64("pairs").unwrap_or(0);
                }
            }
            "oracle_call" => {
                if let Some(seg) = &mut inner.open {
                    seg.oracle_calls += 1;
                    seg.oracle_spend += event.u64("spend").unwrap_or(0);
                    seg.oracle_latency_micros += event.u64("latency_micros").unwrap_or(0);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::MemorySubscriber;
    use std::sync::Arc;

    #[test]
    fn disabled_recorder_is_inert() {
        let spans = Spans::disabled();
        assert!(!spans.enabled());
        let memory = Arc::new(MemorySubscriber::new());
        let sink = TraceSink::new(memory.clone());
        let span = spans.begin("ingest_batch", 0);
        assert_eq!(span.id, 0);
        assert_eq!(spans.finish(span, &[], &sink), 0);
        assert!(memory.events().is_empty());
        assert!(spans.recent().is_empty());
    }

    #[test]
    fn finish_emits_span_event_and_fills_ring() {
        let spans = Spans::new(8, 0);
        let memory = Arc::new(MemorySubscriber::new());
        let sink = TraceSink::new(memory.clone());
        let root = spans.begin("ingest_batch", 0);
        let child = spans.begin("publish", root.id);
        spans.finish(child, &[("epoch", Value::U64(3))], &sink);
        spans.finish(root, &[("records", Value::U64(10))], &sink);

        let events = memory.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "span");
        assert_eq!(events[0].str("op"), Some("publish"));
        assert_eq!(events[0].u64("parent_span_id"), Some(root.id));
        assert_eq!(events[0].u64("epoch"), Some(3));
        assert_eq!(events[1].str("op"), Some("ingest_batch"));
        assert_eq!(events[1].u64("parent_span_id"), Some(0));

        let recent = spans.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].op, "ingest_batch", "newest first");
        assert_eq!(recent[1].op, "publish");
    }

    #[test]
    fn ids_are_unique_and_nonzero() {
        let spans = Spans::new(4, 0);
        let a = spans.begin("topk_query", 0);
        let b = spans.begin("topk_query", 0);
        assert_ne!(a.id, 0);
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let spans = Spans::new(2, 0);
        let sink = TraceSink::disabled();
        for _ in 0..5 {
            let s = spans.begin("topk_query", 0);
            spans.finish(s, &[], &sink);
        }
        let recent = spans.recent();
        assert_eq!(recent.len(), 2);
        assert!(recent[0].id > recent[1].id, "kept the newest two");
    }

    #[test]
    fn durations_are_stamp_differences_and_clamp() {
        let spans = Spans::new(4, 0);
        let sink = TraceSink::disabled();
        let span = spans.begin_at("queue_wait", 1, 100);
        assert_eq!(spans.finish_at(span, 150, &[], &sink), 50);
        let span = spans.begin_at("queue_wait", 1, 100);
        assert_eq!(spans.finish_at(span, 90, &[], &sink), 0, "clamps");
    }

    #[test]
    fn proc_sample_captures_and_deltas() {
        let before = ProcSample::capture().expect("procfs available in CI");
        assert!(before.rss_bytes > 1 << 20, "implausible RSS");
        let ballast = vec![7u8; 8 << 20];
        std::hint::black_box(&ballast);
        let after = ProcSample::capture().unwrap();
        let fields = before.delta_fields(&after);
        assert_eq!(fields[0].0, "rss_delta_bytes");
        assert!(after.minor_faults >= before.minor_faults);
        drop(ballast);
    }

    #[test]
    fn collector_accumulates_per_segment_and_takes_once() {
        let collector = Arc::new(SpanCollector::new());
        let sink = TraceSink::new(collector.clone());
        assert_eq!(collector.take_last_segment(), None);
        sink.emit("run_start", &[]);
        sink.emit(
            "hash_round",
            &[
                ("wall_micros", Value::U64(10)),
                ("hash_evals", Value::U64(4)),
            ],
        );
        sink.emit(
            "hash_round",
            &[
                ("wall_micros", Value::U64(5)),
                ("hash_evals", Value::U64(2)),
            ],
        );
        sink.emit(
            "pairwise",
            &[("wall_micros", Value::U64(7)), ("pairs", Value::U64(3))],
        );
        sink.emit(
            "oracle_call",
            &[("spend", Value::U64(2)), ("latency_micros", Value::U64(99))],
        );
        sink.emit("run_end", &[]);
        let seg = collector.take_last_segment().expect("segment completed");
        assert_eq!(seg.segment, 1);
        assert_eq!(seg.hash_rounds, 2);
        assert_eq!(seg.hash_wall_micros, 15);
        assert_eq!(seg.hash_evals, 6);
        assert_eq!(seg.pairwise_calls, 1);
        assert_eq!(seg.pairwise_wall_micros, 7);
        assert_eq!(seg.pairs, 3);
        assert_eq!(seg.oracle_calls, 1);
        assert_eq!(seg.oracle_spend, 2);
        assert_eq!(seg.oracle_latency_micros, 99);
        assert_eq!(collector.take_last_segment(), None, "consumed");

        // A second segment numbers itself 2 even after a take.
        sink.emit("run_start", &[]);
        sink.emit("run_end", &[]);
        assert_eq!(collector.take_last_segment().unwrap().segment, 2);
    }

    #[test]
    fn oracle_calls_outside_segments_are_ignored() {
        let collector = Arc::new(SpanCollector::new());
        let sink = TraceSink::new(collector.clone());
        sink.emit("oracle_call", &[("spend", Value::U64(5))]);
        sink.emit("run_start", &[]);
        sink.emit("run_end", &[]);
        assert_eq!(collector.take_last_segment().unwrap().oracle_calls, 0);
    }
}
