//! The trace event taxonomy and its validator.
//!
//! A trace is a sequence of events; the engine emits them from its
//! *sequential control path* only (worker threads fold their counters
//! into per-call deltas first), so event order is deterministic given
//! the run's decisions. One engine run is a **segment**: `run_start`,
//! round-loop events, `run_end`. A file may hold many segments (the
//! online resolver emits one per query) plus segment-free events
//! (`design_level` during engine construction, `online_query` after a
//! query's segment).
//!
//! ## Events
//!
//! | event | when | fields |
//! |---|---|---|
//! | `design_level` | sequence design picks level `H_i` | `level`, `budget` |
//! | `run_start` | entering Algorithm 1 | `records`, `k`, `levels`, `threads`, `source` |
//! | `hash_round` | after a transitive hashing call `H_level` | `level`, `cluster_size`, `hash_evals`, `keys_emitted`, `subclusters`, `wall_micros`, `predicted_cost` |
//! | `gate` | Line-5 decision on a non-final cluster | `level`, `cluster_size`, `predicted_pairwise_cost`, `action` (`hash`\|`pairwise`), `forced` (0\|1), optional `predicted_hash_cost` (absent when forced: no `H_{t+1}` exists to price) |
//! | `pairwise` | after a pairwise call `P` | `cluster_size`, `pairs`, `distance_evals`, `kernel_checks`, `early_exits`, `blocks`, `subclusters`, `wall_micros`, `predicted_cost` |
//! | `pairwise_block` | after each wavefront block inside `P` | `pairs_open`, `pairs_charged`, `kernel_checks`, `early_exits`, `wall_micros` |
//! | `final_cluster` | a cluster is declared final | `rank`, `size`, `origin` (`hashed`\|`pairwise`), `level` (0 when origin is `pairwise`) |
//! | `oracle_call` | a pairwise-oracle adjudication is settled through the spend ledger | `attempts`, `retries`, `votes`, `timeouts`, `errors`, `spend`, `degraded` (0\|1), `matched` (0\|1), `latency_micros` (modeled) |
//! | `run_end` | leaving Algorithm 1 | the full `Stats` mirror: `rounds`, `finals`, `hash_evals`, `distance_evals`, `pair_comparisons`, `bucket_inserts`, `transitive_calls`, `pairwise_calls`, `modeled_cost`, `wall_micros`; under a noisy oracle also the ledger mirror: `oracle_calls`, `oracle_attempts`, `oracle_retries`, `oracle_votes`, `oracle_timeouts`, `oracle_errors`, `oracle_degraded`, `oracle_spent` |
//! | `online_query` | after an online resolver query | `k`, `records`, `fresh_records`, `advanced_records`, `hash_evals`, `wall_micros` |
//! | `span` | a span completes (see [`crate::span`]) | `span_id`, `parent_span_id` (0 = root), `op`, `start_micros`, `duration_micros`, plus optional typed attribution fields |
//!
//! `oracle_call` is segment-free by scope: the rule-based recovery
//! process adjudicates outside any engine run, so its calls appear
//! between segments and are not reconciled against a `run_end`.
//!
//! ## Span-tree invariants
//!
//! `span` events are segment-free (children complete before their
//! parents, typically after the engine segment they attribute), and
//! [`validate`] reconciles them in a second pass over the whole file:
//!
//! * span ids are nonzero and unique; every nonzero `parent_span_id`
//!   names a span in the file, and parent chains are acyclic;
//! * root ops (`ingest_batch`, `topk_query`, `filter_run`) have parent
//!   0; child ops never do;
//! * a child's `[start, start + duration]` window lies inside its
//!   parent's, and Σ direct-children durations ≤ the parent duration —
//!   exact, not approximate, because all stamps share one truncation
//!   origin (see [`crate::span`]);
//! * an engine-derived span carrying a `segment` field (ops
//!   `hash_rounds` / `pairwise` only; at most one per op per segment)
//!   links bit-for-bit to run segment `segment` (1-based, in file
//!   order): a `hash_rounds` span's duration equals that segment's
//!   Σ `hash_round.wall_micros` and its `hash_evals` field the
//!   segment's Σ `hash_round.hash_evals` (itself already reconciled
//!   against the `run_end` `Stats` mirror); a `pairwise` span's
//!   duration equals Σ `pairwise.wall_micros`, its `pairs` /
//!   `oracle_calls` / `oracle_spend` / `oracle_latency_micros` fields
//!   the segment's event sums. Modeled oracle latency is attribution
//!   only — never a span duration, since modeled time may exceed wall
//!   time.
//!
//! ## Reconciliation identities
//!
//! [`validate`] enforces, per segment, that event totals reconcile
//! **exactly** with the `run_end` `Stats` mirror:
//!
//! * Σ `hash_round.hash_evals` = `hash_evals`
//! * Σ `hash_round.keys_emitted` = `bucket_inserts`
//! * #`hash_round` = `transitive_calls`
//! * #`pairwise` = `pairwise_calls`
//! * Σ `pairwise.pairs` = `pair_comparisons`
//! * Σ `pairwise.distance_evals` = `distance_evals`
//! * #`gate` + #`final_cluster` = `rounds` (every selected cluster is
//!   either declared final or gated)
//! * #`final_cluster` = `finals`
//! * Σ `pairwise_block.pairs_charged` = `pair_comparisons`, and the
//!   blocks' `kernel_checks` / `early_exits` totals equal their
//!   `pairwise` parents' (each `pairwise` event is the sum of its
//!   blocks), with #`pairwise_block` = Σ `pairwise.blocks`
//! * folding `predicted_cost` over `hash_round` and `pairwise` events in
//!   order reproduces `modeled_cost` **bit-identically** — the engine
//!   charges its ledger with the same `f64` additions in the same
//!   order, and the JSONL round trip is exact (shortest round-trip
//!   float formatting)
//! * when `run_end` carries the oracle-ledger mirror, the segment's
//!   `oracle_call` events reconcile against it exactly:
//!   #`oracle_call` = `oracle_calls`, and Σ `attempts` / `retries` /
//!   `votes` / `timeouts` / `errors` / `spend` / `degraded` equal
//!   `oracle_attempts` / `oracle_retries` / `oracle_votes` /
//!   `oracle_timeouts` / `oracle_errors` / `oracle_spent` /
//!   `oracle_degraded`. A segment containing `oracle_call` events whose
//!   `run_end` lacks the mirror is rejected (and the mirror is
//!   all-or-nothing)

use crate::trace::{OwnedEvent, OwnedValue};

/// The wire type of one schema field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Unsigned counter (counts, sizes, 0/1 flags).
    U64,
    /// Floating-point measurement; an integral value may arrive as `U64`
    /// off the wire and is accepted.
    F64,
    /// Short label.
    Str,
}

/// Where an event may appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only between `run_start` and `run_end`.
    Run,
    /// Anywhere.
    Any,
}

/// The schema of one event type.
#[derive(Debug)]
pub struct EventSpec {
    /// Event name.
    pub name: &'static str,
    /// Where the event may appear.
    pub scope: Scope,
    /// Fields that must be present.
    pub required: &'static [(&'static str, FieldKind)],
    /// Fields that may be present.
    pub optional: &'static [(&'static str, FieldKind)],
}

/// The full event taxonomy, one spec per event type.
pub const EVENTS: &[EventSpec] = &[
    EventSpec {
        name: "design_level",
        scope: Scope::Any,
        required: &[("level", FieldKind::U64), ("budget", FieldKind::U64)],
        optional: &[],
    },
    EventSpec {
        name: "run_start",
        scope: Scope::Any,
        required: &[
            ("records", FieldKind::U64),
            ("k", FieldKind::U64),
            ("levels", FieldKind::U64),
            ("threads", FieldKind::U64),
            ("source", FieldKind::Str),
        ],
        optional: &[],
    },
    EventSpec {
        name: "hash_round",
        scope: Scope::Run,
        required: &[
            ("level", FieldKind::U64),
            ("cluster_size", FieldKind::U64),
            ("hash_evals", FieldKind::U64),
            ("keys_emitted", FieldKind::U64),
            ("subclusters", FieldKind::U64),
            ("wall_micros", FieldKind::U64),
            ("predicted_cost", FieldKind::F64),
        ],
        optional: &[],
    },
    EventSpec {
        name: "gate",
        scope: Scope::Run,
        required: &[
            ("level", FieldKind::U64),
            ("cluster_size", FieldKind::U64),
            ("predicted_pairwise_cost", FieldKind::F64),
            ("action", FieldKind::Str),
            ("forced", FieldKind::U64),
        ],
        optional: &[("predicted_hash_cost", FieldKind::F64)],
    },
    EventSpec {
        name: "pairwise",
        scope: Scope::Run,
        required: &[
            ("cluster_size", FieldKind::U64),
            ("pairs", FieldKind::U64),
            ("distance_evals", FieldKind::U64),
            ("kernel_checks", FieldKind::U64),
            ("early_exits", FieldKind::U64),
            ("blocks", FieldKind::U64),
            ("subclusters", FieldKind::U64),
            ("wall_micros", FieldKind::U64),
            ("predicted_cost", FieldKind::F64),
        ],
        optional: &[],
    },
    EventSpec {
        name: "pairwise_block",
        scope: Scope::Run,
        required: &[
            ("pairs_open", FieldKind::U64),
            ("pairs_charged", FieldKind::U64),
            ("kernel_checks", FieldKind::U64),
            ("early_exits", FieldKind::U64),
            ("wall_micros", FieldKind::U64),
        ],
        optional: &[],
    },
    EventSpec {
        name: "final_cluster",
        scope: Scope::Run,
        required: &[
            ("rank", FieldKind::U64),
            ("size", FieldKind::U64),
            ("origin", FieldKind::Str),
            ("level", FieldKind::U64),
        ],
        optional: &[],
    },
    EventSpec {
        name: "oracle_call",
        scope: Scope::Any,
        required: &[
            ("attempts", FieldKind::U64),
            ("retries", FieldKind::U64),
            ("votes", FieldKind::U64),
            ("timeouts", FieldKind::U64),
            ("errors", FieldKind::U64),
            ("spend", FieldKind::U64),
            ("degraded", FieldKind::U64),
            ("matched", FieldKind::U64),
            ("latency_micros", FieldKind::U64),
        ],
        optional: &[],
    },
    EventSpec {
        name: "run_end",
        scope: Scope::Run,
        required: &[
            ("rounds", FieldKind::U64),
            ("finals", FieldKind::U64),
            ("hash_evals", FieldKind::U64),
            ("distance_evals", FieldKind::U64),
            ("pair_comparisons", FieldKind::U64),
            ("bucket_inserts", FieldKind::U64),
            ("transitive_calls", FieldKind::U64),
            ("pairwise_calls", FieldKind::U64),
            ("modeled_cost", FieldKind::F64),
            ("wall_micros", FieldKind::U64),
        ],
        optional: &[
            ("oracle_calls", FieldKind::U64),
            ("oracle_attempts", FieldKind::U64),
            ("oracle_retries", FieldKind::U64),
            ("oracle_votes", FieldKind::U64),
            ("oracle_timeouts", FieldKind::U64),
            ("oracle_errors", FieldKind::U64),
            ("oracle_degraded", FieldKind::U64),
            ("oracle_spent", FieldKind::U64),
        ],
    },
    EventSpec {
        name: "online_query",
        scope: Scope::Any,
        required: &[
            ("k", FieldKind::U64),
            ("records", FieldKind::U64),
            ("fresh_records", FieldKind::U64),
            ("advanced_records", FieldKind::U64),
            ("hash_evals", FieldKind::U64),
            ("wall_micros", FieldKind::U64),
        ],
        optional: &[],
    },
    EventSpec {
        name: "span",
        scope: Scope::Any,
        required: &[
            ("span_id", FieldKind::U64),
            ("parent_span_id", FieldKind::U64),
            ("op", FieldKind::Str),
            ("start_micros", FieldKind::U64),
            ("duration_micros", FieldKind::U64),
        ],
        optional: &[
            ("segment", FieldKind::U64),
            ("records", FieldKind::U64),
            ("batches", FieldKind::U64),
            ("epoch", FieldKind::U64),
            ("k", FieldKind::U64),
            ("hash_evals", FieldKind::U64),
            ("pairs", FieldKind::U64),
            ("oracle_calls", FieldKind::U64),
            ("oracle_spend", FieldKind::U64),
            ("oracle_latency_micros", FieldKind::U64),
            // Signed delta: rides the wire as a (possibly negative) f64.
            ("rss_delta_bytes", FieldKind::F64),
            ("minor_faults", FieldKind::U64),
            ("major_faults", FieldKind::U64),
        ],
    },
];

/// Span operations that are roots of a span tree (`parent_span_id` 0).
pub const SPAN_ROOT_OPS: &[&str] = &["ingest_batch", "topk_query", "filter_run"];

/// Span operations that are always children of another span.
pub const SPAN_CHILD_OPS: &[&str] = &[
    "queue_wait",
    "coalesce",
    "resolve",
    "hash_rounds",
    "pairwise",
    "publish",
    "barrier_wait",
    "design",
];

/// Every valid span `op`, root and child.
pub const SPAN_OPS: &[&str] = &[
    "ingest_batch",
    "topk_query",
    "filter_run",
    "queue_wait",
    "coalesce",
    "resolve",
    "hash_rounds",
    "pairwise",
    "publish",
    "barrier_wait",
    "design",
];

/// Looks up the spec for an event name.
pub fn spec_of(name: &str) -> Option<&'static EventSpec> {
    EVENTS.iter().find(|s| s.name == name)
}

/// What [`validate`] learned about a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceReport {
    /// Number of complete run segments.
    pub runs: usize,
    /// Total number of events.
    pub events: usize,
}

/// Per-segment accumulators for the reconciliation identities.
#[derive(Default)]
struct Segment {
    hash_rounds: u64,
    hash_evals: u64,
    hash_wall_micros: u64,
    keys_emitted: u64,
    pairwise_events: u64,
    pairwise_wall_micros: u64,
    pairs: u64,
    distance_evals: u64,
    kernel_checks: u64,
    early_exits: u64,
    blocks_declared: u64,
    block_events: u64,
    block_pairs_charged: u64,
    block_kernel_checks: u64,
    block_early_exits: u64,
    gates: u64,
    finals: u64,
    cost_fold: f64,
    oracle_calls: u64,
    oracle_attempts: u64,
    oracle_retries: u64,
    oracle_votes: u64,
    oracle_timeouts: u64,
    oracle_errors: u64,
    oracle_degraded: u64,
    oracle_spend: u64,
    oracle_latency_micros: u64,
}

/// Event sums of one completed segment, kept for span linkage.
#[derive(Debug, Clone, Copy)]
struct SegmentSums {
    hash_wall_micros: u64,
    hash_evals: u64,
    pairwise_wall_micros: u64,
    pairs: u64,
    oracle_calls: u64,
    oracle_spend: u64,
    oracle_latency_micros: u64,
}

impl Segment {
    fn sums(&self) -> SegmentSums {
        SegmentSums {
            hash_wall_micros: self.hash_wall_micros,
            hash_evals: self.hash_evals,
            pairwise_wall_micros: self.pairwise_wall_micros,
            pairs: self.pairs,
            oracle_calls: self.oracle_calls,
            oracle_spend: self.oracle_spend,
            oracle_latency_micros: self.oracle_latency_micros,
        }
    }
}

/// Validates a trace against the taxonomy: field presence and types,
/// segment structure, enum values, and every reconciliation identity
/// listed in the module docs.
///
/// # Errors
/// Fails with a message naming the offending event index (0-based) or
/// the violated identity.
pub fn validate(events: &[OwnedEvent]) -> Result<TraceReport, String> {
    let mut runs = 0usize;
    let mut segment: Option<Segment> = None;
    let mut segment_sums: Vec<SegmentSums> = Vec::new();
    let mut span_indices: Vec<usize> = Vec::new();
    for (idx, event) in events.iter().enumerate() {
        let spec = spec_of(&event.name)
            .ok_or_else(|| format!("event {idx}: unknown event '{}'", event.name))?;
        check_fields(idx, event, spec)?;
        check_enums(idx, event)?;

        if spec.scope == Scope::Run && event.name != "run_end" && segment.is_none() {
            return Err(format!(
                "event {idx}: '{}' outside a run segment",
                event.name
            ));
        }
        match event.name.as_str() {
            "run_start" => {
                if segment.is_some() {
                    return Err(format!("event {idx}: nested run_start"));
                }
                segment = Some(Segment::default());
            }
            "run_end" => {
                let seg = segment
                    .take()
                    .ok_or_else(|| format!("event {idx}: run_end without run_start"))?;
                check_segment(runs, &seg, event)?;
                segment_sums.push(seg.sums());
                runs += 1;
            }
            "span" => span_indices.push(idx),
            _ => {
                if let Some(seg) = &mut segment {
                    accumulate(seg, event);
                }
            }
        }
    }
    if segment.is_some() {
        return Err("trace ends inside an unterminated run segment".to_string());
    }
    check_spans(events, &span_indices, &segment_sums)?;
    Ok(TraceReport {
        runs,
        events: events.len(),
    })
}

fn check_fields(idx: usize, event: &OwnedEvent, spec: &EventSpec) -> Result<(), String> {
    let kind_of = |value: &OwnedValue| match value {
        OwnedValue::U64(_) => FieldKind::U64,
        OwnedValue::F64(_) => FieldKind::F64,
        OwnedValue::Str(_) => FieldKind::Str,
    };
    for (name, value) in &event.fields {
        let want = spec
            .required
            .iter()
            .chain(spec.optional)
            .find(|(n, _)| n == name)
            .map(|&(_, k)| k)
            .ok_or_else(|| format!("event {idx}: '{}' has unknown field '{name}'", event.name))?;
        let got = kind_of(value);
        // Integral f64 measurements arrive as U64 off the wire.
        let ok = got == want || (want == FieldKind::F64 && got == FieldKind::U64);
        if !ok {
            return Err(format!(
                "event {idx}: field '{name}' of '{}' is {got:?}, schema says {want:?}",
                event.name
            ));
        }
    }
    for (name, _) in spec.required {
        if event.get(name).is_none() {
            return Err(format!(
                "event {idx}: '{}' is missing required field '{name}'",
                event.name
            ));
        }
    }
    Ok(())
}

fn check_enums(idx: usize, event: &OwnedEvent) -> Result<(), String> {
    if let Some(action) = event.str("action") {
        if !matches!(action, "hash" | "pairwise") {
            return Err(format!("event {idx}: bad gate action '{action}'"));
        }
    }
    if let Some(origin) = event.str("origin") {
        if !matches!(origin, "hashed" | "pairwise") {
            return Err(format!("event {idx}: bad final origin '{origin}'"));
        }
    }
    if event.name == "run_start" {
        if let Some(source) = event.str("source") {
            if !matches!(source, "ram" | "store") {
                return Err(format!("event {idx}: bad run source '{source}'"));
            }
        }
    }
    if let Some(forced) = event.u64("forced") {
        if forced > 1 {
            return Err(format!(
                "event {idx}: 'forced' must be 0 or 1, got {forced}"
            ));
        }
    }
    if event.name == "oracle_call" {
        for flag in ["degraded", "matched"] {
            if let Some(v) = event.u64(flag) {
                if v > 1 {
                    return Err(format!("event {idx}: '{flag}' must be 0 or 1, got {v}"));
                }
            }
        }
    }
    if event.name == "span" {
        if let Some(op) = event.str("op") {
            if !SPAN_OPS.contains(&op) {
                return Err(format!("event {idx}: unknown span op '{op}'"));
            }
        }
    }
    Ok(())
}

fn accumulate(seg: &mut Segment, event: &OwnedEvent) {
    let u = |name: &str| event.u64(name).unwrap_or(0);
    match event.name.as_str() {
        "hash_round" => {
            seg.hash_rounds += 1;
            seg.hash_evals += u("hash_evals");
            seg.hash_wall_micros += u("wall_micros");
            seg.keys_emitted += u("keys_emitted");
            seg.cost_fold += event.f64("predicted_cost").unwrap_or(0.0);
        }
        "pairwise" => {
            seg.pairwise_events += 1;
            seg.pairwise_wall_micros += u("wall_micros");
            seg.pairs += u("pairs");
            seg.distance_evals += u("distance_evals");
            seg.kernel_checks += u("kernel_checks");
            seg.early_exits += u("early_exits");
            seg.blocks_declared += u("blocks");
            seg.cost_fold += event.f64("predicted_cost").unwrap_or(0.0);
        }
        "pairwise_block" => {
            seg.block_events += 1;
            seg.block_pairs_charged += u("pairs_charged");
            seg.block_kernel_checks += u("kernel_checks");
            seg.block_early_exits += u("early_exits");
        }
        "gate" => seg.gates += 1,
        "final_cluster" => seg.finals += 1,
        "oracle_call" => {
            seg.oracle_calls += 1;
            seg.oracle_attempts += u("attempts");
            seg.oracle_retries += u("retries");
            seg.oracle_votes += u("votes");
            seg.oracle_timeouts += u("timeouts");
            seg.oracle_errors += u("errors");
            seg.oracle_degraded += u("degraded");
            seg.oracle_spend += u("spend");
            seg.oracle_latency_micros += u("latency_micros");
        }
        _ => {}
    }
}

fn check_segment(run: usize, seg: &Segment, end: &OwnedEvent) -> Result<(), String> {
    let want = |name: &str| -> Result<u64, String> {
        end.u64(name)
            .ok_or_else(|| format!("run {run}: run_end missing '{name}'"))
    };
    let identities: [(&str, u64, u64); 9] = [
        (
            "Σ hash_round.hash_evals = hash_evals",
            seg.hash_evals,
            want("hash_evals")?,
        ),
        (
            "Σ hash_round.keys_emitted = bucket_inserts",
            seg.keys_emitted,
            want("bucket_inserts")?,
        ),
        (
            "#hash_round = transitive_calls",
            seg.hash_rounds,
            want("transitive_calls")?,
        ),
        (
            "#pairwise = pairwise_calls",
            seg.pairwise_events,
            want("pairwise_calls")?,
        ),
        (
            "Σ pairwise.pairs = pair_comparisons",
            seg.pairs,
            want("pair_comparisons")?,
        ),
        (
            "Σ pairwise.distance_evals = distance_evals",
            seg.distance_evals,
            want("distance_evals")?,
        ),
        (
            "#gate + #final_cluster = rounds",
            seg.gates + seg.finals,
            want("rounds")?,
        ),
        ("#final_cluster = finals", seg.finals, want("finals")?),
        (
            "Σ pairwise_block.pairs_charged = pair_comparisons",
            seg.block_pairs_charged,
            want("pair_comparisons")?,
        ),
    ];
    for (name, got, expected) in identities {
        if got != expected {
            return Err(format!(
                "run {run}: identity '{name}' violated: {got} != {expected}"
            ));
        }
    }
    let block_identities: [(&str, u64, u64); 3] = [
        (
            "#pairwise_block = Σ pairwise.blocks",
            seg.block_events,
            seg.blocks_declared,
        ),
        (
            "Σ pairwise_block.kernel_checks = Σ pairwise.kernel_checks",
            seg.block_kernel_checks,
            seg.kernel_checks,
        ),
        (
            "Σ pairwise_block.early_exits = Σ pairwise.early_exits",
            seg.block_early_exits,
            seg.early_exits,
        ),
    ];
    for (name, got, expected) in block_identities {
        if got != expected {
            return Err(format!(
                "run {run}: identity '{name}' violated: {got} != {expected}"
            ));
        }
    }
    let modeled = end
        .f64("modeled_cost")
        .ok_or_else(|| format!("run {run}: run_end missing 'modeled_cost'"))?;
    if seg.cost_fold.to_bits() != modeled.to_bits() {
        return Err(format!(
            "run {run}: predicted_cost fold {} is not bit-identical to modeled_cost {}",
            seg.cost_fold, modeled
        ));
    }
    check_oracle_ledger(run, seg, end)
}

/// Reconciles the optional oracle-ledger mirror on `run_end` against
/// the segment's `oracle_call` events. The mirror is all-or-nothing:
/// a `run_end` carrying any `oracle_*` field must carry all eight, and
/// a segment containing `oracle_call` events must end with the mirror.
fn check_oracle_ledger(run: usize, seg: &Segment, end: &OwnedEvent) -> Result<(), String> {
    const MIRROR: [&str; 8] = [
        "oracle_calls",
        "oracle_attempts",
        "oracle_retries",
        "oracle_votes",
        "oracle_timeouts",
        "oracle_errors",
        "oracle_degraded",
        "oracle_spent",
    ];
    let present = MIRROR.iter().filter(|f| end.get(f).is_some()).count();
    if present == 0 {
        if seg.oracle_calls > 0 {
            return Err(format!(
                "run {run}: segment has {} oracle_call events but run_end carries no oracle ledger",
                seg.oracle_calls
            ));
        }
        return Ok(());
    }
    if present != MIRROR.len() {
        let missing: Vec<&str> = MIRROR
            .iter()
            .filter(|f| end.get(f).is_none())
            .copied()
            .collect();
        return Err(format!(
            "run {run}: run_end oracle ledger is partial, missing {missing:?}"
        ));
    }
    let want = |name: &str| end.u64(name).unwrap_or(0);
    let identities: [(&str, u64, u64); 8] = [
        (
            "#oracle_call = oracle_calls",
            seg.oracle_calls,
            want("oracle_calls"),
        ),
        (
            "Σ oracle_call.attempts = oracle_attempts",
            seg.oracle_attempts,
            want("oracle_attempts"),
        ),
        (
            "Σ oracle_call.retries = oracle_retries",
            seg.oracle_retries,
            want("oracle_retries"),
        ),
        (
            "Σ oracle_call.votes = oracle_votes",
            seg.oracle_votes,
            want("oracle_votes"),
        ),
        (
            "Σ oracle_call.timeouts = oracle_timeouts",
            seg.oracle_timeouts,
            want("oracle_timeouts"),
        ),
        (
            "Σ oracle_call.errors = oracle_errors",
            seg.oracle_errors,
            want("oracle_errors"),
        ),
        (
            "Σ oracle_call.degraded = oracle_degraded",
            seg.oracle_degraded,
            want("oracle_degraded"),
        ),
        (
            "Σ oracle_call.spend = oracle_spent",
            seg.oracle_spend,
            want("oracle_spent"),
        ),
    ];
    for (name, got, expected) in identities {
        if got != expected {
            return Err(format!(
                "run {run}: identity '{name}' violated: {got} != {expected}"
            ));
        }
    }
    Ok(())
}

/// Everything [`check_spans`] needs about one span event.
struct SpanNode {
    idx: usize,
    parent: u64,
    op: String,
    start: u64,
    duration: u64,
}

/// Reconciles the file's span events: tree structure (unique ids,
/// resolvable acyclic parents, root/child op placement), exact window
/// containment (child window inside parent, Σ direct children ≤
/// parent), and engine linkage (`segment`-carrying spans match their
/// run segment's event sums bit-for-bit).
fn check_spans(
    events: &[OwnedEvent],
    span_indices: &[usize],
    segments: &[SegmentSums],
) -> Result<(), String> {
    use std::collections::HashMap;
    let mut nodes: HashMap<u64, SpanNode> = HashMap::with_capacity(span_indices.len());
    for &idx in span_indices {
        let event = &events[idx];
        let need = |name: &str| -> Result<u64, String> {
            event
                .u64(name)
                .ok_or_else(|| format!("event {idx}: span missing '{name}'"))
        };
        let id = need("span_id")?;
        if id == 0 {
            return Err(format!("event {idx}: span_id must be nonzero"));
        }
        let node = SpanNode {
            idx,
            parent: need("parent_span_id")?,
            op: event.str("op").unwrap_or_default().to_string(),
            start: need("start_micros")?,
            duration: need("duration_micros")?,
        };
        if let Some(dup) = nodes.insert(id, node) {
            return Err(format!(
                "event {idx}: span_id {id} already used by event {}",
                dup.idx
            ));
        }
    }

    let mut child_sums: HashMap<u64, u64> = HashMap::new();
    for (&id, node) in &nodes {
        let is_root_op = SPAN_ROOT_OPS.contains(&node.op.as_str());
        if is_root_op && node.parent != 0 {
            return Err(format!(
                "event {}: root op '{}' has parent_span_id {}",
                node.idx, node.op, node.parent
            ));
        }
        if !is_root_op && node.parent == 0 {
            return Err(format!(
                "event {}: child op '{}' has no parent",
                node.idx, node.op
            ));
        }
        if node.parent == 0 {
            continue;
        }
        let parent = nodes.get(&node.parent).ok_or_else(|| {
            format!(
                "event {}: parent_span_id {} names no span in the trace",
                node.idx, node.parent
            )
        })?;
        // Cycle check: the parent chain of any span must terminate at a
        // root within |spans| steps.
        let mut cursor = node.parent;
        for _ in 0..=nodes.len() {
            match nodes.get(&cursor) {
                None => break, // caught as a dangling parent on its own node
                Some(n) if n.parent == 0 => {
                    cursor = 0;
                    break;
                }
                Some(n) => cursor = n.parent,
            }
        }
        if cursor != 0 && nodes.contains_key(&cursor) {
            return Err(format!(
                "event {}: span {id} sits on a parent cycle",
                node.idx
            ));
        }
        // Exact window containment (shared-origin truncated stamps).
        let (child_end, parent_end) = (node.start + node.duration, parent.start + parent.duration);
        if node.start < parent.start || child_end > parent_end {
            return Err(format!(
                "event {}: span {id} window [{}, {child_end}] escapes its parent's [{}, {parent_end}]",
                node.idx, node.start, parent.start
            ));
        }
        *child_sums.entry(node.parent).or_insert(0) += node.duration;
    }
    for (parent_id, sum) in &child_sums {
        let parent = &nodes[parent_id];
        if *sum > parent.duration {
            return Err(format!(
                "event {}: Σ child durations {sum} exceeds span {parent_id}'s duration {}",
                parent.idx, parent.duration
            ));
        }
    }

    // Engine linkage: `segment`-carrying spans match their segment's
    // event sums exactly.
    let mut linked: HashMap<(u64, &str), usize> = HashMap::new();
    for &idx in span_indices {
        let event = &events[idx];
        let Some(segment) = event.u64("segment") else {
            continue;
        };
        let op = event.str("op").unwrap_or_default();
        if !matches!(op, "hash_rounds" | "pairwise") {
            return Err(format!(
                "event {idx}: op '{op}' must not carry a 'segment' field"
            ));
        }
        if segment == 0 || segment as usize > segments.len() {
            return Err(format!(
                "event {idx}: segment {segment} out of range 1..={}",
                segments.len()
            ));
        }
        if let Some(prior) = linked.insert((segment, op), idx) {
            return Err(format!(
                "event {idx}: segment {segment} already has a '{op}' span (event {prior})"
            ));
        }
        let sums = &segments[segment as usize - 1];
        let duration = event.u64("duration_micros").unwrap_or(0);
        let mut identities: Vec<(&str, u64, u64)> = Vec::new();
        match op {
            "hash_rounds" => {
                identities.push((
                    "span duration = Σ hash_round.wall_micros",
                    duration,
                    sums.hash_wall_micros,
                ));
                if let Some(v) = event.u64("hash_evals") {
                    identities.push((
                        "span hash_evals = Σ hash_round.hash_evals",
                        v,
                        sums.hash_evals,
                    ));
                }
            }
            _ => {
                identities.push((
                    "span duration = Σ pairwise.wall_micros",
                    duration,
                    sums.pairwise_wall_micros,
                ));
                if let Some(v) = event.u64("pairs") {
                    identities.push(("span pairs = Σ pairwise.pairs", v, sums.pairs));
                }
                if let Some(v) = event.u64("oracle_calls") {
                    identities.push(("span oracle_calls = #oracle_call", v, sums.oracle_calls));
                }
                if let Some(v) = event.u64("oracle_spend") {
                    identities.push((
                        "span oracle_spend = Σ oracle_call.spend",
                        v,
                        sums.oracle_spend,
                    ));
                }
                if let Some(v) = event.u64("oracle_latency_micros") {
                    identities.push((
                        "span oracle_latency_micros = Σ oracle_call.latency_micros",
                        v,
                        sums.oracle_latency_micros,
                    ));
                }
            }
        }
        for (name, got, expected) in identities {
            if got != expected {
                return Err(format!(
                    "event {idx}: span linkage '{name}' violated for segment {segment}: {got} != {expected}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &str, fields: &[(&str, OwnedValue)]) -> OwnedEvent {
        OwnedEvent {
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(n, v)| (n.to_string(), v.clone()))
                .collect(),
        }
    }

    fn u(v: u64) -> OwnedValue {
        OwnedValue::U64(v)
    }

    fn f(v: f64) -> OwnedValue {
        OwnedValue::F64(v)
    }

    fn s(v: &str) -> OwnedValue {
        OwnedValue::Str(v.to_string())
    }

    /// A minimal but fully consistent segment: one hash round over 3
    /// records, one gate choosing pairwise, one pairwise call in one
    /// block, two finals.
    fn valid_trace() -> Vec<OwnedEvent> {
        vec![
            ev("design_level", &[("level", u(1)), ("budget", u(8))]),
            ev(
                "run_start",
                &[
                    ("records", u(3)),
                    ("k", u(2)),
                    ("levels", u(1)),
                    ("threads", u(1)),
                    ("source", s("ram")),
                ],
            ),
            ev(
                "hash_round",
                &[
                    ("level", u(1)),
                    ("cluster_size", u(3)),
                    ("hash_evals", u(24)),
                    ("keys_emitted", u(6)),
                    ("subclusters", u(2)),
                    ("wall_micros", u(10)),
                    ("predicted_cost", f(1.5)),
                ],
            ),
            ev(
                "gate",
                &[
                    ("level", u(1)),
                    ("cluster_size", u(2)),
                    ("predicted_pairwise_cost", f(0.5)),
                    ("action", s("pairwise")),
                    ("forced", u(1)),
                ],
            ),
            ev(
                "pairwise",
                &[
                    ("cluster_size", u(2)),
                    ("pairs", u(1)),
                    ("distance_evals", u(1)),
                    ("kernel_checks", u(1)),
                    ("early_exits", u(0)),
                    ("blocks", u(1)),
                    ("subclusters", u(1)),
                    ("wall_micros", u(3)),
                    ("predicted_cost", f(0.5)),
                ],
            ),
            ev(
                "pairwise_block",
                &[
                    ("pairs_open", u(1)),
                    ("pairs_charged", u(1)),
                    ("kernel_checks", u(1)),
                    ("early_exits", u(0)),
                    ("wall_micros", u(3)),
                ],
            ),
            ev(
                "final_cluster",
                &[
                    ("rank", u(0)),
                    ("size", u(2)),
                    ("origin", s("pairwise")),
                    ("level", u(0)),
                ],
            ),
            ev(
                "final_cluster",
                &[
                    ("rank", u(1)),
                    ("size", u(1)),
                    ("origin", s("hashed")),
                    ("level", u(1)),
                ],
            ),
            ev(
                "run_end",
                &[
                    ("rounds", u(3)),
                    ("finals", u(2)),
                    ("hash_evals", u(24)),
                    ("distance_evals", u(1)),
                    ("pair_comparisons", u(1)),
                    ("bucket_inserts", u(6)),
                    ("transitive_calls", u(1)),
                    ("pairwise_calls", u(1)),
                    ("modeled_cost", f(2.0)),
                    ("wall_micros", u(20)),
                ],
            ),
            ev(
                "online_query",
                &[
                    ("k", u(2)),
                    ("records", u(3)),
                    ("fresh_records", u(3)),
                    ("advanced_records", u(3)),
                    ("hash_evals", u(24)),
                    ("wall_micros", u(25)),
                ],
            ),
        ]
    }

    fn set(events: &mut [OwnedEvent], name: &str, field: &str, value: OwnedValue) {
        let event = events.iter_mut().find(|e| e.name == name).unwrap();
        let slot = event.fields.iter_mut().find(|(n, _)| n == field).unwrap();
        slot.1 = value;
    }

    #[test]
    fn valid_trace_passes() {
        let report = validate(&valid_trace()).unwrap();
        assert_eq!(report.runs, 1);
        assert_eq!(report.events, 10);
    }

    #[test]
    fn empty_trace_is_valid_with_zero_runs() {
        assert_eq!(validate(&[]).unwrap().runs, 0);
    }

    #[test]
    fn each_counter_identity_is_enforced() {
        for (field, message) in [
            ("hash_evals", "hash_evals"),
            ("bucket_inserts", "keys_emitted"),
            ("transitive_calls", "transitive_calls"),
            ("pairwise_calls", "pairwise_calls"),
            ("pair_comparisons", "pair_comparisons"),
            ("distance_evals", "distance_evals"),
            ("rounds", "rounds"),
            ("finals", "finals"),
        ] {
            let mut t = valid_trace();
            set(&mut t, "run_end", field, u(999));
            let err = validate(&t).unwrap_err();
            assert!(err.contains(message), "field {field}: {err}");
        }
    }

    #[test]
    fn modeled_cost_must_be_bit_identical() {
        let mut t = valid_trace();
        set(&mut t, "run_end", "modeled_cost", f(2.0 + 1e-13));
        assert!(validate(&t).unwrap_err().contains("bit-identical"));
    }

    #[test]
    fn block_totals_must_match_their_parents() {
        let mut t = valid_trace();
        set(&mut t, "pairwise_block", "kernel_checks", u(5));
        assert!(validate(&t).unwrap_err().contains("kernel_checks"));
        let mut t = valid_trace();
        set(&mut t, "pairwise", "blocks", u(7));
        assert!(validate(&t).unwrap_err().contains("blocks"));
    }

    #[test]
    fn structure_violations_are_rejected() {
        // Run-scoped event outside a segment.
        let t = vec![valid_trace()[2].clone()];
        assert!(validate(&t).unwrap_err().contains("outside a run segment"));
        // Unterminated segment.
        let t = vec![valid_trace()[1].clone()];
        assert!(validate(&t).unwrap_err().contains("unterminated"));
        // Nested run_start.
        let t = vec![valid_trace()[1].clone(), valid_trace()[1].clone()];
        assert!(validate(&t).unwrap_err().contains("nested"));
    }

    #[test]
    fn field_schema_is_enforced() {
        // Unknown event.
        let t = vec![ev("mystery", &[])];
        assert!(validate(&t).unwrap_err().contains("unknown event"));
        // Unknown field.
        let mut t = valid_trace();
        t[1].fields.push(("extra".into(), u(1)));
        assert!(validate(&t).unwrap_err().contains("unknown field"));
        // Missing required field.
        let mut t = valid_trace();
        t[1].fields.retain(|(n, _)| n != "k");
        assert!(validate(&t).unwrap_err().contains("missing required"));
        // Wrong kind.
        let mut t = valid_trace();
        set(&mut t, "run_start", "k", s("two"));
        assert!(validate(&t).unwrap_err().contains("schema says"));
        // Bad enums.
        let mut t = valid_trace();
        set(&mut t, "gate", "action", s("maybe"));
        assert!(validate(&t).unwrap_err().contains("action"));
        let mut t = valid_trace();
        set(&mut t, "gate", "forced", u(2));
        assert!(validate(&t).unwrap_err().contains("forced"));
    }

    #[test]
    fn integral_f64_field_accepts_u64_wire_value() {
        let mut t = valid_trace();
        // modeled_cost 2.0 written as "2" reads back as U64(2).
        set(&mut t, "run_end", "modeled_cost", u(2));
        validate(&t).unwrap();
    }

    #[test]
    fn multiple_segments_validate_independently() {
        let mut t = valid_trace();
        t.extend(valid_trace());
        assert_eq!(validate(&t).unwrap().runs, 2);
    }

    /// `valid_trace()` with one `oracle_call` inside the segment and the
    /// matching ledger mirror on `run_end`.
    fn valid_oracle_trace() -> Vec<OwnedEvent> {
        let mut t = valid_trace();
        let call = ev(
            "oracle_call",
            &[
                ("attempts", u(3)),
                ("retries", u(2)),
                ("votes", u(0)),
                ("timeouts", u(1)),
                ("errors", u(1)),
                ("spend", u(3)),
                ("degraded", u(0)),
                ("matched", u(1)),
                ("latency_micros", u(500)),
            ],
        );
        // Insert just after the pairwise_block, still inside the segment.
        let at = t.iter().position(|e| e.name == "pairwise_block").unwrap() + 1;
        t.insert(at, call);
        let end = t.iter_mut().find(|e| e.name == "run_end").unwrap();
        end.fields.extend([
            ("oracle_calls".to_string(), u(1)),
            ("oracle_attempts".to_string(), u(3)),
            ("oracle_retries".to_string(), u(2)),
            ("oracle_votes".to_string(), u(0)),
            ("oracle_timeouts".to_string(), u(1)),
            ("oracle_errors".to_string(), u(1)),
            ("oracle_degraded".to_string(), u(0)),
            ("oracle_spent".to_string(), u(3)),
        ]);
        t
    }

    #[test]
    fn oracle_segment_reconciles() {
        assert_eq!(validate(&valid_oracle_trace()).unwrap().runs, 1);
    }

    #[test]
    fn each_oracle_identity_is_enforced() {
        for field in [
            "oracle_calls",
            "oracle_attempts",
            "oracle_retries",
            "oracle_votes",
            "oracle_timeouts",
            "oracle_errors",
            "oracle_degraded",
            "oracle_spent",
        ] {
            let mut t = valid_oracle_trace();
            set(&mut t, "run_end", field, u(999));
            let err = validate(&t).unwrap_err();
            assert!(err.contains(field), "field {field}: {err}");
        }
    }

    #[test]
    fn oracle_calls_without_run_end_ledger_are_rejected() {
        let mut t = valid_oracle_trace();
        let end = t.iter_mut().find(|e| e.name == "run_end").unwrap();
        end.fields.retain(|(n, _)| !n.starts_with("oracle_"));
        assert!(validate(&t).unwrap_err().contains("no oracle ledger"));
    }

    #[test]
    fn partial_oracle_ledger_is_rejected() {
        let mut t = valid_oracle_trace();
        let end = t.iter_mut().find(|e| e.name == "run_end").unwrap();
        end.fields.retain(|(n, _)| n != "oracle_spent");
        assert!(validate(&t).unwrap_err().contains("partial"));
    }

    #[test]
    fn oracle_call_outside_a_segment_is_valid() {
        // The recovery process adjudicates between runs; its calls are
        // segment-free and not reconciled.
        let call = valid_oracle_trace()
            .into_iter()
            .find(|e| e.name == "oracle_call")
            .unwrap();
        let mut t = valid_trace();
        t.push(call);
        assert_eq!(validate(&t).unwrap().runs, 1);
    }

    #[test]
    fn oracle_call_flags_must_be_binary() {
        for flag in ["degraded", "matched"] {
            let mut t = valid_oracle_trace();
            set(&mut t, "oracle_call", flag, u(2));
            let err = validate(&t).unwrap_err();
            assert!(err.contains(flag), "flag {flag}: {err}");
        }
    }

    fn span_ev(id: u64, parent: u64, op: &str, start: u64, dur: u64) -> OwnedEvent {
        ev(
            "span",
            &[
                ("span_id", u(id)),
                ("parent_span_id", u(parent)),
                ("op", s(op)),
                ("start_micros", u(start)),
                ("duration_micros", u(dur)),
            ],
        )
    }

    /// `valid_trace()` plus a consistent span tree over its one segment:
    /// a `filter_run` root, a `resolve` child, and engine-derived
    /// `hash_rounds` / `pairwise` grandchildren linked to segment 1
    /// (whose event sums are hash wall 10 / evals 24, pairwise wall 3 /
    /// pairs 1).
    fn valid_span_trace() -> Vec<OwnedEvent> {
        let mut t = valid_trace();
        let mut hash = span_ev(3, 2, "hash_rounds", 10, 10);
        hash.fields.extend([
            ("segment".to_string(), u(1)),
            ("hash_evals".to_string(), u(24)),
        ]);
        let mut pair = span_ev(4, 2, "pairwise", 20, 3);
        pair.fields
            .extend([("segment".to_string(), u(1)), ("pairs".to_string(), u(1))]);
        t.extend([
            hash,
            pair,
            span_ev(2, 1, "resolve", 10, 40),
            span_ev(1, 0, "filter_run", 0, 100),
        ]);
        t
    }

    #[test]
    fn valid_span_tree_passes() {
        let report = validate(&valid_span_trace()).unwrap();
        assert_eq!(report.runs, 1);
    }

    #[test]
    fn span_ids_must_be_nonzero_and_unique() {
        let mut t = valid_span_trace();
        t.push(span_ev(0, 0, "topk_query", 0, 1));
        assert!(validate(&t).unwrap_err().contains("nonzero"));
        let mut t = valid_span_trace();
        t.push(span_ev(1, 0, "topk_query", 0, 1));
        assert!(validate(&t).unwrap_err().contains("already used"));
    }

    #[test]
    fn span_parent_must_resolve() {
        let mut t = valid_span_trace();
        t.push(span_ev(9, 77, "publish", 0, 1));
        assert!(validate(&t).unwrap_err().contains("names no span"));
    }

    #[test]
    fn span_parent_cycles_are_rejected() {
        let mut t = valid_trace();
        t.push(span_ev(10, 11, "publish", 0, 1));
        t.push(span_ev(11, 10, "publish", 0, 1));
        assert!(validate(&t).unwrap_err().contains("cycle"));
    }

    #[test]
    fn span_root_and_child_op_placement_is_enforced() {
        // A root op must not have a parent.
        let mut t = valid_span_trace();
        t.push(span_ev(9, 1, "topk_query", 0, 1));
        assert!(validate(&t).unwrap_err().contains("root op"));
        // A child op must have one.
        let mut t = valid_span_trace();
        t.push(span_ev(9, 0, "publish", 0, 1));
        assert!(validate(&t).unwrap_err().contains("has no parent"));
        // And the op set is closed.
        let mut t = valid_span_trace();
        t.push(span_ev(9, 0, "mystery_op", 0, 1));
        assert!(validate(&t).unwrap_err().contains("unknown span op"));
    }

    #[test]
    fn span_child_window_must_fit_inside_its_parent() {
        // Starts before the parent.
        let mut t = valid_span_trace();
        t.push(span_ev(9, 2, "publish", 5, 1));
        assert!(validate(&t).unwrap_err().contains("escapes"));
        // Ends after the parent.
        let mut t = valid_span_trace();
        t.push(span_ev(9, 1, "publish", 90, 20));
        assert!(validate(&t).unwrap_err().contains("escapes"));
    }

    #[test]
    fn span_children_must_not_outsum_their_parent() {
        // Two direct children of the root, each 60 of its 100: both
        // windows fit individually but their sum exceeds the parent.
        let mut t = valid_span_trace();
        t.push(span_ev(9, 1, "publish", 0, 60));
        t.push(span_ev(10, 1, "queue_wait", 30, 60));
        assert!(validate(&t).unwrap_err().contains("Σ child durations"));
    }

    #[test]
    fn span_segment_linkage_is_exact() {
        // Wrong duration for the segment's hash wall.
        let mut t = valid_span_trace();
        let hash = t
            .iter_mut()
            .find(|e| e.name == "span" && e.str("op") == Some("hash_rounds"))
            .unwrap();
        let slot = hash
            .fields
            .iter_mut()
            .find(|(n, _)| n == "duration_micros")
            .unwrap();
        slot.1 = u(9);
        assert!(validate(&t).unwrap_err().contains("wall_micros"));
        // Wrong hash_evals attribution.
        let mut t = valid_span_trace();
        let hash = t
            .iter_mut()
            .find(|e| e.name == "span" && e.str("op") == Some("hash_rounds"))
            .unwrap();
        let slot = hash
            .fields
            .iter_mut()
            .find(|(n, _)| n == "hash_evals")
            .unwrap();
        slot.1 = u(23);
        assert!(validate(&t).unwrap_err().contains("hash_evals"));
    }

    #[test]
    fn span_segment_field_is_restricted_and_ranged() {
        // Only hash_rounds / pairwise may carry `segment`.
        let mut t = valid_span_trace();
        let resolve = t
            .iter_mut()
            .find(|e| e.name == "span" && e.str("op") == Some("resolve"))
            .unwrap();
        resolve.fields.push(("segment".to_string(), u(1)));
        assert!(validate(&t).unwrap_err().contains("must not carry"));
        // Out-of-range segment index.
        let mut t = valid_span_trace();
        let hash = t
            .iter_mut()
            .find(|e| e.name == "span" && e.str("op") == Some("hash_rounds"))
            .unwrap();
        let slot = hash
            .fields
            .iter_mut()
            .find(|(n, _)| n == "segment")
            .unwrap();
        slot.1 = u(2);
        assert!(validate(&t).unwrap_err().contains("out of range"));
        // One engine-derived span per op per segment.
        let mut t = valid_span_trace();
        let mut dup = span_ev(9, 2, "pairwise", 24, 3);
        dup.fields.push(("segment".to_string(), u(1)));
        t.push(dup);
        assert!(validate(&t).unwrap_err().contains("already has"));
    }
}
