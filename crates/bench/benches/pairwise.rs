//! Criterion benchmarks of the pairwise computation function `P` at
//! cluster sizes 256 / 1024 / 4096 in the two regimes of
//! [`adalsh_bench::pairwise_bench`]: match-dense (transitive skipping
//! dominates) and match-sparse (every pair runs the distance kernel).
//! Each size×regime point benches the scalar oracle and the
//! block-wavefront path, so `cargo bench -p adalsh-bench --bench
//! pairwise` directly shows the speedup.

use adalsh_bench::pairwise_bench::{match_dense, match_sparse};
use adalsh_core::algorithm::default_threads;
use adalsh_core::pairwise::{apply_pairwise, apply_pairwise_scalar};
use adalsh_core::stats::Stats;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_pairwise(c: &mut Criterion) {
    let threads = default_threads();
    let mut g = c.benchmark_group("pairwise_P");
    g.sample_size(10);
    for &n in &[256usize, 1024, 4096] {
        for (regime, (dataset, rule)) in [("dense", match_dense(n)), ("sparse", match_sparse(n))] {
            let ids: Vec<u32> = (0..n as u32).collect();
            g.throughput(Throughput::Elements((n * (n - 1) / 2) as u64));
            g.bench_function(format!("scalar/{regime}/{n}"), |b| {
                b.iter(|| {
                    let mut stats = Stats::default();
                    black_box(apply_pairwise_scalar(
                        &dataset,
                        &rule,
                        black_box(&ids),
                        &mut stats,
                    ))
                })
            });
            g.bench_function(format!("wavefront/{regime}/{n}"), |b| {
                b.iter(|| {
                    let mut stats = Stats::default();
                    black_box(apply_pairwise(
                        &dataset,
                        &rule,
                        black_box(&ids),
                        threads,
                        &mut stats,
                    ))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pairwise);
criterion_main!(benches);
