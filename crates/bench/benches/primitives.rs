//! Criterion microbenchmarks of the building blocks: the parent-pointer
//! forest, the bin index, the elementary hash families, incremental
//! advancement, transitive hashing, and pairwise computation. These are
//! the per-operation costs the paper's cost model (Definition 3)
//! abstracts as `costᵢ` and `cost_P`.

use adalsh_core::bins::BinIndex;
use adalsh_core::hashing::{HashPart, LevelScheme, RecordHashState, SequenceHasher};
use adalsh_core::pairwise::apply_pairwise;
use adalsh_core::ppt::Forest;
use adalsh_core::stats::Stats;
use adalsh_core::transitive::apply_transitive;
use adalsh_data::{
    Dataset, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema, ShingleSet,
};
use adalsh_lsh::{DensifiedMinHash, HyperplaneFamily, MinHashFamily};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn shingle_dataset(n: usize, set_size: usize, seed: u64) -> Dataset {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let schema = Schema::single("s", FieldKind::Shingles);
    // Ten entities; within-entity sets share 90% of their tokens.
    let records: Vec<Record> = (0..n)
        .map(|i| {
            let e = i % 10;
            let mut s: Vec<u64> = (0..set_size as u64)
                .map(|j| (e as u64) * 100_000 + j)
                .collect();
            for x in s.iter_mut().take(set_size / 10) {
                *x = rng.random();
            }
            Record::single(FieldValue::Shingles(ShingleSet::new(s)))
        })
        .collect();
    let gt = (0..n).map(|i| (i % 10) as u32).collect();
    Dataset::new(schema, records, gt)
}

fn bench_forest(c: &mut Criterion) {
    let mut g = c.benchmark_group("forest");
    for &n in &[1_000usize, 10_000] {
        g.throughput(Throughput::Elements(n as u64));
        g.bench_function(format!("merge_chain/{n}"), |b| {
            b.iter_batched(
                || Forest::new(n),
                |mut f| {
                    let mut root = f.add_singleton(0);
                    for s in 1..n as u32 {
                        let leaf = f.add_singleton(s);
                        root = f.merge_roots(root, leaf);
                    }
                    black_box(f.cluster_size(root))
                },
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("find_root_compressed/{n}"), |b| {
            let mut f = Forest::new(n);
            let mut root = f.add_singleton(0);
            for s in 1..n as u32 {
                let leaf = f.add_singleton(s);
                root = f.merge_roots(root, leaf);
            }
            let leaf = f.leaf_of(0).unwrap();
            b.iter(|| black_box(f.find_root(black_box(leaf))))
        });
    }
    g.finish();
}

fn bench_bins(c: &mut Criterion) {
    let mut g = c.benchmark_group("bins");
    let sizes: Vec<u32> = {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        (0..10_000).map(|_| rng.random_range(1..100_000)).collect()
    };
    g.throughput(Throughput::Elements(sizes.len() as u64));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut idx = BinIndex::new();
            for (i, &s) in sizes.iter().enumerate() {
                idx.push(s, i as u32);
            }
            let mut acc = 0u64;
            while let Some(e) = idx.pop_largest() {
                acc += u64::from(e.size);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("families");
    let set: Vec<u64> = (0..120).collect();
    let fam = MinHashFamily::new(3);
    g.bench_function("minhash_120", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(fam.hash(i, black_box(&set)))
        })
    });
    let v: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut hp = HyperplaneFamily::new(64, 3);
    hp.ensure_functions(1024);
    g.bench_function("hyperplane_64d", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % 1024;
            black_box(hp.hash(i, black_box(&v)))
        })
    });
    g.finish();
}

/// Scalar-vs-batched MinHash at batch widths 16 / 128 / 1024: `width`
/// functions over one 120-shingle set, the workload shape of a table
/// group's advance step. The batched kernel makes ONE pass over the set.
fn bench_minhash_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("minhash_batch");
    let set: Vec<u64> = (0..120).collect();
    let fam = MinHashFamily::new(3);
    for &width in &[16usize, 128, 1024] {
        let idx: Vec<usize> = (0..width).collect();
        g.throughput(Throughput::Elements(width as u64));
        g.bench_function(format!("scalar/{width}"), |b| {
            let mut out = vec![0u64; width];
            b.iter(|| {
                for (o, &i) in out.iter_mut().zip(&idx) {
                    *o = fam.hash(i, black_box(&set));
                }
                black_box(out[width - 1])
            })
        });
        g.bench_function(format!("batched/{width}"), |b| {
            let mut out = vec![0u64; width];
            b.iter(|| {
                fam.hash_batch(&idx, black_box(&set), &mut out);
                black_box(out[width - 1])
            })
        });
        // DOPH fills the same `width` slots in ONE pass over the set
        // (O(|set| + width) vs O(|set| · width) for classic).
        let doph = DensifiedMinHash::new(3, width);
        g.bench_function(format!("doph/{width}"), |b| {
            let mut out = vec![0u64; width];
            b.iter(|| {
                doph.hash_all(black_box(&set), &mut out);
                black_box(out[width - 1])
            })
        });
    }
    g.finish();
}

/// Verification-kernel A/B: the flat 4-accumulator dot product against a
/// sequential fold, and the branch-light merge intersection against
/// galloping, on workload-shaped inputs (64-dim histogram vectors,
/// ~120-shingle sets).
fn bench_distance_kernels(c: &mut Criterion) {
    use adalsh_data::DenseVector;
    let mut g = c.benchmark_group("distance_kernels");
    let a = DenseVector::new((0..64).map(|i| (i as f64 * 0.37).sin()).collect());
    let b = DenseVector::new((0..64).map(|i| (i as f64 * 0.91).cos()).collect());
    g.bench_function("dot_flat_64d", |bch| {
        bch.iter(|| black_box(black_box(&a).dot(black_box(&b))))
    });
    g.bench_function("dot_sequential_64d", |bch| {
        bch.iter(|| {
            let s: f64 = black_box(a.components())
                .iter()
                .zip(black_box(b.components()))
                .map(|(x, y)| x * y)
                .sum();
            black_box(s)
        })
    });
    let sa = ShingleSet::new((0..240).map(|i| i * 3).collect());
    let sb = ShingleSet::new((0..240).map(|i| i * 4 + 1).collect());
    g.bench_function("intersect_merge_240", |bch| {
        bch.iter(|| black_box(black_box(&sa).intersection_size_merge(black_box(&sb))))
    });
    g.bench_function("intersect_gallop_240", |bch| {
        bch.iter(|| black_box(black_box(&sa).intersection_size_galloping(black_box(&sb))))
    });
    g.finish();
}

/// Scalar-vs-batched hyperplane signs at batch widths 16 / 128 / 1024
/// over one 64-dim vector. Both paths read the same flat row-major
/// matrix; batching saves the per-call dispatch, not the dot products.
fn bench_hyperplane_batch(c: &mut Criterion) {
    let mut g = c.benchmark_group("hyperplane_batch");
    let v: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut hp = HyperplaneFamily::new(64, 3);
    hp.ensure_functions(1024);
    for &width in &[16usize, 128, 1024] {
        let idx: Vec<usize> = (0..width).collect();
        g.throughput(Throughput::Elements(width as u64));
        g.bench_function(format!("scalar/{width}"), |b| {
            let mut out = vec![0u64; width];
            b.iter(|| {
                for (o, &i) in out.iter_mut().zip(&idx) {
                    *o = hp.hash(i, black_box(&v));
                }
                black_box(out[width - 1])
            })
        });
        g.bench_function(format!("batched/{width}"), |b| {
            let mut out = vec![0u64; width];
            b.iter(|| {
                hp.hash_batch(&idx, black_box(&v), &mut out);
                black_box(out[width - 1])
            })
        });
    }
    g.finish();
}

fn test_levels() -> Vec<LevelScheme> {
    vec![
        LevelScheme::Shared { ws: vec![1], z: 20 },
        LevelScheme::Shared { ws: vec![2], z: 20 },
        LevelScheme::Shared { ws: vec![2], z: 40 },
        LevelScheme::Shared { ws: vec![3], z: 53 },
    ]
}

fn bench_incremental_advance(c: &mut Criterion) {
    use adalsh_core::hashing::HashScratch;
    let mut g = c.benchmark_group("advance");
    let dataset = shingle_dataset(64, 120, 9);
    g.bench_function("level1_to_4_per_record", |b| {
        b.iter_batched(
            || {
                (
                    SequenceHasher::new(vec![HashPart::shingles(0, 7)], test_levels()),
                    vec![RecordHashState::default(); dataset.len()],
                    Stats::default(),
                )
            },
            |(hasher, mut states, mut stats)| {
                let mut scratch = HashScratch::default();
                for i in 0..dataset.len() as u32 {
                    hasher.advance_with_scratch(
                        dataset.record(i),
                        &mut states[i as usize],
                        4,
                        &mut stats,
                        &mut scratch,
                    );
                }
                black_box(stats.hash_evals)
            },
            BatchSize::SmallInput,
        )
    });
    // The scalar oracle on the identical workload: the in-run control for
    // the batched path above (same binary, same machine conditions).
    g.bench_function("level1_to_4_per_record_scalar", |b| {
        b.iter_batched(
            || {
                (
                    SequenceHasher::new(vec![HashPart::shingles(0, 7)], test_levels()),
                    vec![RecordHashState::default(); dataset.len()],
                    Stats::default(),
                )
            },
            |(hasher, mut states, mut stats)| {
                for i in 0..dataset.len() as u32 {
                    hasher.advance_scalar(
                        dataset.record(i),
                        &mut states[i as usize],
                        4,
                        &mut stats,
                    );
                }
                black_box(stats.hash_evals)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_transitive_and_pairwise(c: &mut Criterion) {
    let mut g = c.benchmark_group("functions");
    g.sample_size(20);
    let dataset = shingle_dataset(500, 120, 13);
    let ids: Vec<u32> = (0..500).collect();
    g.bench_function("transitive_H1_500rec", |b| {
        b.iter_batched(
            || {
                (
                    SequenceHasher::new(vec![HashPart::shingles(0, 7)], test_levels()),
                    vec![RecordHashState::default(); dataset.len()],
                    Stats::default(),
                )
            },
            |(hasher, mut states, mut stats)| {
                black_box(apply_transitive(
                    &hasher,
                    &mut states,
                    &dataset,
                    &ids,
                    1,
                    &mut stats,
                ))
            },
            BatchSize::SmallInput,
        )
    });
    let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.4);
    let small: Vec<u32> = (0..120).collect();
    g.bench_function("pairwise_P_120rec", |b| {
        b.iter(|| {
            let mut stats = Stats::default();
            black_box(apply_pairwise(&dataset, &rule, &small, 1, &mut stats))
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterMethod};
    use adalsh_core::baselines::LshBlocking;
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    let dataset = adalsh_datagen::spotsigs::generate(&adalsh_datagen::SpotSigsConfig {
        num_entities: 60,
        num_records: 400,
        ..adalsh_datagen::SpotSigsConfig::default()
    });
    let rule = adalsh_datagen::spotsigs::match_rule(0.4);
    g.bench_function("adalsh_400rec_k5", |b| {
        b.iter(|| {
            let mut engine =
                AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
            black_box(engine.run(&dataset, 5).clusters.len())
        })
    });
    g.bench_function("lsh640_400rec_k5", |b| {
        b.iter(|| {
            let mut m = LshBlocking::new(rule.clone(), 640);
            black_box(m.filter(&dataset, 5).clusters.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_forest,
    bench_bins,
    bench_families,
    bench_minhash_batch,
    bench_hyperplane_batch,
    bench_distance_kernels,
    bench_incremental_advance,
    bench_transitive_and_pairwise,
    bench_end_to_end,
);
criterion_main!(benches);
