//! Shared plumbing for the one-shot baseline recorders in `src/bin/`.
//!
//! Every `BENCH_*.json` baseline embeds provenance in its `_meta` object
//! — the git revision the numbers were recorded at, a UTC timestamp, and
//! the recorder's peak RSS — so a committed baseline can always be
//! traced back to the code (and memory envelope) that produced it when
//! diffing across optimization PRs.

use std::time::{SystemTime, UNIX_EPOCH};

/// The provenance entries as a JSON object fragment (no braces):
/// `"git_rev": "<rev>", "recorded_at": "<iso8601>", "peak_rss_bytes":
/// <n>`. Recorders splice this into their hand-built `_meta` objects;
/// call it after the measured work so the high-water mark covers it.
pub fn provenance_fields() -> String {
    format!(
        "\"git_rev\": \"{}\", \"recorded_at\": \"{}\", \"peak_rss_bytes\": {}",
        git_rev(),
        recorded_at(),
        peak_rss_bytes().unwrap_or(0)
    )
}

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. This is
/// a lifetime high-water mark: to attribute RSS to a phase, read it
/// after that phase and before anything larger runs.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// The short git revision of the working tree, or `"unknown"` when git
/// is unavailable (e.g. running from an unpacked source archive). A
/// dirty working tree is marked with a `-dirty` suffix so a baseline
/// recorded mid-edit is never mistaken for the committed revision's.
pub fn git_rev() -> String {
    let run = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
    };
    let Some(rev) = run(&["rev-parse", "--short", "HEAD"]).filter(|s| !s.is_empty()) else {
        return "unknown".into();
    };
    let dirty = run(&["status", "--porcelain"]).is_some_and(|s| !s.is_empty());
    if dirty {
        format!("{rev}-dirty")
    } else {
        rev
    }
}

/// The current UTC time as `YYYY-MM-DDTHH:MM:SSZ`. The workspace has no
/// date-time dependency, so the civil date is computed directly from the
/// Unix epoch (days-to-civil conversion below).
pub fn recorded_at() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    iso8601_utc(secs)
}

/// Formats a Unix timestamp (seconds) as `YYYY-MM-DDTHH:MM:SSZ`.
pub fn iso8601_utc(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let rem = unix_secs % 86_400;
    let (h, m, s) = (rem / 3600, rem % 3600 / 60, rem % 60);
    let (y, mo, d) = civil_from_days(days);
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Proleptic-Gregorian date from days since 1970-01-01 (Hinnant's
/// `civil_from_days` algorithm: 400-year eras of exactly 146097 days,
/// March-based years so the leap day falls at the end).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    let y = yoe + era * 400 + i64::from(m <= 2);
    (y, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_date_known_values() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(365), (1971, 1, 1));
        // 2000-02-29 is day 11016 (leap century year).
        assert_eq!(civil_from_days(11_016), (2000, 2, 29));
        assert_eq!(civil_from_days(11_017), (2000, 3, 1));
        // 2026-08-08 is day 20673.
        assert_eq!(civil_from_days(20_673), (2026, 8, 8));
    }

    #[test]
    fn iso8601_formatting() {
        assert_eq!(iso8601_utc(0), "1970-01-01T00:00:00Z");
        // 2021-01-01T00:00:00Z.
        assert_eq!(iso8601_utc(1_609_459_200), "2021-01-01T00:00:00Z");
        assert_eq!(iso8601_utc(1_609_459_200 + 3661), "2021-01-01T01:01:01Z");
    }

    #[test]
    fn provenance_fragment_shape() {
        let frag = provenance_fields();
        assert!(frag.starts_with("\"git_rev\": \""), "{frag}");
        assert!(frag.contains("\"recorded_at\": \""), "{frag}");
        // None of the string values may contain a quote or backslash —
        // the fragment is spliced verbatim into hand-built JSON.
        let values = frag.split('"').skip(3).step_by(4);
        for v in values {
            assert!(!v.contains('\\'), "{frag}");
        }
        let tail = frag.rsplit("\"recorded_at\": \"").next().unwrap();
        let (ts, rest) = tail.split_once('"').unwrap();
        assert_eq!(ts.len(), 20, "{ts}");
        assert!(ts.ends_with('Z'), "{ts}");
        let rss = rest
            .rsplit("\"peak_rss_bytes\": ")
            .next()
            .unwrap()
            .parse::<u64>()
            .unwrap();
        // Any live Linux process has megabytes resident.
        assert!(rss > 1 << 20, "implausible peak RSS {rss}");
    }

    #[test]
    fn peak_rss_is_plausible_and_monotone() {
        let before = peak_rss_bytes().expect("procfs available in CI");
        let ballast = vec![1u8; 64 << 20];
        std::hint::black_box(&ballast);
        let after = peak_rss_bytes().unwrap();
        drop(ballast);
        assert!(after >= before);
        assert!(after >= 64 << 20, "high-water mark missed a 64 MiB ballast");
    }
}
