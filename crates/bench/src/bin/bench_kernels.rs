//! Kernel baseline recorder: times the scalar and batched MinHash /
//! hyperplane kernels plus the DOPH one-pass kernel at batch widths
//! 16 / 128 / 1024 and writes per-kernel throughput (ops/sec, one op =
//! one hash-function evaluation / one produced slot) to
//! `BENCH_kernels.json` at the workspace root.
//!
//! Unlike the Criterion benches (`cargo bench -p adalsh-bench`), this is
//! a one-shot recorder producing a small machine-readable baseline that
//! can be committed and diffed across optimization PRs:
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_kernels
//! cargo run --release -p adalsh-bench --bin bench_kernels -- --smoke
//! ```
//!
//! `--smoke` (used by `ci.sh --bench-smoke`) measures only width 128 with
//! shortened timing windows, does not overwrite the committed baseline,
//! and **exits nonzero unless the DOPH kernel beats the classic batched
//! kernel** — the structural speedup this recorder exists to pin.

use adalsh_bench::recorder::provenance_fields;
use adalsh_lsh::{DensifiedMinHash, HyperplaneFamily, MinHashFamily};
use std::hint::black_box;
use std::time::Instant;

const WIDTHS: [usize; 3] = [16, 128, 1024];
const SET_SIZE: usize = 120;
const DIM: usize = 64;

/// Runs `f` (which performs `ops_per_iter` hash evaluations) repeatedly
/// for at least ~`window` seconds after warmup and returns ops/sec.
fn measure(ops_per_iter: usize, window: f64, mut f: impl FnMut()) -> f64 {
    for _ in 0..16 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters.is_multiple_of(16) && start.elapsed().as_secs_f64() > window {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (iters as f64 * ops_per_iter as f64) / secs
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let widths: &[usize] = if smoke { &[128] } else { &WIDTHS };
    let window = if smoke { 0.05 } else { 0.3 };

    let set: Vec<u64> = (0..SET_SIZE as u64).collect();
    let mh = MinHashFamily::new(3);
    let v: Vec<f64> = (0..DIM).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut hp = HyperplaneFamily::new(DIM, 3);
    hp.ensure_functions(*WIDTHS.iter().max().unwrap());

    let mut rows: Vec<(String, f64)> = Vec::new();
    for &width in widths {
        let idx: Vec<usize> = (0..width).collect();
        let mut out = vec![0u64; width];

        let ops = measure(width, window, || {
            for (o, &i) in out.iter_mut().zip(&idx) {
                *o = mh.hash(i, black_box(&set));
            }
            black_box(out[width - 1]);
        });
        rows.push((format!("minhash_scalar/{width}"), ops));

        let ops = measure(width, window, || {
            mh.hash_batch(&idx, black_box(&set), &mut out);
            black_box(out[width - 1]);
        });
        rows.push((format!("minhash_batch/{width}"), ops));

        // DOPH: all `width` slots in ONE pass over the set.
        let doph = DensifiedMinHash::new(3, width);
        let ops = measure(width, window, || {
            doph.hash_all(black_box(&set), &mut out);
            black_box(out[width - 1]);
        });
        rows.push((format!("minhash_doph/{width}"), ops));

        let ops = measure(width, window, || {
            for (o, &i) in out.iter_mut().zip(&idx) {
                *o = hp.hash(i, black_box(&v));
            }
            black_box(out[width - 1]);
        });
        rows.push((format!("hyperplane_scalar/{width}"), ops));

        let ops = measure(width, window, || {
            hp.hash_batch(&idx, black_box(&v), &mut out);
            black_box(out[width - 1]);
        });
        rows.push((format!("hyperplane_batch/{width}"), ops));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"_meta\": {{ \"set_size\": {SET_SIZE}, \"dim\": {DIM}, \
         \"unit\": \"hash evaluations per second\", {} }}",
        provenance_fields()
    ));
    for (name, ops) in &rows {
        json.push_str(&format!(",\n  \"{name}\": {:.0}", ops));
    }
    json.push_str("\n}\n");
    println!("{json}");

    let get = |n: &str, w: usize| {
        rows.iter()
            .find(|(name, _)| name == &format!("{n}/{w}"))
            .map(|&(_, o)| o)
            .unwrap_or(f64::NAN)
    };
    for &w in widths {
        println!(
            "width {w:>4}: minhash batched/scalar = {:.2}x, doph/batched = {:.2}x, \
             doph/scalar = {:.2}x, hyperplane batched/scalar = {:.2}x",
            get("minhash_batch", w) / get("minhash_scalar", w),
            get("minhash_doph", w) / get("minhash_batch", w),
            get("minhash_doph", w) / get("minhash_scalar", w),
            get("hyperplane_batch", w) / get("hyperplane_scalar", w),
        );
    }

    if smoke {
        // The gate ci.sh --bench-smoke relies on: DOPH's one-pass kernel
        // must out-throughput the classic batched kernel at K·L = 128.
        let (doph, classic) = (get("minhash_doph", 128), get("minhash_batch", 128));
        // NaN (a row failed to measure) must fail the gate too.
        if doph.partial_cmp(&classic) != Some(std::cmp::Ordering::Greater) {
            eprintln!("FAIL: doph {doph:.0} ops/s does not beat classic batched {classic:.0} ops/s at width 128");
            std::process::exit(1);
        }
        println!("smoke mode: doph beats classic at width 128; baseline not written");
        return;
    }
    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
