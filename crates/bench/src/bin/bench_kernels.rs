//! Kernel baseline recorder: times the scalar and batched MinHash /
//! hyperplane kernels at batch widths 16 / 128 / 1024 and writes
//! per-kernel throughput (ops/sec, one op = one hash-function
//! evaluation) to `BENCH_kernels.json` at the workspace root.
//!
//! Unlike the Criterion benches (`cargo bench -p adalsh-bench`), this is
//! a one-shot recorder producing a small machine-readable baseline that
//! can be committed and diffed across optimization PRs:
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_kernels
//! ```

use adalsh_lsh::{HyperplaneFamily, MinHashFamily};
use std::hint::black_box;
use std::time::Instant;

const WIDTHS: [usize; 3] = [16, 128, 1024];
const SET_SIZE: usize = 120;
const DIM: usize = 64;

/// Runs `f` (which performs `ops_per_iter` hash evaluations) repeatedly
/// for at least ~0.3 s after warmup and returns ops/sec.
fn measure(ops_per_iter: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..16 {
        f();
    }
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters.is_multiple_of(16) && start.elapsed().as_secs_f64() > 0.3 {
            break;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (iters as f64 * ops_per_iter as f64) / secs
}

fn main() {
    let set: Vec<u64> = (0..SET_SIZE as u64).collect();
    let mh = MinHashFamily::new(3);
    let v: Vec<f64> = (0..DIM).map(|i| (i as f64 * 0.37).sin()).collect();
    let mut hp = HyperplaneFamily::new(DIM, 3);
    hp.ensure_functions(*WIDTHS.iter().max().unwrap());

    let mut rows: Vec<(String, f64)> = Vec::new();
    for &width in &WIDTHS {
        let idx: Vec<usize> = (0..width).collect();
        let mut out = vec![0u64; width];

        let ops = measure(width, || {
            for (o, &i) in out.iter_mut().zip(&idx) {
                *o = mh.hash(i, black_box(&set));
            }
            black_box(out[width - 1]);
        });
        rows.push((format!("minhash_scalar/{width}"), ops));

        let ops = measure(width, || {
            mh.hash_batch(&idx, black_box(&set), &mut out);
            black_box(out[width - 1]);
        });
        rows.push((format!("minhash_batch/{width}"), ops));

        let ops = measure(width, || {
            for (o, &i) in out.iter_mut().zip(&idx) {
                *o = hp.hash(i, black_box(&v));
            }
            black_box(out[width - 1]);
        });
        rows.push((format!("hyperplane_scalar/{width}"), ops));

        let ops = measure(width, || {
            hp.hash_batch(&idx, black_box(&v), &mut out);
            black_box(out[width - 1]);
        });
        rows.push((format!("hyperplane_batch/{width}"), ops));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"_meta\": {{ \"set_size\": {SET_SIZE}, \"dim\": {DIM}, \"unit\": \"hash evaluations per second\" }}"
    ));
    for (name, ops) in &rows {
        json.push_str(&format!(",\n  \"{name}\": {:.0}", ops));
    }
    json.push_str("\n}\n");

    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("{json}");
    for w in WIDTHS {
        let get = |n: &str| {
            rows.iter()
                .find(|(name, _)| name == &format!("{n}/{w}"))
                .map(|&(_, o)| o)
                .unwrap_or(f64::NAN)
        };
        println!(
            "width {w:>4}: minhash batched/scalar = {:.2}x, hyperplane batched/scalar = {:.2}x",
            get("minhash_batch") / get("minhash_scalar"),
            get("hyperplane_batch") / get("hyperplane_scalar"),
        );
    }
    println!("wrote {path}");
}
