//! Reproduces Figure 16 (execution time on PopularImages).
fn main() {
    adalsh_bench::figures::fig16::run();
}
