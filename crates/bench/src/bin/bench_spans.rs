//! Span-layer overhead recorder: the ingest pipeline with tracing
//! disabled vs the same pipeline with the full span layer enabled
//! (root `ingest_batch` spans, engine-derived children, `/proc`
//! RSS/page-fault sampling, slow-op checks, ring retention).
//!
//! Both arms drive a bare [`adalsh_serve::Pipeline`] — no HTTP in the
//! way — through the same sequential batch series, measuring
//! ingest-to-visible wall per batch (`submit` then `wait_until` the
//! batch's `visible_epoch`). Each arm runs several repetitions on a
//! fresh pipeline and keeps the fastest, so the ratio compares best
//! cases instead of scheduler noise.
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_spans
//! cargo run --release -p adalsh-bench --bin bench_spans -- --smoke
//! cargo run --release -p adalsh-bench --bin bench_spans -- --smoke --out /tmp/spans.json
//! ```
//!
//! `--smoke` runs a shorter series, skips writing `BENCH_spans.json`,
//! and exits nonzero if the span layer costs more than
//! [`MAX_OVERHEAD_RATIO`] — observability that taxes the hot path
//! double digits is a regression, not a feature. `--out <path>` writes
//! the JSON to `<path>` in either mode, so CI can diff a fresh smoke
//! run against the committed baseline with `adalsh bench diff`.

use std::sync::Arc;
use std::time::Instant;

use adalsh_bench::recorder::provenance_fields;
use adalsh_core::{AdaLshConfig, OnlineAdaLsh};
use adalsh_data::{FieldDistance, FieldValue, MatchRule, Record, ShingleSet};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};
use adalsh_obs::span::DEFAULT_RING_CAP;
use adalsh_obs::{NoopSubscriber, Spans, TraceSink};
use adalsh_serve::metrics::Metrics;
use adalsh_serve::{Pipeline, PipelineConfig};

/// The span layer may not slow ingest-to-visible by more than this.
const MAX_OVERHEAD_RATIO: f64 = 1.15;

fn rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.6)
}

fn resolver(records: usize, entities: usize) -> OnlineAdaLsh {
    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records: records,
        num_entities: entities,
        seed: 42,
        ..SpotSigsConfig::default()
    });
    OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule())).expect("design")
}

/// A fresh shingle record in the spotsigs shape (entity core plus a
/// little noise), so ingested batches join existing clusters.
fn fresh_record(i: usize, entities: usize) -> Record {
    let entity = (i % entities) as u64;
    let mut shingles: Vec<u64> = (0..12).map(|s| entity * 10_000 + s).collect();
    shingles.push(entity * 10_000 + 100 + (i as u64 % 7));
    shingles.push(entity * 10_000 + 200 + (i as u64 % 5));
    Record::single(FieldValue::Shingles(ShingleSet::new(shingles)))
}

/// Drives one pipeline through `batches` sequential ingest passes and
/// returns the summed ingest-to-visible wall in seconds. Each pass is
/// submit → wait for that batch's `visible_epoch`, so every pass pays
/// the full queue_wait / coalesce / resolve / publish path.
fn drive(records: usize, entities: usize, batches: usize, per_batch: usize, spans_on: bool) -> f64 {
    let mut engine = resolver(records, entities);
    let spans = if spans_on {
        engine.set_trace(TraceSink::new(Arc::new(NoopSubscriber)));
        Arc::new(Spans::new(DEFAULT_RING_CAP, 0))
    } else {
        Arc::new(Spans::disabled())
    };
    let pipeline = Pipeline::start(
        engine,
        rule(),
        None,
        PipelineConfig::default(),
        Metrics::new().pipeline(),
        spans,
    );
    let started = Instant::now();
    for b in 0..batches {
        let batch: Vec<Record> = (0..per_batch)
            .map(|r| fresh_record(records + b * per_batch + r, entities))
            .collect();
        let accepted = pipeline.submit(batch).expect("submit batch");
        assert!(
            pipeline.wait_until(accepted.visible_epoch, 0),
            "batch {b} never became visible"
        );
    }
    started.elapsed().as_secs_f64()
}

/// Best-of-`reps` wall for one arm, each repetition on a fresh pipeline.
fn best_of(
    reps: usize,
    records: usize,
    entities: usize,
    batches: usize,
    per_batch: usize,
    spans_on: bool,
) -> f64 {
    (0..reps)
        .map(|_| drive(records, entities, batches, per_batch, spans_on))
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args.get(i + 1).expect("--out needs a path").clone());

    let (records, entities) = if smoke { (200, 30) } else { (400, 50) };
    let (batches, per_batch) = if smoke { (16, 25) } else { (40, 25) };
    let reps = if smoke { 4 } else { 6 };

    // Warm both code paths once (page cache, lazy init) before timing.
    let _ = drive(records, entities, 2, per_batch, false);
    let _ = drive(records, entities, 2, per_batch, true);

    let disabled = best_of(reps, records, entities, batches, per_batch, false);
    let enabled = best_of(reps, records, entities, batches, per_batch, true);
    let ratio = enabled / disabled;
    let per_batch_micros = |wall: f64| wall / batches as f64 * 1e6;

    println!("span overhead ({records} boot records, {batches} x {per_batch} ingest):");
    println!(
        "  tracing disabled  {disabled:>9.4}s total   {:>9.1}us/batch",
        per_batch_micros(disabled)
    );
    println!(
        "  spans enabled     {enabled:>9.4}s total   {:>9.1}us/batch",
        per_batch_micros(enabled)
    );
    println!("  overhead ratio    {ratio:>9.3}x   (gate: {MAX_OVERHEAD_RATIO}x)");

    let json = format!(
        "{{\n  \"_meta\": {{ \"records\": {records}, \"entities\": {entities}, \
         \"batches\": {batches}, \"per_batch\": {per_batch}, \"reps\": {reps}, \
         \"unit\": \"best-of-{reps} summed ingest-to-visible wall, seconds\", {} }},\n  \
         \"disabled\": {{ \"ingest_to_visible_wall_seconds\": {disabled:.6}, \
         \"per_batch_micros\": {:.1} }},\n  \
         \"enabled\": {{ \"ingest_to_visible_wall_seconds\": {enabled:.6}, \
         \"per_batch_micros\": {:.1} }},\n  \
         \"span_overhead_ratio\": {ratio:.4}\n}}\n",
        provenance_fields(),
        per_batch_micros(disabled),
        per_batch_micros(enabled),
    );
    if let Some(path) = &out_path {
        std::fs::write(path, &json).expect("write --out");
        println!("wrote {path}");
    }

    if smoke {
        if ratio > MAX_OVERHEAD_RATIO {
            eprintln!(
                "FAIL: span layer costs {ratio:.3}x (> {MAX_OVERHEAD_RATIO}x) — \
                 tracing must stay cheap enough to leave on"
            );
            std::process::exit(1);
        }
        println!("smoke mode: baseline not written");
        return;
    }

    let path = "BENCH_spans.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
