//! Selection-strategy ablation (Theorem 1 empirically).
fn main() {
    adalsh_bench::figures::ablations::run_largest_first();
}
