//! Reproduces Figure 22 (budget-selection modes).
fn main() {
    adalsh_bench::figures::fig22::run();
}
