//! Reproduces Figure 17 (F1 Gold on PopularImages).
fn main() {
    adalsh_bench::figures::fig17::run();
}
