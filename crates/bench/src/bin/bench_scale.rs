//! Scale-tier baseline recorder: streams the seeded Zipf scale
//! generator into a store file at 10^4 / 10^5 / 10^6 records, then runs
//! the adaLSH filter directly off the memory mapping, and writes per
//! scale: ingest throughput (records/sec), store file size, filter
//! wall-clock, and the peak RSS of each phase (`VmHWM` from
//! `/proc/self/status`, reset between phases via
//! `/proc/self/clear_refs`) to `BENCH_scale.json` at the workspace
//! root. At every scale the store also gets materialized into an
//! in-RAM [`Dataset`] so the baseline records how much memory the
//! out-of-core path avoids: streaming ingest must peak far below the
//! materialized footprint, and the mapped filter peaks at the engine's
//! own O(n) LSH index (which any backing needs) instead of index +
//! dataset — its RSS also counts the mapped file pages, which are
//! clean and evictable.
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_scale
//! cargo run --release -p adalsh-bench --bin bench_scale -- --smoke
//! ```
//!
//! `--smoke` (used by `ci.sh --bench-smoke`) runs the 10^4 scale only,
//! does not overwrite the committed baseline, and **exits nonzero
//! unless (a) the mapped-store filter output is bit-identical (clusters
//! and Stats) to the materialized in-RAM run and (b) ingest peaked
//! below the materialized footprint** — the two structural properties
//! this recorder exists to pin.

use std::time::Instant;

use adalsh_bench::recorder::{peak_rss_bytes, provenance_fields};
use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterOutput};
use adalsh_core::MinhashScheme;
use adalsh_data::{Dataset, RecordStore};
use adalsh_datagen::{scale_match_rule, ScaleConfig, ScaleGenerator};
use adalsh_store::{StoreBuilder, StoreView};

const K: usize = 10;
const SEED: u64 = 0x5CA1E;

/// Resets the kernel's peak-RSS high-water mark so the next
/// [`peak_rss_bytes`] read is attributable to the phase that follows.
/// Best-effort: where `/proc/self/clear_refs` is not writable the marks
/// stay monotone across phases (still an upper bound per phase).
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

struct ScaleRow {
    records: usize,
    entities: u64,
    ingest_secs: f64,
    ingest_rps: f64,
    file_bytes: u64,
    ingest_peak_rss: u64,
    filter_secs: f64,
    filter_peak_rss: u64,
    output_records: usize,
    materialized_peak_rss: u64,
}

fn filter_config() -> AdaLshConfig {
    let mut config = AdaLshConfig::new(scale_match_rule());
    // DOPH is the scale-tier kernel: all K·L slots in one pass per
    // record instead of one set traversal per slot.
    config.minhash_scheme = MinhashScheme::Doph;
    config
}

fn run_filter(store: &dyn RecordStore) -> FilterOutput {
    let mut ada = AdaLsh::for_dataset(store, filter_config()).expect("sequence design");
    ada.run(store, K)
}

/// Ingests `records` into a store file, filters off the mapping, and
/// materializes the store in RAM (for the memory comparison — and, in
/// smoke mode, the bit-identity gate). Returns the row plus both filter
/// outputs.
fn run_scale(records: usize, check_identity: bool) -> (ScaleRow, bool) {
    let path = std::env::temp_dir().join(format!(
        "adalsh_bench_scale_{records}_{}.store",
        std::process::id()
    ));

    // Phase 1: streaming ingest (constant memory regardless of scale).
    reset_peak_rss();
    let generator = ScaleGenerator::new(ScaleConfig {
        records,
        seed: SEED,
        ..ScaleConfig::default()
    });
    let schema = generator.schema();
    let mut builder = StoreBuilder::create(&path, schema).expect("create store");
    let start = Instant::now();
    let mut entities = 0u64;
    let mut last_entity = None;
    for (record, entity) in generator {
        if last_entity != Some(entity) {
            entities += 1;
            last_entity = Some(entity);
        }
        builder.push(&record, entity).expect("push record");
    }
    builder.finish().expect("finalize store");
    let ingest_secs = start.elapsed().as_secs_f64();
    let ingest_peak_rss = peak_rss_bytes().unwrap_or(0);
    let file_bytes = std::fs::metadata(&path).expect("stat store").len();

    // Phase 2: filter straight off the memory mapping.
    reset_peak_rss();
    let view = StoreView::open(&path).expect("open store");
    let start = Instant::now();
    let mapped_out = run_filter(&view);
    let filter_secs = start.elapsed().as_secs_f64();
    let filter_peak_rss = peak_rss_bytes().unwrap_or(0);

    // Phase 3: materialize the whole store in RAM — the footprint the
    // mapped path avoids. The filter re-run doubles as the bit-identity
    // gate in smoke mode.
    reset_peak_rss();
    let dataset = Dataset::new(
        view.schema().clone(),
        (0..view.len() as u32)
            .map(|id| view.materialize(id))
            .collect(),
        (0..view.len() as u32)
            .map(|id| view.entity_of(id))
            .collect(),
    );
    let materialized_peak_rss = peak_rss_bytes().unwrap_or(0);
    let identical = if check_identity {
        let ram_out = run_filter(&dataset);
        ram_out.clusters == mapped_out.clusters && ram_out.stats == mapped_out.stats
    } else {
        true
    };
    drop(dataset);
    drop(view);
    std::fs::remove_file(&path).ok();

    let row = ScaleRow {
        records,
        entities,
        ingest_secs,
        ingest_rps: records as f64 / ingest_secs.max(1e-9),
        file_bytes,
        ingest_peak_rss,
        filter_secs,
        filter_peak_rss,
        output_records: mapped_out.records().len(),
        materialized_peak_rss,
    };
    (row, identical)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let scales: &[usize] = if smoke {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };

    let mut rows = Vec::new();
    let mut all_identical = true;
    for &records in scales {
        // Bit-identity is cheap to check at the two smaller scales; at
        // 10^6 the RAM re-run would double a multi-minute wall time for
        // a property already pinned below (and by the differential
        // tests), so there the row records the materialized RSS only.
        let check_identity = records <= 100_000;
        let (row, identical) = run_scale(records, check_identity);
        all_identical &= identical;
        println!(
            "scale {:>9}: ingest {:.2}s ({:.0} rec/s, peak {} MiB), file {} MiB, \
             filter {:.2}s (peak {} MiB, {} output records), materialized peak {} MiB",
            row.records,
            row.ingest_secs,
            row.ingest_rps,
            row.ingest_peak_rss >> 20,
            row.file_bytes >> 20,
            row.filter_secs,
            row.filter_peak_rss >> 20,
            row.output_records,
            row.materialized_peak_rss >> 20,
        );
        rows.push(row);
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"_meta\": {{ \"k\": {K}, \"seed\": {SEED}, \"minhash_scheme\": \"doph\", \
         \"rss_source\": \"VmHWM per phase (clear_refs reset)\", {} }}",
        provenance_fields()
    ));
    for r in &rows {
        json.push_str(&format!(
            ",\n  \"scale_{}\": {{ \"records\": {}, \"entities\": {}, \
             \"ingest_secs\": {:.3}, \"ingest_records_per_sec\": {:.0}, \
             \"file_bytes\": {}, \"ingest_peak_rss_bytes\": {}, \
             \"filter_secs\": {:.3}, \"filter_peak_rss_bytes\": {}, \
             \"output_records\": {}, \"materialized_peak_rss_bytes\": {} }}",
            r.records,
            r.records,
            r.entities,
            r.ingest_secs,
            r.ingest_rps,
            r.file_bytes,
            r.ingest_peak_rss,
            r.filter_secs,
            r.filter_peak_rss,
            r.output_records,
            r.materialized_peak_rss,
        ));
    }
    json.push_str("\n}\n");
    println!("{json}");

    if smoke {
        let r = &rows[0];
        if !all_identical {
            eprintln!("FAIL: mapped-store filter output diverged from the in-RAM run");
            std::process::exit(1);
        }
        // The streaming builder must not have buffered the dataset:
        // its peak must stay below what materializing the same records
        // costs (both phases share the same process baseline, so the
        // comparison cancels it out).
        if r.ingest_peak_rss >= r.materialized_peak_rss {
            eprintln!(
                "FAIL: streaming ingest peaked at {} bytes, not below the {} bytes it takes \
                 to materialize the same store in RAM",
                r.ingest_peak_rss, r.materialized_peak_rss
            );
            std::process::exit(1);
        }
        println!("smoke mode: store path bit-identical and ingest stays out-of-core; baseline not written");
        return;
    }

    // At 10^6 the point of the store: ingest never holds the dataset,
    // and the mapped filter pays only for the LSH index (plus evictable
    // file pages) — the in-RAM path would hold the materialized dataset
    // *on top of* that same index.
    if let Some(r) = rows.iter().find(|r| r.records == 1_000_000) {
        let materialized = r.materialized_peak_rss.max(1) as f64;
        println!(
            "10^6 ingest peak RSS = {:.2}x the materialized footprint; \
             mapped filter peak = {:.2}x (index-dominated, incl. {} MiB of \
             evictable mapped file pages; the RAM path adds the dataset on top)",
            r.ingest_peak_rss as f64 / materialized,
            r.filter_peak_rss as f64 / materialized,
            r.file_bytes >> 20,
        );
    }
    let path = "BENCH_scale.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
