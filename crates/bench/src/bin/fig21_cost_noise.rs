//! Reproduces Figure 21 (cost-model noise sensitivity).
fn main() {
    adalsh_bench::figures::fig21::run();
}
