//! Extended smoke test: all three dataset families plus an 8x scale run.

use adalsh_bench::harness::{evaluate, f3, pair_cost, secs, Table};
use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterMethod};
use adalsh_core::baselines::{LshBlocking, Pairs};
use adalsh_data::{Dataset, MatchRule};
use adalsh_datagen::popimages::{self, PopImagesConfig};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};
use adalsh_datagen::{cora, upsample, CoraConfig};

fn bench(name: &str, dataset: &Dataset, rule: &MatchRule, k: usize, lsh_x: u64) {
    println!(
        "\n=== {name}: {} records, {} entities, top sizes {:?}",
        dataset.len(),
        dataset.num_entities(),
        &dataset.entity_sizes()[..5.min(dataset.num_entities())]
    );
    let pc = pair_cost(dataset, rule, 1000, 1);
    let mut table = Table::new(&[
        "method", "time", "hashes", "pairs", "|O|", "F1", "mAP", "speedup",
    ]);
    let mut run = |m: &mut dyn FilterMethod| {
        let (e, _) = evaluate(m, dataset, rule, k, k, pc);
        table.row(&[
            e.method.clone(),
            secs(e.wall_secs),
            e.hash_evals.to_string(),
            e.pair_comparisons.to_string(),
            e.output_records.to_string(),
            f3(e.f1_gold),
            f3(e.map),
            f3(e.speedup),
        ]);
    };
    let mut ada = AdaLsh::for_dataset(dataset, AdaLshConfig::new(rule.clone())).unwrap();
    run(&mut ada);
    run(&mut LshBlocking::new(rule.clone(), lsh_x));
    run(&mut Pairs::new(rule.clone()));
    table.print();
}

fn main() {
    let (cora_ds, _) = cora::generate(&CoraConfig::default());
    bench("Cora", &cora_ds, &cora::match_rule(), 10, 1280);

    let spot = spotsigs::generate(&SpotSigsConfig::default());
    bench("SpotSigs", &spot, &spotsigs::match_rule(0.4), 10, 1280);

    let spot8 = upsample(&spot, spot.len() * 8, 88);
    bench("SpotSigs8x", &spot8, &spotsigs::match_rule(0.4), 10, 1280);

    let pop = popimages::generate(&PopImagesConfig::default());
    bench(
        "PopularImages(1.05)",
        &pop,
        &popimages::match_rule(3.0),
        10,
        2560,
    );
}
