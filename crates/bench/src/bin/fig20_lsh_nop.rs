//! Reproduces Figure 20 (LSH blocking variants with/without P).
fn main() {
    adalsh_bench::figures::fig20::run();
}
