//! Reproduces Figure 8 (execution time on Cora).
fn main() {
    adalsh_bench::figures::fig08_09::run_fig08();
}
