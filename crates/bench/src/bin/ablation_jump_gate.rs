//! Jump-ahead-gate ablation (Algorithm 1, Line 5).
fn main() {
    adalsh_bench::figures::ablations::run_jump_gate();
}
