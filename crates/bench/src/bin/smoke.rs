//! Quick end-to-end sanity run: adaLSH vs LSH1280 vs Pairs on the
//! SpotSigs-like dataset at its paper-scale size. Not a paper figure —
//! a development smoke test for the harness.

use adalsh_bench::harness::{evaluate, f3, pair_cost, secs, Table};
use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterMethod};
use adalsh_core::baselines::{LshBlocking, Pairs};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};

fn main() {
    let dataset = spotsigs::generate(&SpotSigsConfig::default());
    let rule = spotsigs::match_rule(0.4);
    let k = 10;
    println!(
        "SpotSigs-like: {} records, {} entities, top sizes {:?}",
        dataset.len(),
        dataset.num_entities(),
        &dataset.entity_sizes()[..5.min(dataset.num_entities())]
    );
    let pc = pair_cost(&dataset, &rule, 1000, 1);

    let mut table = Table::new(&[
        "method", "time", "hashes", "pairs", "|O|", "P", "R", "F1", "speedup",
    ]);
    let mut run = |m: &mut dyn FilterMethod| {
        let (e, out) = evaluate(m, &dataset, &rule, k, k, pc);
        table.row(&[
            e.method.clone(),
            secs(e.wall_secs),
            e.hash_evals.to_string(),
            e.pair_comparisons.to_string(),
            e.output_records.to_string(),
            f3(e.precision_gold),
            f3(e.recall_gold),
            f3(e.f1_gold),
            f3(e.speedup),
        ]);
        let _ = out;
    };

    let mut ada = AdaLsh::for_dataset(&dataset, AdaLshConfig::new(rule.clone())).unwrap();
    eprintln!(
        "adaLSH sequence: {:?}",
        ada.levels().iter().map(|l| l.budget()).collect::<Vec<_>>()
    );
    run(&mut ada);
    run(&mut LshBlocking::new(rule.clone(), 1280));
    run(&mut Pairs::new(rule.clone()));
    table.print();
}
