//! Classic-vs-DOPH end-to-end baseline recorder: runs the full adaLSH
//! top-k filter under both MinHash evaluation schemes on the cora-like
//! and spotsigs-like corpora, and writes wall-clock seconds per run,
//! top-k F1 against the gold entities, and hash-eval counts to
//! `BENCH_doph.json` at the workspace root.
//!
//! This pins the two claims the `--minhash-scheme doph` flag makes: the
//! filter gets *faster* (speedup rows) and stays *as accurate* (the two
//! schemes' F1 columns, which must agree to within a few points — they
//! are different unbiased estimators of the same Jaccard similarities).
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_doph
//! cargo run --release -p adalsh-bench --bin bench_doph -- --smoke
//! ```
//!
//! `--smoke` runs one small corpus and does not overwrite the baseline.

use std::hint::black_box;
use std::time::Instant;

use adalsh_bench::harness::datasets;
use adalsh_bench::recorder::provenance_fields;
use adalsh_core::algorithm::default_threads;
use adalsh_core::metrics::set_metrics;
use adalsh_core::{AdaLsh, AdaLshConfig, MinhashScheme};
use adalsh_data::{Dataset, MatchRule};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};

/// Times one run, repeated after one warmup until ≥ 2 iterations and
/// ≥ 0.4 s have elapsed. Returns seconds per run.
fn measure(mut f: impl FnMut()) -> f64 {
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 2 && start.elapsed().as_secs_f64() > 0.4 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

struct Row {
    corpus: &'static str,
    scheme: MinhashScheme,
    seconds: f64,
    f1: f64,
    hash_evals: u64,
}

fn run_scheme(
    corpus: &'static str,
    dataset: &Dataset,
    rule: &MatchRule,
    scheme: MinhashScheme,
    k: usize,
    threads: usize,
) -> Row {
    let engine = || {
        let mut config = AdaLshConfig::new(rule.clone());
        config.threads = threads;
        config.minhash_scheme = scheme;
        AdaLsh::for_dataset(dataset, config).expect("design")
    };
    let out = engine().run(dataset, k);
    let sm = set_metrics(&out.records(), &dataset.gold_records(k));
    let seconds = measure(|| {
        black_box(engine().run(dataset, k));
    });
    Row {
        corpus,
        scheme,
        seconds,
        f1: sm.f1,
        hash_evals: out.stats.hash_evals,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = 10;
    let threads = default_threads();

    let corpora: Vec<(&'static str, Dataset, MatchRule)> = if smoke {
        let d = spotsigs::generate(&SpotSigsConfig {
            num_records: 300,
            num_entities: 40,
            seed: 42,
            ..SpotSigsConfig::default()
        });
        vec![("spotsigs-small", d, spotsigs::match_rule(0.4))]
    } else {
        let (cora, cora_rule) = datasets::cora(1);
        let (spot, spot_rule) = datasets::spotsigs(1, 0.4);
        vec![("cora", cora, cora_rule), ("spotsigs", spot, spot_rule)]
    };

    let mut rows: Vec<Row> = Vec::new();
    for (corpus, dataset, rule) in &corpora {
        for scheme in [MinhashScheme::Classic, MinhashScheme::Doph] {
            let row = run_scheme(corpus, dataset, rule, scheme, k, threads);
            println!(
                "{corpus:>15}/{scheme:<7} {:>9.5}s  f1 {:.3}  hash_evals {}",
                row.seconds, row.f1, row.hash_evals
            );
            rows.push(row);
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"_meta\": {{ \"k\": {k}, \"threads\": {threads}, \
         \"unit\": \"seconds per filter run\", {} }}",
        provenance_fields()
    ));
    for row in &rows {
        json.push_str(&format!(
            ",\n  \"{corpus}/{scheme}/seconds\": {:.6},\n  \"{corpus}/{scheme}/f1\": {:.4},\n  \
             \"{corpus}/{scheme}/hash_evals\": {}",
            row.seconds,
            row.f1,
            row.hash_evals,
            corpus = row.corpus,
            scheme = row.scheme,
        ));
    }
    for pair in rows.chunks(2) {
        let [classic, doph] = pair else { continue };
        json.push_str(&format!(
            ",\n  \"{}/speedup\": {:.3}",
            classic.corpus,
            classic.seconds / doph.seconds
        ));
        println!(
            "{:>15}: doph speedup {:.2}x (f1 {:.3} -> {:.3})",
            classic.corpus,
            classic.seconds / doph.seconds,
            classic.f1,
            doph.f1
        );
    }
    json.push_str("\n}\n");

    if smoke {
        println!("smoke mode: baseline not written");
        return;
    }
    let path = "BENCH_doph.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
