//! Reproduces Figure 14 (speedup and mAP with recovery).
fn main() {
    adalsh_bench::figures::fig14::run();
}
