//! `P` baseline recorder: times the scalar oracle against the
//! block-wavefront path at cluster sizes 256 / 1024 / 4096 in the
//! match-dense and match-sparse regimes and writes wall-clock seconds
//! per `P` application (plus the speedup ratios) to
//! `BENCH_pairwise.json` at the workspace root.
//!
//! Like `bench_kernels`, this is a one-shot recorder producing a small
//! machine-readable baseline that can be committed and diffed across
//! optimization PRs:
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_pairwise
//! cargo run --release -p adalsh-bench --bin bench_pairwise -- --smoke
//! ```
//!
//! `--smoke` (used by `ci.sh --bench-smoke`) runs a single tiny size so
//! CI exercises the recorder end-to-end in under a second; it does not
//! overwrite the committed baseline.

use adalsh_bench::pairwise_bench::{match_dense, match_sparse};
use adalsh_bench::recorder::provenance_fields;
use adalsh_core::algorithm::default_threads;
use adalsh_core::pairwise::{apply_pairwise, apply_pairwise_scalar};
use adalsh_core::stats::Stats;
use adalsh_data::{Dataset, MatchRule};
use std::hint::black_box;
use std::time::Instant;

/// Times one full `P` application, repeated after one warmup run until
/// ≥ 2 iterations and ≥ 0.4 s have elapsed. Returns seconds per run.
fn measure(mut f: impl FnMut()) -> f64 {
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 2 && start.elapsed().as_secs_f64() > 0.4 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn time_pair(dataset: &Dataset, rule: &MatchRule, threads: usize) -> (f64, f64) {
    let ids: Vec<u32> = (0..dataset.len() as u32).collect();
    let scalar = measure(|| {
        let mut stats = Stats::default();
        black_box(apply_pairwise_scalar(
            dataset,
            rule,
            black_box(&ids),
            &mut stats,
        ));
    });
    let wavefront = measure(|| {
        let mut stats = Stats::default();
        black_box(apply_pairwise(
            dataset,
            rule,
            black_box(&ids),
            threads,
            &mut stats,
        ));
    });
    (scalar, wavefront)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[64] } else { &[256, 1024, 4096] };
    let threads = default_threads();

    let mut rows: Vec<(String, f64, f64)> = Vec::new();
    for &n in sizes {
        for (regime, (dataset, rule)) in [("dense", match_dense(n)), ("sparse", match_sparse(n))] {
            let (scalar, wavefront) = time_pair(&dataset, &rule, threads);
            println!(
                "{regime:>6}/{n:<5} scalar {scalar:>9.5}s  wavefront {wavefront:>9.5}s  speedup {:>5.2}x",
                scalar / wavefront
            );
            rows.push((format!("{regime}/{n}"), scalar, wavefront));
        }
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"_meta\": {{ \"threads\": {threads}, \"unit\": \"seconds per P application\", {} }}",
        provenance_fields()
    ));
    for (name, scalar, wavefront) in &rows {
        json.push_str(&format!(
            ",\n  \"scalar/{name}\": {scalar:.6},\n  \"wavefront/{name}\": {wavefront:.6},\n  \"speedup/{name}\": {:.3}",
            scalar / wavefront
        ));
    }
    json.push_str("\n}\n");

    if smoke {
        println!("smoke mode: baseline not written");
        return;
    }
    let path = "BENCH_pairwise.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
