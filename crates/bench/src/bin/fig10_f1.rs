//! Reproduces Figure 10 (F1 Gold vs k).
fn main() {
    adalsh_bench::figures::fig10::run();
}
