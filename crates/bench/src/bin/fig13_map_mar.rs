//! Reproduces Figure 13 (mAP / mAR vs khat).
fn main() {
    adalsh_bench::figures::fig13::run();
}
