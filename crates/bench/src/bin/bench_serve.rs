//! Serving-layer load driver: old single-mutex design vs the pipelined
//! epoch-publishing server, measured over real TCP.
//!
//! Two servers answer the same corpus on ephemeral ports:
//!
//! * **mutex** — the pre-pipeline architecture, rebuilt here as the
//!   baseline: every `/topk` locks a `Mutex<OnlineAdaLsh>` and re-runs
//!   the query; every `/ingest` applies its batch under the same lock.
//! * **pipeline** — the real [`adalsh_serve::Server`]: reads clone the
//!   epoch-published snapshot, writes enqueue and a resolver thread
//!   drains adaptively.
//!
//! For each server the driver measures read QPS and latency percentiles
//! at 1/4/16 concurrent clients, plus applied ingest throughput at one
//! client (post a fixed batch series, then wait until every record is
//! visible). Results land in `BENCH_serve.json` with the standard
//! `_meta` git_rev provenance.
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_serve
//! cargo run --release -p adalsh-bench --bin bench_serve -- --smoke
//! ```
//!
//! `--smoke` runs shorter bursts, skips writing the baseline, and exits
//! nonzero if the pipelined server's 16-client read QPS drops below its
//! 1-client QPS (the scaling property CI gates on).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use adalsh_bench::recorder::provenance_fields;
use adalsh_core::{AdaLshConfig, OnlineAdaLsh};
use adalsh_data::{FieldDistance, MatchRule, Record};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};
use adalsh_serve::http::{read_request, write_response, Request, Response};
use adalsh_serve::{PipelineConfig, Server, ServerConfig, Service};
use serde::{Deserialize, Serialize, Value};

const K: usize = 10;
const WORKERS: usize = 16;

fn rule() -> MatchRule {
    MatchRule::threshold(0, FieldDistance::Jaccard, 0.6)
}

fn resolver(records: usize, entities: usize) -> OnlineAdaLsh {
    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records: records,
        num_entities: entities,
        seed: 42,
        ..SpotSigsConfig::default()
    });
    OnlineAdaLsh::new(&dataset, AdaLshConfig::new(rule())).expect("design")
}

/// The old architecture, kept alive as the measurement baseline: one
/// mutex in front of the engine, every request takes it. Workers share
/// the listener directly (`accept` is thread-safe); the server lives
/// until process exit — a bench run needs no graceful shutdown.
fn start_mutex_baseline(resolver: OnlineAdaLsh) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind baseline");
    let addr = listener.local_addr().expect("local addr");
    let shared = Arc::new(Mutex::new(resolver));
    let listener = Arc::new(listener);
    for _ in 0..WORKERS {
        let listener = Arc::clone(&listener);
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let response = match read_request(&mut stream, 8 * 1024 * 1024) {
                Ok(request) => handle_mutex(&shared, &request),
                Err(_) => Response::error(400, "bad request"),
            };
            let _ = write_response(&mut stream, &response);
        });
    }
    addr
}

fn handle_mutex(shared: &Mutex<OnlineAdaLsh>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/topk") => {
            let k: usize = request
                .query_param("k")
                .and_then(|raw| raw.parse().ok())
                .unwrap_or(K);
            let output = {
                let mut resolver = shared.lock().expect("baseline lock");
                resolver.query(k)
            };
            let clusters = Value::Map(vec![("clusters".to_string(), output.clusters.to_value())]);
            Response::json(200, serde_json::to_string(&clusters).expect("serialize"))
        }
        ("POST", "/ingest") => {
            let parsed: Value = match request
                .body_utf8()
                .map_err(|e| e.to_string())
                .and_then(|text| serde_json::from_str(text).map_err(|e| e.to_string()))
            {
                Ok(v) => v,
                Err(e) => return Response::error(400, &e),
            };
            let records = match parsed
                .get("records")
                .ok_or_else(|| "missing records".to_string())
                .and_then(|v| Vec::<Record>::from_value(v).map_err(|e| e.to_string()))
            {
                Ok(r) => r,
                Err(e) => return Response::error(400, &e),
            };
            let applied = {
                let mut resolver = shared.lock().expect("baseline lock");
                resolver.extend(records)
            };
            match applied {
                Ok(ids) => Response::json(200, format!("{{\"count\":{}}}", ids.len())),
                Err(e) => Response::error(400, &e),
            }
        }
        _ => Response::error(404, "no route"),
    }
}

/// One raw HTTP exchange; panics on a non-200 so an overloaded or
/// misrouted bench run fails loudly instead of recording garbage.
fn exchange(addr: SocketAddr, raw: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("recv");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "expected 200, got: {}",
        response.lines().next().unwrap_or("<empty>")
    );
    response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default()
}

fn get_topk(addr: SocketAddr) -> String {
    exchange(
        addr,
        &format!("GET /topk?k={K} HTTP/1.1\r\nHost: b\r\n\r\n"),
    )
}

/// Read load at `clients` concurrent connections for `duration`.
/// Returns `(qps, p50_seconds, p99_seconds)`.
fn read_load(addr: SocketAddr, clients: usize, duration: Duration) -> (f64, f64, f64) {
    let stop_at = Instant::now() + duration;
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                while Instant::now() < stop_at {
                    let t = Instant::now();
                    let _ = get_topk(addr);
                    latencies.push(t.elapsed().as_secs_f64());
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<f64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client panicked"))
        .collect();
    let wall = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    assert!(!latencies.is_empty(), "no requests completed");
    let qps = latencies.len() as f64 / wall;
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    (qps, p50, p99)
}

/// Posts `batches` ingest batches of `per_batch` fresh records from one
/// client, then waits until all of them are *visible* on `/topk`.
/// Visibility costs both architectures their deferred work — the mutex
/// engine hashes lazily, so its final query pays all the resolution the
/// POSTs skipped; the pipelined server acknowledges before applying, so
/// it waits on the `min_records` barrier. Returns
/// `(accepted_records_per_sec, visible_records_per_sec)`.
fn ingest_load(
    addr: SocketAddr,
    batches: usize,
    per_batch: usize,
    base_records: usize,
    entities: usize,
    pipelined: bool,
) -> (f64, f64) {
    let started = Instant::now();
    for b in 0..batches {
        let records: Vec<Record> = (0..per_batch)
            .map(|r| {
                let i = base_records + b * per_batch + r;
                spotsigs_like_record(i, entities)
            })
            .collect();
        let value = Value::Map(vec![("records".to_string(), records.to_value())]);
        let body = serde_json::to_string(&value).expect("serialize batch");
        let _ = exchange(
            addr,
            &format!(
                "POST /ingest HTTP/1.1\r\nHost: b\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        );
    }
    let total = (batches * per_batch) as f64;
    let accepted = total / started.elapsed().as_secs_f64();
    if pipelined {
        let all = base_records + batches * per_batch;
        let _ = exchange(
            addr,
            &format!("GET /topk?k={K}&min_records={all} HTTP/1.1\r\nHost: b\r\n\r\n"),
        );
    } else {
        let _ = get_topk(addr);
    }
    let visible = total / started.elapsed().as_secs_f64();
    (accepted, visible)
}

/// A fresh shingle record loosely matching the spotsigs shape: a core
/// of entity shingles plus a couple of noise shingles, so ingested
/// records cluster with existing entities instead of exploding one
/// pairwise cluster.
fn spotsigs_like_record(i: usize, entities: usize) -> Record {
    let entity = (i % entities) as u64;
    let mut shingles: Vec<u64> = (0..12).map(|s| entity * 10_000 + s).collect();
    shingles.push(entity * 10_000 + 100 + (i as u64 % 7));
    shingles.push(entity * 10_000 + 200 + (i as u64 % 5));
    Record::single(adalsh_data::FieldValue::Shingles(
        adalsh_data::ShingleSet::new(shingles),
    ))
}

fn fmt_tier(label: &str, qps: f64, p50: f64, p99: f64) {
    println!(
        "  {label:<4} {qps:>9.0} req/s   p50 {:>8.1}us   p99 {:>8.1}us",
        p50 * 1e6,
        p99 * 1e6
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (records, entities) = if smoke { (200, 30) } else { (500, 60) };
    let duration = if smoke {
        Duration::from_millis(250)
    } else {
        Duration::from_secs(2)
    };
    let (batches, per_batch) = if smoke { (20, 5) } else { (100, 5) };
    let tiers = [1usize, 4, 16];

    // ---- mutex baseline -------------------------------------------------
    let mutex_addr = start_mutex_baseline(resolver(records, entities));
    let _ = get_topk(mutex_addr); // warm: first query pays the hashing
    let mut mutex_read = Vec::new();
    println!("mutex baseline ({records} records):");
    for &clients in &tiers {
        let (qps, p50, p99) = read_load(mutex_addr, clients, duration);
        fmt_tier(&format!("c{clients}"), qps, p50, p99);
        mutex_read.push((clients, qps, p50, p99));
    }
    let (mutex_accept, mutex_visible) =
        ingest_load(mutex_addr, batches, per_batch, records, entities, false);
    println!("  ingest(1 client) accepted {mutex_accept:>9.0} rec/s   visible {mutex_visible:>9.0} rec/s");

    // ---- pipelined server ----------------------------------------------
    let service = Arc::new(Service::with_config(
        resolver(records, entities),
        rule(),
        None,
        PipelineConfig {
            queue_cap: 256,
            ..PipelineConfig::default()
        },
    ));
    let server = Server::start(
        service,
        "127.0.0.1:0",
        ServerConfig {
            workers: WORKERS,
            ..ServerConfig::default()
        },
    )
    .expect("start pipelined server");
    let pipeline_addr = server.local_addr();
    let _ = get_topk(pipeline_addr);
    let mut pipeline_read = Vec::new();
    println!("pipelined ({records} records):");
    for &clients in &tiers {
        let (qps, p50, p99) = read_load(pipeline_addr, clients, duration);
        fmt_tier(&format!("c{clients}"), qps, p50, p99);
        pipeline_read.push((clients, qps, p50, p99));
    }
    let (pipeline_accept, pipeline_visible) =
        ingest_load(pipeline_addr, batches, per_batch, records, entities, true);
    println!("  ingest(1 client) accepted {pipeline_accept:>9.0} rec/s   visible {pipeline_visible:>9.0} rec/s");

    let speedup_c16 = pipeline_read[2].1 / mutex_read[2].1;
    println!("read speedup at 16 clients: {speedup_c16:.1}x");

    if smoke {
        // Gate: concurrency must not collapse the lock-free read path.
        // On a single-core box QPS saturates at one client already, so
        // c16 == c1 up to scheduler noise; a lock convoy would tank it
        // far below. 0.8x separates noise from collapse.
        let (c1, c16) = (pipeline_read[0].1, pipeline_read[2].1);
        if c16 < 0.8 * c1 {
            eprintln!(
                "FAIL: pipelined 16-client QPS {c16:.0} < 0.8x 1-client QPS {c1:.0} — \
                 the lock-free read path must not collapse under concurrency"
            );
            std::process::exit(1);
        }
        println!(
            "smoke mode: baseline not written (16c/1c = {:.2}x)",
            c16 / c1
        );
        server.shutdown();
        return;
    }

    let tier_json = |read: &[(usize, f64, f64, f64)]| {
        read.iter()
            .map(|(c, qps, p50, p99)| {
                format!(
                    "\"c{c}\": {{ \"qps\": {qps:.1}, \"p50_seconds\": {p50:.6}, \
                     \"p99_seconds\": {p99:.6} }}"
                )
            })
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"_meta\": {{ \"records\": {records}, \"entities\": {entities}, \"k\": {K}, \
         \"workers\": {WORKERS}, \"duration_secs\": {:.2}, \
         \"unit\": \"read QPS + latency seconds per client tier; applied ingest records/s\", {} }},\n  \
         \"mutex\": {{ \"read\": {{ {} }}, \"ingest_c1\": {{ \"accepted_records_per_sec\": \
         {mutex_accept:.1}, \"visible_records_per_sec\": {mutex_visible:.1} }} }},\n  \
         \"pipeline\": {{ \"read\": {{ {} }}, \"ingest_c1\": {{ \"accepted_records_per_sec\": \
         {pipeline_accept:.1}, \"visible_records_per_sec\": {pipeline_visible:.1} }} }},\n  \
         \"read_speedup_c16\": {speedup_c16:.2}\n}}\n",
        duration.as_secs_f64(),
        provenance_fields(),
        tier_json(&mutex_read),
        tier_json(&pipeline_read),
    );
    let path = "BENCH_serve.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
    server.shutdown();
}
