//! Reproduces Figure 11 (precision/recall vs khat).
fn main() {
    adalsh_bench::figures::fig11::run();
}
