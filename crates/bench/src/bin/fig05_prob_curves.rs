//! Reproduces Figures 5 and 7 (collision-probability curves).
fn main() {
    adalsh_bench::figures::fig05::run();
}
