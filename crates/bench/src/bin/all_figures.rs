//! Runs every figure and ablation in sequence, writing all
//! `results/*.jsonl` files. Budget: several minutes in release mode.
use std::time::Instant;

fn section(name: &str) {
    println!("\n======================================================");
    println!("== {name}");
    println!("======================================================");
}

fn main() {
    let t0 = Instant::now();
    use adalsh_bench::figures as f;
    section("Figures 5 & 7");
    f::fig05::run();
    section("Figure 8 (Cora)");
    f::fig08_09::run_fig08();
    section("Figure 9 (SpotSigs)");
    f::fig08_09::run_fig09();
    section("Figure 10 (F1 Gold)");
    f::fig10::run();
    section("Figure 11 (P/R vs khat)");
    f::fig11::run();
    section("Figure 12 (reduction & speedup)");
    f::fig12::run();
    section("Figure 13 (mAP/mAR)");
    f::fig13::run();
    section("Figure 14 (recovery)");
    f::fig14::run();
    section("Figure 15 (LSH-X ladder)");
    f::fig15::run();
    section("Figure 16 (PopularImages time)");
    f::fig16::run();
    section("Figure 17 (PopularImages F1)");
    f::fig17::run();
    section("Figure 20 (LSH nP variants)");
    f::fig20::run();
    section("Figure 21 (cost noise)");
    f::fig21::run();
    section("Figure 22 (budget modes)");
    f::fig22::run();
    section("Ablations");
    f::ablations::run_largest_first();
    f::ablations::run_jump_gate();
    println!("\nall figures done in {:?}", t0.elapsed());
}
