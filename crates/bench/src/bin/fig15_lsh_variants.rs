//! Reproduces Figure 15 (adaLSH vs the LSH-X ladder).
fn main() {
    adalsh_bench::figures::fig15::run();
}
