//! Reproduces Figure 12 (reduction % and speedup w/o recovery).
fn main() {
    adalsh_bench::figures::fig12::run();
}
