//! Reproduces Figure 9 (execution time on SpotSigs).
fn main() {
    adalsh_bench::figures::fig08_09::run_fig09();
}
