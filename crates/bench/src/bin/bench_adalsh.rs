//! End-to-end adaLSH baseline recorder: times a full Algorithm-1 run
//! (design + filter, top-10 on a spotsigs corpus) with tracing disabled
//! and with a discarding subscriber attached, and writes seconds per run
//! plus the tracing overhead ratio to `BENCH_adalsh.json` at the
//! workspace root.
//!
//! Like `bench_kernels` and `bench_pairwise`, this is a one-shot
//! recorder producing a small machine-readable baseline that can be
//! committed and diffed across PRs — in particular it pins the
//! "tracing off costs nothing" contract: `overhead/noop` is the factor
//! a *subscribed* run pays, and `disabled_seconds` is the number any
//! future observability change must not regress.
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_adalsh
//! cargo run --release -p adalsh-bench --bin bench_adalsh -- --smoke
//! ```
//!
//! `--smoke` runs a smaller corpus and does not overwrite the committed
//! baseline.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use adalsh_bench::recorder::provenance_fields;
use adalsh_core::algorithm::default_threads;
use adalsh_core::{AdaLsh, AdaLshConfig, TraceSink};
use adalsh_data::{FieldDistance, MatchRule};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};
use adalsh_obs::NoopSubscriber;

/// Times one run, repeated after one warmup until ≥ 2 iterations and
/// ≥ 0.4 s have elapsed. Returns seconds per run.
fn measure(mut f: impl FnMut()) -> f64 {
    f();
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        if iters >= 2 && start.elapsed().as_secs_f64() > 0.4 {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (num_records, num_entities) = if smoke { (300, 40) } else { (1100, 120) };
    let k = 10;
    let threads = default_threads();

    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records,
        num_entities,
        seed: 42,
        ..SpotSigsConfig::default()
    });
    let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);

    let run = |trace: TraceSink| {
        let mut config = AdaLshConfig::new(rule.clone());
        config.threads = threads;
        config.trace = trace;
        let mut ada = AdaLsh::for_dataset(&dataset, config).expect("design");
        black_box(ada.run(&dataset, k));
    };

    let disabled = measure(|| run(TraceSink::disabled()));
    let noop = measure(|| run(TraceSink::new(Arc::new(NoopSubscriber))));
    let overhead = noop / disabled;
    println!(
        "adalsh/{num_records}r  disabled {disabled:>9.5}s  noop-subscribed {noop:>9.5}s  \
         overhead {overhead:>5.3}x"
    );

    let json = format!(
        "{{\n  \"_meta\": {{ \"records\": {num_records}, \"entities\": {num_entities}, \
         \"k\": {k}, \"threads\": {threads}, \"unit\": \"seconds per filter run\", {} }},\n  \
         \"disabled_seconds\": {disabled:.6},\n  \"noop_seconds\": {noop:.6},\n  \
         \"overhead/noop\": {overhead:.3}\n}}\n",
        provenance_fields()
    );

    if smoke {
        println!("smoke mode: baseline not written");
        return;
    }
    let path = "BENCH_adalsh.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
