//! Noisy-oracle robustness recorder: runs the full adaLSH top-k filter
//! under the fault-injected pairwise oracle on the cora-like and
//! spotsigs-like corpora, sweeping symmetric error rate × spend budget,
//! and writes top-k F1 plus the full spend ledger (calls, retries,
//! timeouts, transient errors, degraded pairs, spend, modeled latency)
//! to `BENCH_oracle.json` at the workspace root.
//!
//! This pins the two claims the resilience layer makes: moderate oracle
//! noise degrades top-k F1 *gracefully* (majority vote absorbs most
//! verdict flips), and a tight budget trades accuracy for spend via the
//! cheap-rule fallback instead of aborting — every row completes and
//! reports how many pairs were settled degraded.
//!
//! ```sh
//! cargo run --release -p adalsh-bench --bin bench_oracle
//! cargo run --release -p adalsh-bench --bin bench_oracle -- --smoke
//! ```
//!
//! `--smoke` runs one small corpus and does not overwrite the baseline.

use adalsh_bench::harness::datasets;
use adalsh_bench::recorder::provenance_fields;
use adalsh_core::algorithm::default_threads;
use adalsh_core::metrics::set_metrics;
use adalsh_core::{AdaLsh, AdaLshConfig, NoisyOracleConfig, OracleMode, OracleSpend};
use adalsh_data::{Dataset, MatchRule};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};

/// Symmetric error rates swept (false-match = false-non-match rate).
const ERROR_RATES: [f64; 4] = [0.0, 0.05, 0.1, 0.2];
/// Per-attempt injected fault rate (split into timeouts and transient
/// errors), fixed across the sweep so rows isolate error rate × budget.
const FAULT_RATE: f64 = 0.1;
/// Budget tiers as fractions of the unlimited run's spend (`None` =
/// unlimited). Tight budgets force the graceful-degradation path.
const BUDGET_TIERS: [(&str, Option<f64>); 3] = [
    ("unlimited", None),
    ("half", Some(0.5)),
    ("tenth", Some(0.1)),
];

struct Row {
    corpus: &'static str,
    error_rate: f64,
    budget: &'static str,
    f1: f64,
    spend: OracleSpend,
}

fn run_once(
    dataset: &Dataset,
    rule: &MatchRule,
    oracle: NoisyOracleConfig,
    k: usize,
    threads: usize,
) -> (f64, OracleSpend) {
    let mut config = AdaLshConfig::new(rule.clone());
    config.threads = threads;
    config.oracle = OracleMode::Noisy(oracle);
    let mut engine = AdaLsh::for_dataset(dataset, config).expect("design");
    let out = engine.run(dataset, k);
    let sm = set_metrics(&out.records(), &dataset.gold_records(k));
    (sm.f1, out.oracle.expect("noisy runs carry a ledger"))
}

fn sweep_corpus(
    corpus: &'static str,
    dataset: &Dataset,
    rule: &MatchRule,
    k: usize,
    threads: usize,
) -> Vec<Row> {
    let mut rows = Vec::new();
    for &error_rate in &ERROR_RATES {
        let base = NoisyOracleConfig {
            false_match_rate: error_rate,
            false_non_match_rate: error_rate,
            fault_rate: FAULT_RATE,
            seed: 1729,
            ..NoisyOracleConfig::default()
        };
        // The unlimited run anchors the budget tiers: each tighter tier
        // is a fraction of what this error rate actually spends.
        let (_, unlimited) = run_once(dataset, rule, base.clone(), k, threads);
        for (budget, fraction) in BUDGET_TIERS {
            let config = NoisyOracleConfig {
                budget: fraction.map(|f| ((unlimited.spent as f64) * f).ceil() as u64),
                ..base.clone()
            };
            let (f1, spend) = run_once(dataset, rule, config, k, threads);
            println!(
                "{corpus:>15} err {error_rate:<4} budget {budget:<9} f1 {f1:.3}  \
                 calls {:>6}  retries {:>5}  timeouts {:>5}  degraded {:>5}  spent {:>7}",
                spend.calls, spend.retries, spend.timeouts, spend.degraded, spend.spent
            );
            rows.push(Row {
                corpus,
                error_rate,
                budget,
                f1,
                spend,
            });
        }
    }
    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let k = 10;
    let threads = default_threads();

    let corpora: Vec<(&'static str, Dataset, MatchRule)> = if smoke {
        let d = spotsigs::generate(&SpotSigsConfig {
            num_records: 300,
            num_entities: 40,
            seed: 42,
            ..SpotSigsConfig::default()
        });
        vec![("spotsigs-small", d, spotsigs::match_rule(0.4))]
    } else {
        let (cora, cora_rule) = datasets::cora(1);
        let (spot, spot_rule) = datasets::spotsigs(1, 0.4);
        vec![("cora", cora, cora_rule), ("spotsigs", spot, spot_rule)]
    };

    let mut rows: Vec<Row> = Vec::new();
    for (corpus, dataset, rule) in &corpora {
        rows.extend(sweep_corpus(corpus, dataset, rule, k, threads));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"_meta\": {{ \"k\": {k}, \"threads\": {threads}, \"fault_rate\": {FAULT_RATE}, \
         \"seed\": 1729, \"budget_tiers\": \"fraction of the unlimited run's spend\", {} }}",
        provenance_fields()
    ));
    for row in &rows {
        let key = format!("{}/err{}/{}", row.corpus, row.error_rate, row.budget);
        json.push_str(&format!(
            ",\n  \"{key}/f1\": {:.4},\n  \"{key}/calls\": {},\n  \"{key}/retries\": {},\n  \
             \"{key}/timeouts\": {},\n  \"{key}/transient_errors\": {},\n  \
             \"{key}/degraded\": {},\n  \"{key}/spent\": {},\n  \"{key}/latency_micros\": {}",
            row.f1,
            row.spend.calls,
            row.spend.retries,
            row.spend.timeouts,
            row.spend.transient_errors,
            row.spend.degraded,
            row.spend.spent,
            row.spend.latency_micros,
        ));
    }
    json.push_str("\n}\n");

    if smoke {
        println!("smoke mode: baseline not written");
        return;
    }
    let path = "BENCH_oracle.json";
    std::fs::write(path, &json).expect("write baseline");
    println!("wrote {path}");
}
