//! Shared workloads for the `P` (pairwise verification) benchmarks —
//! used by both the Criterion bench (`benches/pairwise.rs`) and the
//! one-shot baseline recorder (`bin/bench_pairwise.rs`).
//!
//! Two regimes bracket `P`'s behaviour on a cluster of `n` records:
//!
//! * **match-dense** — one planted entity with high within-entity
//!   similarity under a Jaccard rule. Early merges transitively close
//!   all later pairs, so the run is dominated by `find_root` skips, not
//!   distance kernels; this is the regime adaLSH's Line-5 jump gate
//!   produces (a near-pure cluster handed to `P`).
//! * **match-sparse** — every record its own entity, an angular rule on
//!   dense vectors that almost never fires. All `n(n−1)/2` pairs run the
//!   distance kernel; this is the worst case charged by Definition 3 and
//!   the regime where the cached-norm kernel (one dot product instead of
//!   three) and multi-threaded evaluation pay off.

use adalsh_data::{
    Dataset, DenseVector, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema,
    ShingleSet,
};

/// Deterministic SplitMix64 — the benches must not depend on `rand`
/// being seeded the same way across versions.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4B9F9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Match-dense workload: one planted entity — every record keeps a
/// 30-token core and perturbs 3 tokens, so all pairs match under the
/// Jaccard rule. This is the cluster shape the Line-5 jump gate hands to
/// `P`: after the `n−1` spanning merges, the remaining `O(n²)` pairs are
/// transitively closed and only pay a `find_root`. Returns the dataset
/// and its rule.
pub fn match_dense(n: usize) -> (Dataset, MatchRule) {
    let mut rng = 0xD15EA5Eu64;
    let schema = Schema::single("s", FieldKind::Shingles);
    let records: Vec<Record> = (0..n)
        .map(|_| {
            let mut s: Vec<u64> = (0..30).collect();
            for x in s.iter_mut().take(3) {
                *x = splitmix(&mut rng) | (1 << 60);
            }
            Record::single(FieldValue::Shingles(ShingleSet::new(s)))
        })
        .collect();
    let gt = vec![0u32; n];
    (
        Dataset::new(schema, records, gt),
        MatchRule::threshold(0, FieldDistance::Jaccard, 0.4),
    )
}

/// Match-sparse workload: `n` singleton entities with 128-dimensional
/// dense vectors (embedding-sized) in near-random directions and an
/// angular rule tight enough that matches are rare. Returns the dataset
/// and its rule.
pub fn match_sparse(n: usize) -> (Dataset, MatchRule) {
    let mut rng = 0x5CA7E0u64;
    let schema = Schema::single("v", FieldKind::Dense);
    let records: Vec<Record> = (0..n)
        .map(|_| {
            let v: Vec<f64> = (0..128)
                .map(|_| (splitmix(&mut rng) % 2001) as f64 / 1000.0 - 1.0)
                .collect();
            Record::single(FieldValue::Dense(DenseVector::new(v)))
        })
        .collect();
    let gt = (0..n as u32).collect();
    (
        Dataset::new(schema, records, gt),
        // Random high-d directions concentrate near 90°; 0.2 (36°)
        // almost never fires, so every pair pays the full kernel.
        MatchRule::threshold(0, FieldDistance::Angular, 0.2),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adalsh_core::pairwise::{apply_pairwise, apply_pairwise_scalar};
    use adalsh_core::stats::Stats;

    #[test]
    fn regimes_have_the_intended_shape() {
        let n = 96;
        let ids: Vec<u32> = (0..n as u32).collect();
        let all_pairs = (n * (n - 1) / 2) as u64;

        let (d, rule) = match_dense(n);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &rule, &ids, 2, &mut st);
        assert_eq!(out.len(), 1, "dense regime is one entity");
        assert_eq!(
            st.pair_comparisons,
            (n - 1) as u64,
            "dense regime runs only the spanning comparisons"
        );

        let (d, rule) = match_sparse(n);
        let mut st = Stats::default();
        let out = apply_pairwise(&d, &rule, &ids, 2, &mut st);
        assert!(
            out.len() > n * 9 / 10,
            "sparse regime leaves almost everything unmerged ({} clusters)",
            out.len()
        );
        assert!(
            st.pair_comparisons > all_pairs * 9 / 10,
            "sparse regime evaluates almost every pair"
        );
    }

    #[test]
    fn workloads_are_deterministic_and_match_scalar() {
        for (d, rule) in [match_dense(48), match_sparse(48)] {
            let ids: Vec<u32> = (0..48).collect();
            let mut st_a = Stats::default();
            let a = apply_pairwise(&d, &rule, &ids, 3, &mut st_a);
            let mut st_b = Stats::default();
            let b = apply_pairwise_scalar(&d, &rule, &ids, &mut st_b);
            assert_eq!(a, b);
            assert_eq!(st_a, st_b);
        }
    }
}
