//! # adalsh-bench
//!
//! Experiment harness reproducing every table and figure of the adaLSH
//! paper. See `src/bin/` for one binary per figure and
//! `benches/primitives.rs` for Criterion microbenchmarks of the core data
//! structures.

pub mod figures;
pub mod harness;
pub mod pairwise_bench;
pub mod recorder;
