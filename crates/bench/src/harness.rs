//! Shared experiment harness for the figure binaries.
//!
//! Every figure binary builds datasets, runs filtering methods through
//! [`evaluate`], and renders rows with [`Table`]. Rows are also appended
//! as JSON lines under `results/` so `EXPERIMENTS.md` can be regenerated
//! mechanically.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::Instant;

use adalsh_core::algorithm::{FilterMethod, FilterOutput};
use adalsh_core::metrics::{map_mar, reduction_pct, set_metrics, SpeedupModel};
use adalsh_core::recovery::perfect_recovery;
use adalsh_data::{Dataset, MatchRule};
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Everything the experiment tables report about one method run.
#[derive(Debug, Clone, Serialize)]
pub struct Eval {
    /// Method display name.
    pub method: String,
    /// Number of clusters requested from the filter (k̂).
    pub k_requested: usize,
    /// Number of gold entities evaluated against (k).
    pub k_gold: usize,
    /// Dataset size |R|.
    pub num_records: usize,
    /// Wall-clock filtering seconds.
    pub wall_secs: f64,
    /// Elementary hash evaluations.
    pub hash_evals: u64,
    /// Pair comparisons performed by `P`.
    pub pair_comparisons: u64,
    /// Filtering output size |O|.
    pub output_records: usize,
    /// Set metrics against the ground-truth top-k records ("Gold").
    pub precision_gold: f64,
    /// See `precision_gold`.
    pub recall_gold: f64,
    /// See `precision_gold`.
    pub f1_gold: f64,
    /// Ranked-cluster metrics of the "perfect ER on the reduced dataset"
    /// clustering (§7.3.3): output records grouped by true entity.
    pub map: f64,
    /// See `map`.
    pub mar: f64,
    /// Ranked-cluster metrics of the filter's *own* clusters (a stricter
    /// view than the paper's; included for completeness).
    pub map_raw: f64,
    /// See `map_raw`.
    pub mar_raw: f64,
    /// mAP after the perfect recovery process.
    pub map_recovery: f64,
    /// mAR after the perfect recovery process.
    pub mar_recovery: f64,
    /// `100·|O|/|R|`.
    pub reduction_pct: f64,
    /// Benchmark-ER speedup without recovery.
    pub speedup: f64,
    /// Benchmark-ER speedup including recovery time.
    pub speedup_recovery: f64,
}

/// Measures the mean wall-clock cost of one pairwise comparison under
/// `rule` by timing `samples` random pairs (used by the benchmark-ER
/// speedup model of §6.2.2).
pub fn pair_cost(dataset: &Dataset, rule: &MatchRule, samples: usize, seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = dataset.len() as u32;
    let pairs: Vec<(u32, u32)> = (0..samples.max(1))
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect();
    let start = Instant::now();
    let mut acc = 0usize;
    for &(a, b) in &pairs {
        acc += usize::from(rule.matches(dataset.record(a), dataset.record(b)));
    }
    std::hint::black_box(acc);
    (start.elapsed().as_secs_f64() / pairs.len() as f64).max(1e-12)
}

/// Runs `method` asking for `k_requested` clusters and evaluates against
/// the top-`k_gold` ground truth (set `k_requested == k_gold` unless
/// sweeping k̂).
pub fn evaluate(
    method: &mut dyn FilterMethod,
    dataset: &Dataset,
    rule: &MatchRule,
    k_requested: usize,
    k_gold: usize,
    pair_cost_secs: f64,
) -> (Eval, FilterOutput) {
    let out = method.filter(dataset, k_requested);
    let eval = evaluate_output(
        &method.name(),
        &out,
        dataset,
        rule,
        k_requested,
        k_gold,
        pair_cost_secs,
    );
    (eval, out)
}

/// Evaluates an existing [`FilterOutput`] (lets callers reuse one run
/// across several gold settings).
pub fn evaluate_output(
    name: &str,
    out: &FilterOutput,
    dataset: &Dataset,
    _rule: &MatchRule,
    k_requested: usize,
    k_gold: usize,
    pair_cost_secs: f64,
) -> Eval {
    let gold = dataset.gold_records(k_gold);
    let records = out.records();
    let sm = set_metrics(&records, &gold);
    let gt_clusters = dataset.ground_truth_clusters();
    let reduced_er = adalsh_core::recovery::perfect_er_on_output(dataset, &records);
    let (map, mar) = map_mar(&reduced_er, &gt_clusters, k_gold);
    let (map_raw, mar_raw) = map_mar(&out.clusters, &gt_clusters, k_gold);
    let recovered = perfect_recovery(dataset, &records);
    let (map_r, mar_r) = map_mar(&recovered, &gt_clusters, k_gold);
    let model = SpeedupModel {
        pair_cost: pair_cost_secs,
    };
    Eval {
        method: name.to_string(),
        k_requested,
        k_gold,
        num_records: dataset.len(),
        wall_secs: out.wall.as_secs_f64(),
        hash_evals: out.stats.hash_evals,
        pair_comparisons: out.stats.pair_comparisons,
        output_records: records.len(),
        precision_gold: sm.precision,
        recall_gold: sm.recall,
        f1_gold: sm.f1,
        map,
        mar,
        map_raw,
        mar_raw,
        map_recovery: map_r,
        mar_recovery: mar_r,
        reduction_pct: reduction_pct(records.len(), dataset.len()),
        speedup: model.speedup_without_recovery(dataset.len(), records.len(), out.wall),
        speedup_recovery: model.speedup_with_recovery(dataset.len(), records.len(), out.wall),
    }
}

/// A simple fixed-width table printer for figure output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
            }
            println!("{}", s.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("--")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats seconds with adaptive precision.
pub fn secs(x: f64) -> String {
    if x < 0.01 {
        format!("{:.2}ms", x * 1e3)
    } else {
        format!("{x:.3}s")
    }
}

/// Appends experiment rows (any serializable payload + context labels)
/// as JSON lines to `results/<experiment>.jsonl`, creating the directory
/// as needed. Errors are reported but not fatal — figures must render
/// even on read-only checkouts.
pub fn write_rows<T: Serialize>(experiment: &str, rows: &[T]) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("note: cannot create results dir: {e}");
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            for r in rows {
                match serde_json::to_string(r) {
                    Ok(s) => {
                        let _ = writeln!(f, "{s}");
                    }
                    Err(e) => eprintln!("note: serialize failed: {e}"),
                }
            }
            eprintln!("wrote {} rows to {}", rows.len(), path.display());
        }
        Err(e) => eprintln!("note: cannot write {}: {e}", path.display()),
    }
}

/// Standard experiment datasets, shared by all figure binaries so the
/// numbers across figures describe the same corpora. Sizes are scaled
/// down from the paper's (documented in EXPERIMENTS.md) so the full
/// suite runs in minutes; the 1x/2x/4x/8x geometry is preserved via the
/// paper's upsampling process.
pub mod datasets {
    use adalsh_data::{Dataset, MatchRule};
    use adalsh_datagen::popimages::{self, PopImagesConfig};
    use adalsh_datagen::spotsigs::{self, SpotSigsConfig};
    use adalsh_datagen::{cora, upsample, CoraConfig};

    /// Cora-like dataset at `factor`x (1, 2, 4, 8) with its AND rule.
    pub fn cora(factor: usize) -> (Dataset, MatchRule) {
        let (base, _) = cora::generate(&CoraConfig::default());
        let d = if factor > 1 {
            upsample(&base, base.len() * factor, 0xC0 + factor as u64)
        } else {
            base
        };
        (d, cora::match_rule())
    }

    /// SpotSigs-like dataset at `factor`x with the rule at the given
    /// Jaccard *similarity* threshold (paper default 0.4).
    pub fn spotsigs(factor: usize, sim_threshold: f64) -> (Dataset, MatchRule) {
        let base = spotsigs::generate(&SpotSigsConfig::default());
        let d = if factor > 1 {
            upsample(&base, base.len() * factor, 0x59 + factor as u64)
        } else {
            base
        };
        (d, spotsigs::match_rule(sim_threshold))
    }

    /// PopularImages-like dataset at the given Zipf exponent with the
    /// angular rule at `threshold_deg` (paper: 2/3/5 degrees).
    pub fn popimages(exponent: f64, threshold_deg: f64) -> (Dataset, MatchRule) {
        let d = popimages::generate(&PopImagesConfig {
            zipf_exponent: exponent,
            ..PopImagesConfig::default()
        });
        (d, popimages::match_rule(threshold_deg))
    }
}

/// A labeled JSON row: experiment context plus the evaluation.
#[derive(Debug, Clone, Serialize)]
pub struct LabeledEval {
    /// Experiment id (e.g. `fig08a`).
    pub experiment: String,
    /// Free-form parameter labels (k, dataset size, threshold, …).
    pub params: BTreeMap<String, String>,
    /// The evaluation payload.
    #[serde(flatten)]
    pub eval: Eval,
}

/// Convenience: labels an [`Eval`] with experiment id and parameters.
pub fn label(experiment: &str, params: &[(&str, String)], eval: Eval) -> LabeledEval {
    LabeledEval {
        experiment: experiment.to_string(),
        params: params
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
        eval,
    }
}
