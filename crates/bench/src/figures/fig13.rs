//! Figure 13: mAP and mAR vs k̂ for k ∈ {2, 5, 10, 20} on SpotSigs —
//! the ranked-cluster view reaches 1.0 as more clusters are returned,
//! and higher-ranked entities are more accurate than the set metrics
//! suggest.

use crate::figures::common::ada;
use crate::harness::{
    datasets, evaluate_output, f3, label, pair_cost, write_rows, LabeledEval, Table,
};

/// Runs both panels.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    let (dataset, rule) = datasets::spotsigs(1, 0.4);
    let pc = pair_cost(&dataset, &rule, 500, 7);
    let ks = [2usize, 5, 10, 20];
    let khats = [5usize, 10, 15, 20, 25, 30];

    let mut map_t = Table::new(&["khat", "k=2", "k=5", "k=10", "k=20"]);
    let mut mar_t = Table::new(&["khat", "k=2", "k=5", "k=10", "k=20"]);
    let mut engine = ada(&dataset, &rule);
    for &khat in &khats {
        let out = engine.run(&dataset, khat);
        let mut map_cells = vec![khat.to_string()];
        let mut mar_cells = vec![khat.to_string()];
        for &k in &ks {
            if khat < k {
                map_cells.push("-".into());
                mar_cells.push("-".into());
                continue;
            }
            let e = evaluate_output("adaLSH", &out, &dataset, &rule, khat, k, pc);
            map_cells.push(f3(e.map));
            mar_cells.push(f3(e.mar));
            rows.push(label(
                "fig13",
                &[("k", k.to_string()), ("khat", khat.to_string())],
                e,
            ));
        }
        map_t.row(&map_cells);
        mar_t.row(&mar_cells);
    }
    println!("--- Figure 13(a): mean Average Precision vs khat (SpotSigs)");
    map_t.print();
    println!("\n--- Figure 13(b): mean Average Recall vs khat");
    mar_t.print();

    write_rows("fig13_map_mar", &rows);
    rows
}
