//! Figure 22 (Appendix E.2): budget-selection modes — the default
//! Exponential schedule (20, ×2) against Linear schedules with steps
//! 320 / 640 / 1280, on Cora and SpotSigs across sizes (k = 10).
//! Exponential finds the sweet spot between many cheap steps and few
//! expensive ones.

use serde::Serialize;

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig};
use adalsh_core::sequence::BudgetStrategy;
use adalsh_data::{Dataset, MatchRule};

use crate::harness::{datasets, secs, write_rows, Table};

/// One row of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig22Row {
    /// Dataset family (`cora` / `spotsigs`).
    pub dataset: String,
    /// Dataset scale factor.
    pub scale: usize,
    /// Records in the dataset.
    pub num_records: usize,
    /// Budget mode label.
    pub mode: String,
    /// Filtering wall-clock seconds.
    pub wall_secs: f64,
    /// Elementary hash evaluations.
    pub hash_evals: u64,
}

fn modes() -> [(&'static str, BudgetStrategy); 4] {
    [
        (
            "expo",
            BudgetStrategy::Exponential {
                start: 20,
                factor: 2,
            },
        ),
        ("lin320", BudgetStrategy::Linear { step: 320 }),
        ("lin640", BudgetStrategy::Linear { step: 640 }),
        ("lin1280", BudgetStrategy::Linear { step: 1280 }),
    ]
}

fn panel(name: &str, dataset_fn: fn(usize) -> (Dataset, MatchRule), rows: &mut Vec<Fig22Row>) {
    println!("--- Figure 22: budget modes on {name} (k = 10)");
    let mut t = Table::new(&["records", "expo", "lin320", "lin640", "lin1280"]);
    for factor in [1usize, 2, 4, 8] {
        let (dataset, rule) = dataset_fn(factor);
        let mut cells = vec![dataset.len().to_string()];
        for (label, strategy) in modes() {
            let mut cfg = AdaLshConfig::new(rule.clone());
            cfg.spec.strategy = strategy;
            let mut engine = AdaLsh::for_dataset(&dataset, cfg).unwrap();
            let out = engine.run(&dataset, 10);
            cells.push(secs(out.wall.as_secs_f64()));
            rows.push(Fig22Row {
                dataset: name.to_string(),
                scale: factor,
                num_records: dataset.len(),
                mode: label.to_string(),
                wall_secs: out.wall.as_secs_f64(),
                hash_evals: out.stats.hash_evals,
            });
        }
        t.row(&cells);
    }
    t.print();
    println!();
}

/// Runs both panels.
pub fn run() -> Vec<Fig22Row> {
    let mut rows = Vec::new();
    panel("cora", datasets::cora, &mut rows);
    panel("spotsigs", |f| datasets::spotsigs(f, 0.4), &mut rows);
    write_rows("fig22_budget_modes", &rows);
    rows
}
