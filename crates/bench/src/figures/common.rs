//! Shared pieces for the figure modules.

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterMethod};
use adalsh_core::baselines::{LshBlocking, Pairs};
use adalsh_data::{Dataset, MatchRule};

use crate::harness::{evaluate, label, pair_cost, Eval, LabeledEval};

/// Builds a default-configured adaLSH engine for a dataset/rule.
///
/// Thread count defaults to available parallelism; set `ADALSH_THREADS`
/// (e.g. `ADALSH_THREADS=1`) to pin it for reproducible single-threaded
/// timing runs. Output and statistics are identical at any thread count.
pub fn ada(dataset: &Dataset, rule: &MatchRule) -> AdaLsh {
    let mut config = AdaLshConfig::new(rule.clone());
    if let Some(n) = std::env::var("ADALSH_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        config.threads = n;
    }
    AdaLsh::for_dataset(dataset, config).expect("sequence designable for experiment rule")
}

/// A method roster entry for comparison figures.
pub enum Method {
    /// adaLSH with default configuration.
    Ada,
    /// `LSH-X` blocking with `P` verification.
    Lsh(u64),
    /// `LSH-X-nP` (no verification).
    LshNoP(u64),
    /// Exact pairwise resolution.
    Pairs,
}

impl Method {
    /// Runs the method and evaluates it.
    pub fn evaluate(
        &self,
        dataset: &Dataset,
        rule: &MatchRule,
        k_requested: usize,
        k_gold: usize,
        pc: f64,
    ) -> Eval {
        self.evaluate_full(dataset, rule, k_requested, k_gold, pc).0
    }

    /// Runs the method, returning the evaluation and the raw output.
    pub fn evaluate_full(
        &self,
        dataset: &Dataset,
        rule: &MatchRule,
        k_requested: usize,
        k_gold: usize,
        pc: f64,
    ) -> (Eval, adalsh_core::algorithm::FilterOutput) {
        let mut boxed: Box<dyn FilterMethod> = match self {
            Method::Ada => Box::new(ada(dataset, rule)),
            Method::Lsh(x) => Box::new(LshBlocking::new(rule.clone(), *x)),
            Method::LshNoP(x) => Box::new(LshBlocking::without_pairwise(rule.clone(), *x)),
            Method::Pairs => Box::new(Pairs::new(rule.clone())),
        };
        evaluate(boxed.as_mut(), dataset, rule, k_requested, k_gold, pc)
    }
}

/// Runs the time-vs-k and time-vs-size grids used by Figures 8 and 9.
pub struct TimeGrid {
    /// Experiment id prefix (e.g. `fig08`).
    pub id: &'static str,
    /// Dataset family constructor at a scale factor.
    pub dataset: fn(usize) -> (Dataset, MatchRule),
    /// The `LSH-X` budget the paper uses in this figure (1280).
    pub lsh_x: u64,
}

impl TimeGrid {
    /// Part (a): execution time for k ∈ {2, 5, 10, 20} at 1x.
    /// Part (b): execution time for sizes 1x..8x at k = 10.
    pub fn run(&self) -> Vec<LabeledEval> {
        let mut rows = Vec::new();
        let (d1, rule) = (self.dataset)(1);
        let pc = pair_cost(&d1, &rule, 1000, 7);

        println!("--- (a) execution time vs k (1x, {} records)", d1.len());
        let mut ta =
            crate::harness::Table::new(&["k", "adaLSH", &format!("LSH{}", self.lsh_x), "Pairs"]);
        for k in [2usize, 5, 10, 20] {
            let mut cells = vec![k.to_string()];
            for m in [Method::Ada, Method::Lsh(self.lsh_x), Method::Pairs] {
                let e = m.evaluate(&d1, &rule, k, k, pc);
                cells.push(crate::harness::secs(e.wall_secs));
                rows.push(label(
                    &format!("{}a", self.id),
                    &[("k", k.to_string()), ("scale", "1".into())],
                    e,
                ));
            }
            ta.row(&cells);
        }
        ta.print();

        println!("\n--- (b) execution time vs dataset size (k = 10)");
        let mut tb = crate::harness::Table::new(&[
            "records",
            "adaLSH",
            &format!("LSH{}", self.lsh_x),
            "Pairs",
        ]);
        for factor in [1usize, 2, 4, 8] {
            let (d, rule) = (self.dataset)(factor);
            let pc = pair_cost(&d, &rule, 1000, 7);
            let mut cells = vec![d.len().to_string()];
            for m in [Method::Ada, Method::Lsh(self.lsh_x), Method::Pairs] {
                let e = m.evaluate(&d, &rule, 10, 10, pc);
                cells.push(crate::harness::secs(e.wall_secs));
                rows.push(label(
                    &format!("{}b", self.id),
                    &[("k", "10".into()), ("scale", factor.to_string())],
                    e,
                ));
            }
            tb.row(&cells);
        }
        tb.print();
        rows
    }
}
