//! One module per paper figure; each exposes `run() -> Vec<LabeledEval>`
//! that prints the figure's table and returns the raw rows for
//! `results/*.jsonl`.

pub mod ablations;
pub mod common;
pub mod fig05;
pub mod fig08_09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig20;
pub mod fig21;
pub mod fig22;
