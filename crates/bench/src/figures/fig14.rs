//! Figure 14: applying the recovery process (§6.1.2) — Speedup *with*
//! Recovery vs k̂ on SpotSigs 1x/2x/4x (k = 5), and mAP-with-Recovery vs
//! k̂ for several k. Recovery costs benchmark-recovery time but drives
//! mAP to 1.0 quickly.

use crate::figures::common::ada;
use crate::harness::{
    datasets, evaluate_output, f3, label, pair_cost, write_rows, LabeledEval, Table,
};

/// Runs both panels.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    let khats = [5usize, 10, 15, 20];

    println!("--- Figure 14(a): Speedup with Recovery vs khat (k = 5)");
    let mut spd = Table::new(&["khat", "1x", "2x", "4x"]);
    let mut spd_rows: Vec<Vec<String>> = khats.iter().map(|k| vec![k.to_string()]).collect();
    for &factor in &[1usize, 2, 4] {
        let (dataset, rule) = datasets::spotsigs(factor, 0.4);
        let pc = pair_cost(&dataset, &rule, 500, 7);
        let mut engine = ada(&dataset, &rule);
        for (i, &khat) in khats.iter().enumerate() {
            let out = engine.run(&dataset, khat);
            let e = evaluate_output("adaLSH", &out, &dataset, &rule, khat, 5, pc);
            spd_rows[i].push(f3(e.speedup_recovery));
            rows.push(label(
                "fig14a",
                &[("scale", factor.to_string()), ("khat", khat.to_string())],
                e,
            ));
        }
    }
    for r in spd_rows {
        spd.row(&r);
    }
    spd.print();

    println!("\n--- Figure 14(b): mAP with Recovery vs khat (1x)");
    let (dataset, rule) = datasets::spotsigs(1, 0.4);
    let pc = pair_cost(&dataset, &rule, 500, 7);
    let mut map_t = Table::new(&["khat", "k=2", "k=5", "k=10", "k=20"]);
    let mut engine = ada(&dataset, &rule);
    for khat in [5usize, 10, 15, 20, 25, 30] {
        let out = engine.run(&dataset, khat);
        let mut cells = vec![khat.to_string()];
        for k in [2usize, 5, 10, 20] {
            if khat < k {
                cells.push("-".into());
                continue;
            }
            let e = evaluate_output("adaLSH", &out, &dataset, &rule, khat, k, pc);
            cells.push(f3(e.map_recovery));
            rows.push(label(
                "fig14b",
                &[("k", k.to_string()), ("khat", khat.to_string())],
                e,
            ));
        }
        map_t.row(&cells);
    }
    map_t.print();

    write_rows("fig14_recovery", &rows);
    rows
}
