//! Figure 16: execution time on PopularImages vs the Zipf exponent
//! (1.05 / 1.1 / 1.2), for thresholds 3° and 5°, k = 10 — the
//! "challenging" regime where the top clusters are huge and `P` on the
//! top-1 entity dominates everyone's run time. (Pairs is omitted, as in
//! the paper — it is an order of magnitude slower here.)

use crate::figures::common::Method;
use crate::harness::{datasets, label, pair_cost, secs, write_rows, LabeledEval, Table};

/// Runs both panels.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    for (panel, threshold) in [("a", 3.0f64), ("b", 5.0)] {
        println!("--- Figure 16({panel}): execution time, dthr = {threshold}°, k = 10");
        let mut t = Table::new(&["exponent", "adaLSH", "LSH320", "LSH2560"]);
        for exponent in [1.05f64, 1.1, 1.2] {
            let (dataset, rule) = datasets::popimages(exponent, threshold);
            let pc = pair_cost(&dataset, &rule, 500, 7);
            let mut cells = vec![exponent.to_string()];
            for (m, name) in [
                (Method::Ada, "adaptive"),
                (Method::Lsh(320), "320"),
                (Method::Lsh(2560), "2560"),
            ] {
                let e = m.evaluate(&dataset, &rule, 10, 10, pc);
                cells.push(secs(e.wall_secs));
                rows.push(label(
                    &format!("fig16{panel}"),
                    &[
                        ("exponent", exponent.to_string()),
                        ("threshold_deg", threshold.to_string()),
                        ("x", name.into()),
                    ],
                    e,
                ));
            }
            t.row(&cells);
        }
        t.print();
        println!();
    }
    write_rows("fig16_popimages_time", &rows);
    rows
}
