//! Figures 5 and 7: collision-probability curves of `(w,z)`-schemes and
//! the Example-5 scheme-selection setting (analytic — no dataset).

use adalsh_lsh::optimizer::{OptimizerInput, SchemeOptimizer};
use adalsh_lsh::scheme::{Scheme, WzScheme};
use serde::Serialize;

use crate::harness::{f3, write_rows, Table};

/// One sampled point of a probability curve.
#[derive(Debug, Clone, Serialize)]
pub struct CurvePoint {
    /// Which figure the point belongs to (`fig05` or `fig07`).
    pub figure: String,
    /// Scheme parameters.
    pub w: u32,
    /// See `w`.
    pub z: u32,
    /// Cosine distance in degrees.
    pub degrees: f64,
    /// Probability of sharing a bucket in ≥ 1 table.
    pub probability: f64,
}

/// Prints both curve families and the Example-5 optimizer outcome.
pub fn run() -> Vec<CurvePoint> {
    let mut rows = Vec::new();
    let angles = [
        5.0f64, 15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 80.0, 100.0, 140.0, 180.0,
    ];

    println!("--- Figure 5: P[same bucket] vs cosine distance");
    let fig5 = [(1u32, 1u32), (15, 20), (30, 70)];
    let mut t5 = Table::new(&["degrees", "w=1,z=1", "w=15,z=20", "w=30,z=70"]);
    for &deg in &angles {
        let mut cells = vec![format!("{deg}")];
        for &(w, z) in &fig5 {
            let p = WzScheme::new(w, z).collision_prob(1.0 - deg / 180.0);
            cells.push(f3(p));
            rows.push(CurvePoint {
                figure: "fig05".into(),
                w,
                z,
                degrees: deg,
                probability: p,
            });
        }
        t5.row(&cells);
    }
    t5.print();

    println!("\n--- Figure 7: Example-5 candidate schemes (budget 2100)");
    let fig7 = [(15u32, 140u32), (30, 70), (60, 35)];
    let mut t7 = Table::new(&["degrees", "w=15,z=140", "w=30,z=70", "w=60,z=35"]);
    for &deg in &angles {
        let mut cells = vec![format!("{deg}")];
        for &(w, z) in &fig7 {
            let p = WzScheme::new(w, z).collision_prob(1.0 - deg / 180.0);
            cells.push(f3(p));
            rows.push(CurvePoint {
                figure: "fig07".into(),
                w,
                z,
                degrees: deg,
                probability: p,
            });
        }
        t7.row(&cells);
    }
    t7.print();

    println!("\n--- Program (1)-(3) on the Example-5 setting:");
    let p = |x: f64| 1.0 - x;
    let input = OptimizerInput::new(2100, 15.0 / 180.0, 0.001, &p);
    for &(w, z) in &fig7 {
        let s = Scheme::pure(w, z);
        println!(
            "  (w={w:>2}, z={z:>3}): objective {:.5}  feasible(ε=0.001): {}",
            SchemeOptimizer::objective(&s, &p),
            SchemeOptimizer::feasible(&s, &input),
        );
    }
    if let Some(s) = SchemeOptimizer::optimize_divisor(&input) {
        println!(
            "  optimizer selects (w={}, z={}) — the largest feasible divisor",
            s.w, s.z
        );
    }

    write_rows("fig05_prob_curves", &rows);
    rows
}
