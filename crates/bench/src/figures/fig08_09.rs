//! Figure 8 (Cora) and Figure 9 (SpotSigs): execution time vs `k` and vs
//! dataset size, for adaLSH, LSH1280, and Pairs.

use crate::figures::common::TimeGrid;
use crate::harness::{datasets, write_rows, LabeledEval};

/// Figure 8: Cora.
pub fn run_fig08() -> Vec<LabeledEval> {
    println!("=== Figure 8: execution time on Cora ===");
    let rows = TimeGrid {
        id: "fig08",
        dataset: |f| datasets::cora(f),
        lsh_x: 1280,
    }
    .run();
    write_rows("fig08_cora", &rows);
    rows
}

/// Figure 9: SpotSigs.
pub fn run_fig09() -> Vec<LabeledEval> {
    println!("=== Figure 9: execution time on SpotSigs ===");
    let rows = TimeGrid {
        id: "fig09",
        dataset: |f| datasets::spotsigs(f, 0.4),
        lsh_x: 1280,
    }
    .run();
    write_rows("fig09_spotsigs", &rows);
    rows
}
