//! Figure 10: F1 Gold for different k values on Cora and SpotSigs —
//! all three methods give an (almost) identical F1, demonstrating that
//! the probabilistic methods introduce no errors beyond Pairs'.

use crate::figures::common::Method;
use crate::harness::{datasets, f3, label, pair_cost, write_rows, LabeledEval, Table};

/// Runs both panels.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    for (panel, name, data) in [
        ("a", "Cora", datasets::cora(1)),
        ("b", "SpotSigs", datasets::spotsigs(1, 0.4)),
    ] {
        let (dataset, rule) = data;
        let pc = pair_cost(&dataset, &rule, 500, 7);
        println!("--- Figure 10({panel}): F1 Gold on {name}");
        let mut t = Table::new(&["k", "adaLSH", "LSH1280", "Pairs"]);
        for k in [1usize, 5, 10, 20] {
            let mut cells = vec![k.to_string()];
            for m in [Method::Ada, Method::Lsh(1280), Method::Pairs] {
                let e = m.evaluate(&dataset, &rule, k, k, pc);
                cells.push(f3(e.f1_gold));
                rows.push(label(
                    &format!("fig10{panel}"),
                    &[("dataset", name.into()), ("k", k.to_string())],
                    e,
                ));
            }
            t.row(&cells);
        }
        t.print();
        println!();
    }
    write_rows("fig10_f1", &rows);
    rows
}
