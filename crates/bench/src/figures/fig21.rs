//! Figure 21 (Appendix E.2): sensitivity of adaLSH to cost-model noise.
//! The pairwise cost estimate is multiplied by nf ∈ {1/5, 1/2, 2, 5};
//! only a heavy *under*-estimate (nf = 1/5 ⇒ `P` fires early on large
//! clusters) should noticeably change the execution time.

use serde::Serialize;

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig};

use crate::harness::{datasets, secs, write_rows, Table};

/// One row of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig21Row {
    /// Gold/requested k of the panel.
    pub k: usize,
    /// Dataset scale factor.
    pub scale: usize,
    /// Records in the dataset.
    pub num_records: usize,
    /// Noise factor label (`clean`, `1/5`, …).
    pub noise: String,
    /// Filtering wall-clock seconds.
    pub wall_secs: f64,
    /// Elementary hash evaluations (noise shifts work between hashing
    /// and `P`).
    pub hash_evals: u64,
    /// Pair comparisons.
    pub pair_comparisons: u64,
}

/// Runs both panels (k = 2 and k = 10).
pub fn run() -> Vec<Fig21Row> {
    let mut rows = Vec::new();
    let noises: [(&str, f64); 5] = [
        ("clean", 1.0),
        ("1/2", 0.5),
        ("2/1", 2.0),
        ("1/5", 0.2),
        ("5/1", 5.0),
    ];
    for k in [2usize, 10] {
        println!("--- Figure 21 (k = {k}): execution time under cost-model noise");
        let mut t = Table::new(&["records", "clean", "1/2", "2/1", "1/5", "5/1"]);
        for factor in [1usize, 2, 4, 8] {
            let (dataset, rule) = datasets::spotsigs(factor, 0.4);
            let mut cells = vec![dataset.len().to_string()];
            for &(name, nf) in &noises {
                let mut cfg = AdaLshConfig::new(rule.clone());
                cfg.cost_noise = nf;
                let mut engine = AdaLsh::for_dataset(&dataset, cfg).unwrap();
                let out = engine.run(&dataset, k);
                cells.push(secs(out.wall.as_secs_f64()));
                rows.push(Fig21Row {
                    k,
                    scale: factor,
                    num_records: dataset.len(),
                    noise: name.to_string(),
                    wall_secs: out.wall.as_secs_f64(),
                    hash_evals: out.stats.hash_evals,
                    pair_comparisons: out.stats.pair_comparisons,
                });
            }
            t.row(&cells);
        }
        t.print();
        println!();
    }
    write_rows("fig21_cost_noise", &rows);
    rows
}
