//! Figure 12: dataset-reduction percentage and Speedup-w/o-Recovery vs
//! k̂ on SpotSigs 1x/2x/4x (gold k = 5), with adaLSH as the filter. The
//! "Actual" reference lines are the true fractions of records in the
//! gold top-k entities.

use crate::figures::common::ada;
use crate::harness::{
    datasets, evaluate_output, f3, label, pair_cost, write_rows, LabeledEval, Table,
};

/// Gold k of the experiment.
pub const K: usize = 5;

/// Runs both panels.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    let khats = [5usize, 10, 15, 20];
    let factors = [1usize, 2, 4];

    let mut red = Table::new(&["khat", "1x", "2x", "4x"]);
    let mut spd = Table::new(&["khat", "1x", "2x", "4x"]);
    let mut red_rows: Vec<Vec<String>> = khats.iter().map(|k| vec![k.to_string()]).collect();
    let mut spd_rows: Vec<Vec<String>> = khats.iter().map(|k| vec![k.to_string()]).collect();
    let mut actuals = Vec::new();

    for &factor in &factors {
        let (dataset, rule) = datasets::spotsigs(factor, 0.4);
        let pc = pair_cost(&dataset, &rule, 500, 7);
        let actual = 100.0 * dataset.gold_records(K).len() as f64 / dataset.len() as f64;
        actuals.push(format!("Actual{factor}x = {:.1}%", actual));
        let mut engine = ada(&dataset, &rule);
        for (i, &khat) in khats.iter().enumerate() {
            let out = engine.run(&dataset, khat);
            let e = evaluate_output("adaLSH", &out, &dataset, &rule, khat, K, pc);
            red_rows[i].push(format!("{:.1}%", e.reduction_pct));
            spd_rows[i].push(f3(e.speedup));
            rows.push(label(
                "fig12",
                &[("scale", factor.to_string()), ("khat", khat.to_string())],
                e,
            ));
        }
    }

    println!("--- Figure 12(a): dataset reduction % vs khat (SpotSigs, k = {K})");
    for r in red_rows {
        red.row(&r);
    }
    red.print();
    println!("    reference: {}", actuals.join(", "));
    println!("\n--- Figure 12(b): Speedup w/o Recovery vs khat");
    for r in spd_rows {
        spd.row(&r);
    }
    spd.print();

    write_rows("fig12_reduction", &rows);
    rows
}
