//! Ablations beyond the paper's figures, probing the design choices the
//! theorems justify:
//!
//! * **Largest-First selection** (Theorem 1): compare the modeled
//!   Definition-3 cost under Largest-First, Smallest-First, Random, and
//!   FIFO selection. Largest-First must never lose.
//! * **Jump-ahead gate** (Algorithm 1 Line 5): disable the cost gate so
//!   every cluster rides the hash sequence to `H_L` — quantifying how
//!   much the early switch to `P` saves.

use serde::Serialize;

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, SelectionStrategy};

use crate::harness::{datasets, secs, write_rows, Table};

/// One row of the selection-strategy ablation.
#[derive(Debug, Clone, Serialize)]
pub struct SelectionRow {
    /// Dataset family.
    pub dataset: String,
    /// Strategy label.
    pub strategy: String,
    /// Modeled Definition-3 cost.
    pub modeled_cost: f64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Main-loop rounds.
    pub rounds: u64,
}

/// Largest-First vs the alternatives (k = 10).
pub fn run_largest_first() -> Vec<SelectionRow> {
    let mut rows = Vec::new();
    println!("--- Ablation: cluster-selection strategy (Theorem 1), k = 10");
    let mut t = Table::new(&["dataset", "strategy", "modeled cost", "time", "rounds"]);
    let cases: Vec<(&str, _)> = vec![
        ("cora", datasets::cora(1)),
        ("spotsigs", datasets::spotsigs(1, 0.4)),
        ("popimages", datasets::popimages(1.05, 3.0)),
    ];
    for (name, (dataset, rule)) in cases {
        for (label, strategy) in [
            ("LargestFirst", SelectionStrategy::LargestFirst),
            ("SmallestFirst", SelectionStrategy::SmallestFirst),
            ("Random", SelectionStrategy::Random),
            ("Fifo", SelectionStrategy::Fifo),
        ] {
            let mut cfg = AdaLshConfig::new(rule.clone());
            cfg.selection = strategy;
            let mut engine = AdaLsh::for_dataset(&dataset, cfg).unwrap();
            let out = engine.run(&dataset, 10);
            t.row(&[
                name.to_string(),
                label.to_string(),
                format!("{:.3e}", out.stats.modeled_cost),
                secs(out.wall.as_secs_f64()),
                out.stats.rounds.to_string(),
            ]);
            rows.push(SelectionRow {
                dataset: name.to_string(),
                strategy: label.to_string(),
                modeled_cost: out.stats.modeled_cost,
                wall_secs: out.wall.as_secs_f64(),
                rounds: out.stats.rounds,
            });
        }
    }
    t.print();
    write_rows("ablation_largest_first", &rows);
    rows
}

/// One row of the jump-ahead ablation.
#[derive(Debug, Clone, Serialize)]
pub struct GateRow {
    /// Dataset family.
    pub dataset: String,
    /// `true` when the Line-5 cost gate is active.
    pub gate_enabled: bool,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// Hash evaluations.
    pub hash_evals: u64,
    /// Pair comparisons.
    pub pair_comparisons: u64,
    /// Modeled Definition-3 cost.
    pub modeled_cost: f64,
}

/// Cost gate on/off (k = 10).
pub fn run_jump_gate() -> Vec<GateRow> {
    let mut rows = Vec::new();
    println!("\n--- Ablation: Line-5 jump-ahead gate, k = 10");
    let mut t = Table::new(&["dataset", "gate", "time", "hashes", "pairs", "modeled cost"]);
    let cases: Vec<(&str, _)> = vec![
        ("cora", datasets::cora(1)),
        ("spotsigs", datasets::spotsigs(1, 0.4)),
        ("popimages", datasets::popimages(1.05, 3.0)),
    ];
    for (name, (dataset, rule)) in cases {
        for gate in [true, false] {
            let mut cfg = AdaLshConfig::new(rule.clone());
            cfg.disable_jump_gate = !gate;
            let mut engine = AdaLsh::for_dataset(&dataset, cfg).unwrap();
            let out = engine.run(&dataset, 10);
            t.row(&[
                name.to_string(),
                if gate { "on" } else { "off" }.to_string(),
                secs(out.wall.as_secs_f64()),
                out.stats.hash_evals.to_string(),
                out.stats.pair_comparisons.to_string(),
                format!("{:.3e}", out.stats.modeled_cost),
            ]);
            rows.push(GateRow {
                dataset: name.to_string(),
                gate_enabled: gate,
                wall_secs: out.wall.as_secs_f64(),
                hash_evals: out.stats.hash_evals,
                pair_comparisons: out.stats.pair_comparisons,
                modeled_cost: out.stats.modeled_cost,
            });
        }
    }
    t.print();
    write_rows("ablation_jump_gate", &rows);
    rows
}
