//! Figure 15: adaLSH vs the whole LSH-X ladder (X = 20 … 5120) on
//! SpotSigs 1x and 8x, k = 10. The best X shifts with dataset size —
//! adaLSH needs no such tuning and still beats the best-tuned variant.

use crate::figures::common::Method;
use crate::harness::{datasets, label, pair_cost, secs, write_rows, LabeledEval, Table};

/// Runs both panels.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    let ladder = [20u64, 80, 320, 1280, 5120];
    for (panel, factor) in [("a", 1usize), ("b", 8)] {
        let (dataset, rule) = datasets::spotsigs(factor, 0.4);
        let pc = pair_cost(&dataset, &rule, 500, 7);
        println!(
            "--- Figure 15({panel}): adaLSH vs LSH-X ladder (SpotSigs{}x, {} records, k = 10)",
            factor,
            dataset.len()
        );
        let mut t = Table::new(&["method", "time", "hashes", "F1"]);
        let e = Method::Ada.evaluate(&dataset, &rule, 10, 10, pc);
        t.row(&[
            "adaLSH".into(),
            secs(e.wall_secs),
            e.hash_evals.to_string(),
            format!("{:.3}", e.f1_gold),
        ]);
        rows.push(label(
            &format!("fig15{panel}"),
            &[("scale", factor.to_string()), ("x", "adaptive".into())],
            e,
        ));
        for &x in &ladder {
            let e = Method::Lsh(x).evaluate(&dataset, &rule, 10, 10, pc);
            t.row(&[
                format!("LSH{x}"),
                secs(e.wall_secs),
                e.hash_evals.to_string(),
                format!("{:.3}", e.f1_gold),
            ]);
            rows.push(label(
                &format!("fig15{panel}"),
                &[("scale", factor.to_string()), ("x", x.to_string())],
                e,
            ));
        }
        t.print();
        println!();
    }
    write_rows("fig15_lsh_variants", &rows);
    rows
}
