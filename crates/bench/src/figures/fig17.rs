//! Figure 17: F1 Gold on PopularImages vs Zipf exponent, for thresholds
//! 2° / 3° / 5°, k = 10. Stricter thresholds split true entities (lower
//! F1); heavier-tailed size distributions (higher exponent) make the
//! top-10 clusters larger and errors relatively rarer.

use crate::figures::common::Method;
use crate::harness::{datasets, f3, label, pair_cost, write_rows, LabeledEval, Table};

/// Runs the figure.
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    println!("--- Figure 17: F1 Gold on PopularImages (k = 10)");
    let mut t = Table::new(&["exponent", "2degrees", "3degrees", "5degrees"]);
    for exponent in [1.05f64, 1.1, 1.2] {
        let mut cells = vec![exponent.to_string()];
        for threshold in [2.0f64, 3.0, 5.0] {
            let (dataset, rule) = datasets::popimages(exponent, threshold);
            let pc = pair_cost(&dataset, &rule, 500, 7);
            let e = Method::Ada.evaluate(&dataset, &rule, 10, 10, pc);
            cells.push(f3(e.f1_gold));
            rows.push(label(
                "fig17",
                &[
                    ("exponent", exponent.to_string()),
                    ("threshold_deg", threshold.to_string()),
                ],
                e,
            ));
        }
        t.row(&cells);
    }
    t.print();
    write_rows("fig17_popimages_f1", &rows);
    rows
}
