//! Figure 20 (Appendix E.1): LSH blocking with and without the `P`
//! verification stage — execution time and *F1 target* (harmonic mean of
//! precision/recall against the `Pairs` output, isolating errors due to
//! the probabilistic hashing alone). The nP variants are fast but
//! collapse in accuracy as the dataset grows.

use adalsh_core::algorithm::FilterMethod;
use adalsh_core::baselines::Pairs;
use adalsh_core::metrics::set_metrics;
use serde::Serialize;

use crate::figures::common::Method;
use crate::harness::{datasets, f3, pair_cost, secs, write_rows, Table};

/// One row of the figure.
#[derive(Debug, Clone, Serialize)]
pub struct Fig20Row {
    /// Dataset scale factor.
    pub scale: usize,
    /// Records in the dataset.
    pub num_records: usize,
    /// Method name.
    pub method: String,
    /// Filtering wall-clock seconds.
    pub wall_secs: f64,
    /// F1 against the Pairs output (F1 target).
    pub f1_target: f64,
    /// F1 against the ground truth (F1 gold), for reference.
    pub f1_gold: f64,
}

/// Runs both panels (time and F1 target vs dataset size, k = 10).
pub fn run() -> Vec<Fig20Row> {
    let mut rows = Vec::new();
    let k = 10;
    let roster: [(&str, Method); 5] = [
        ("adaLSH", Method::Ada),
        ("LSH20", Method::Lsh(20)),
        ("LSH640", Method::Lsh(640)),
        ("LSH20nP", Method::LshNoP(20)),
        ("LSH640nP", Method::LshNoP(640)),
    ];

    let mut time_t = Table::new(&[
        "records", "adaLSH", "LSH20", "LSH640", "LSH20nP", "LSH640nP",
    ]);
    let mut f1_t = Table::new(&[
        "records", "adaLSH", "LSH20", "LSH640", "LSH20nP", "LSH640nP",
    ]);
    for factor in [1usize, 2, 4, 8] {
        let (dataset, rule) = datasets::spotsigs(factor, 0.4);
        let pc = pair_cost(&dataset, &rule, 500, 7);
        // The F1-target gold: the exact Pairs output.
        let target = Pairs::new(rule.clone()).filter(&dataset, k).records();
        let mut time_cells = vec![dataset.len().to_string()];
        let mut f1_cells = vec![dataset.len().to_string()];
        for (name, m) in &roster {
            let (e, out) = m.evaluate_full(&dataset, &rule, k, k, pc);
            let f1_target = set_metrics(&out.records(), &target).f1;
            time_cells.push(secs(e.wall_secs));
            f1_cells.push(f3(f1_target));
            rows.push(Fig20Row {
                scale: factor,
                num_records: dataset.len(),
                method: name.to_string(),
                wall_secs: e.wall_secs,
                f1_target,
                f1_gold: e.f1_gold,
            });
        }
        time_t.row(&time_cells);
        f1_t.row(&f1_cells);
    }
    println!("--- Figure 20(a): execution time vs size (SpotSigs, k = {k})");
    time_t.print();
    println!("\n--- Figure 20(b): F1 target vs size");
    f1_t.print();

    write_rows("fig20_lsh_nop", &rows);
    rows
}
