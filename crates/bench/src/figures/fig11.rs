//! Figure 11: the precision/recall trade-off as the filter returns more
//! clusters than needed (k̂ > k) — SpotSigs, gold k = 5, similarity
//! thresholds 0.3 / 0.4 / 0.5. Recall climbs towards 1.0 with k̂ while
//! precision decays.

use crate::figures::common::ada;
use crate::harness::{
    datasets, evaluate_output, f3, label, pair_cost, write_rows, LabeledEval, Table,
};

/// Gold k of the experiment.
pub const K: usize = 5;

/// Runs both panels (recall and precision vs k̂ per threshold).
pub fn run() -> Vec<LabeledEval> {
    let mut rows = Vec::new();
    let khats = [5usize, 8, 11, 14, 17, 20];
    let thresholds = [0.3f64, 0.4, 0.5];

    let mut recall_t = Table::new(&["khat", "thres0.3", "thres0.4", "thres0.5"]);
    let mut prec_t = Table::new(&["khat", "thres0.3", "thres0.4", "thres0.5"]);
    let mut recall_rows: Vec<Vec<String>> = khats.iter().map(|k| vec![k.to_string()]).collect();
    let mut prec_rows: Vec<Vec<String>> = khats.iter().map(|k| vec![k.to_string()]).collect();

    for &thr in &thresholds {
        let (dataset, rule) = datasets::spotsigs(1, thr);
        let pc = pair_cost(&dataset, &rule, 500, 7);
        let mut engine = ada(&dataset, &rule);
        for (i, &khat) in khats.iter().enumerate() {
            let out = engine.run(&dataset, khat);
            let e = evaluate_output("adaLSH", &out, &dataset, &rule, khat, K, pc);
            recall_rows[i].push(f3(e.recall_gold));
            prec_rows[i].push(f3(e.precision_gold));
            rows.push(label(
                "fig11",
                &[("threshold", thr.to_string()), ("khat", khat.to_string())],
                e,
            ));
        }
    }
    println!("--- Figure 11(a): Recall Gold vs khat (SpotSigs, k = {K})");
    for r in recall_rows {
        recall_t.row(&r);
    }
    recall_t.print();
    println!("\n--- Figure 11(b): Precision Gold vs khat (SpotSigs, k = {K})");
    for r in prec_rows {
        prec_t.row(&r);
    }
    prec_t.print();

    write_rows("fig11_khat", &rows);
    rows
}
