//! End-to-end accuracy parity between the classic and DOPH MinHash
//! schemes: on cora-like and spotsigs-like corpora, the adaptive top-k
//! filter must reach (near-)identical F1 against the gold entities under
//! either scheme. The two schemes are different unbiased estimators of
//! the same Jaccard similarities, so their *accuracy* must agree even
//! though individual hash values differ.

use adalsh_core::metrics::set_metrics;
use adalsh_core::{AdaLsh, AdaLshConfig, MinhashScheme};
use adalsh_data::{Dataset, MatchRule};
use adalsh_datagen::cora::{self, CoraConfig};
use adalsh_datagen::spotsigs::{self, SpotSigsConfig};

fn f1_under(dataset: &Dataset, rule: &MatchRule, scheme: MinhashScheme, k: usize) -> f64 {
    let mut config = AdaLshConfig::new(rule.clone());
    config.minhash_scheme = scheme;
    let mut ada = AdaLsh::for_dataset(dataset, config).expect("design");
    let out = ada.run(dataset, k);
    set_metrics(&out.records(), &dataset.gold_records(k)).f1
}

fn assert_parity(name: &str, dataset: &Dataset, rule: &MatchRule, k: usize) {
    let classic = f1_under(dataset, rule, MinhashScheme::Classic, k);
    let doph = f1_under(dataset, rule, MinhashScheme::Doph, k);
    println!("{name}: classic f1 {classic:.3}, doph f1 {doph:.3}");
    assert!(
        classic > 0.8,
        "{name}: classic baseline degenerate (f1 {classic:.3})"
    );
    assert!(
        (classic - doph).abs() <= 0.05,
        "{name}: scheme F1 diverged (classic {classic:.3}, doph {doph:.3})"
    );
}

#[test]
fn spotsigs_topk_f1_parity() {
    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records: 400,
        num_entities: 50,
        seed: 7,
        ..SpotSigsConfig::default()
    });
    assert_parity("spotsigs", &dataset, &spotsigs::match_rule(0.4), 10);
}

#[test]
fn cora_topk_f1_parity() {
    let (dataset, _) = cora::generate(&CoraConfig {
        num_records: 400,
        num_entities: 60,
        seed: 11,
        ..CoraConfig::default()
    });
    assert_parity("cora", &dataset, &cora::match_rule(), 10);
}
