//! # adalsh-data
//!
//! Record model, distance metrics, and match rules for the adaLSH top-k
//! entity-resolution system.
//!
//! The paper's clustering functions operate over records with one or more
//! *fields*; each field carries either a dense numeric vector (e.g. an RGB
//! histogram for an image) compared with the **cosine (angular) distance**,
//! or a set of shingles / tokens (e.g. the word shingles of a publication
//! title) compared with the **Jaccard distance**. Records are declared a
//! *match* by a [`MatchRule`]: a single threshold on one field, or an
//! AND / OR / weighted-average combination over several fields
//! (paper §3 and Appendix C).
//!
//! This crate is dependency-light on purpose: it defines the vocabulary
//! types every other crate in the workspace speaks.

pub mod dataset;
pub mod distance;
pub mod io;
pub mod record;
pub mod rule;
pub mod shingle;
pub mod store;
pub mod vector;

pub use dataset::{ensure_record_id_capacity, Dataset, EntityId, MAX_RECORDS};
pub use distance::{ExitCounts, FieldDistance};
pub use record::{FieldKind, FieldRef, FieldValue, Record, Schema};
pub use rule::MatchRule;
pub use shingle::ShingleSet;
pub use store::{RecordFields, RecordStore, RecordView};
pub use vector::DenseVector;
