//! Per-field distance metrics, all normalized to `[0, 1]`.
//!
//! The LSH machinery in this workspace (paper §3, Appendix A) assumes the
//! collision probability of its elementary hash families is `p(x) = 1 − x`
//! for distance `x ∈ [0, 1]`. Both metrics here satisfy that for their
//! natural family:
//!
//! * [`FieldDistance::Angular`] — normalized angle `θ/180`, matched by the
//!   random-hyperplane family (paper Example 6);
//! * [`FieldDistance::Jaccard`] — Jaccard distance, matched by MinHash
//!   (paper Appendix C.1, "the family of minhash functions for the Jaccard
//!   distance").

use serde::{Deserialize, Serialize};

use crate::record::{FieldKind, FieldRef, FieldValue};
use crate::{shingle, vector};

/// Tally of threshold-kernel invocations and how many of them resolved
/// on an early-exit path (size-ratio bound, cosine-space compare, or a
/// degenerate input) without computing the exact distance. Purely
/// observational: verdicts and cost accounting are identical whether or
/// not anyone counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExitCounts {
    /// Threshold-kernel invocations.
    pub checks: u64,
    /// Invocations resolved without the exact distance computation.
    pub early_exits: u64,
}

impl ExitCounts {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &ExitCounts) {
        self.checks += other.checks;
        self.early_exits += other.early_exits;
    }
}

/// A normalized distance metric over one field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldDistance {
    /// Normalized angular (cosine) distance `θ / 180` over dense vectors.
    Angular,
    /// Jaccard distance `1 − |A∩B|/|A∪B|` over shingle sets.
    Jaccard,
}

impl FieldDistance {
    /// The field kind this metric applies to.
    pub fn expected_kind(self) -> FieldKind {
        match self {
            FieldDistance::Angular => FieldKind::Dense,
            FieldDistance::Jaccard => FieldKind::Shingles,
        }
    }

    /// Evaluates the distance between two field values.
    ///
    /// # Panics
    /// Panics if either value's kind does not match the metric.
    pub fn eval(self, a: &FieldValue, b: &FieldValue) -> f64 {
        self.eval_ref(a.as_ref(), b.as_ref())
    }

    /// [`FieldDistance::eval`] over borrowed [`FieldRef`] payloads — the
    /// canonical kernel entry point shared by the in-RAM and mapped-store
    /// paths.
    ///
    /// # Panics
    /// Panics if either ref's kind does not match the metric.
    pub fn eval_ref(self, a: FieldRef<'_>, b: FieldRef<'_>) -> f64 {
        match self {
            FieldDistance::Angular => {
                let (a, b) = (a.as_dense(), b.as_dense());
                vector::angle_degrees_with_norms(a, b, vector::norm(a), vector::norm(b)) / 180.0
            }
            FieldDistance::Jaccard => shingle::jaccard_distance(a.as_shingles(), b.as_shingles()),
        }
    }

    /// [`FieldDistance::eval`] with caller-supplied vector norms
    /// (`Dataset::field_norm`). For [`FieldDistance::Angular`] this skips
    /// the two per-call norm recomputations; for
    /// [`FieldDistance::Jaccard`] the norms are ignored. Bit-identical to
    /// `eval` when the norms are the vectors' own.
    ///
    /// # Panics
    /// Panics if either value's kind does not match the metric.
    pub fn eval_with_norms(self, a: &FieldValue, b: &FieldValue, norm_a: f64, norm_b: f64) -> f64 {
        self.eval_with_norms_ref(a.as_ref(), b.as_ref(), norm_a, norm_b)
    }

    /// [`FieldDistance::eval_with_norms`] over borrowed [`FieldRef`]
    /// payloads.
    ///
    /// # Panics
    /// Panics if either ref's kind does not match the metric.
    pub fn eval_with_norms_ref(
        self,
        a: FieldRef<'_>,
        b: FieldRef<'_>,
        norm_a: f64,
        norm_b: f64,
    ) -> f64 {
        match self {
            FieldDistance::Angular => {
                vector::angle_degrees_with_norms(a.as_dense(), b.as_dense(), norm_a, norm_b) / 180.0
            }
            FieldDistance::Jaccard => shingle::jaccard_distance(a.as_shingles(), b.as_shingles()),
        }
    }

    /// Threshold fast path: `eval(a, b) <= dthr`, decided with the
    /// cheapest safe kernel — cached norms plus a guarded cosine-space
    /// compare for the angular metric
    /// ([`crate::DenseVector::angular_at_most_with_norms`]), the
    /// size-ratio early exit plus galloping intersection for Jaccard
    /// ([`crate::ShingleSet::jaccard_at_most`]). The verdict is
    /// **bit-identical** to evaluating the full distance and comparing;
    /// only the work to reach it shrinks. Cost accounting is unaffected:
    /// callers charge per elementary distance regardless of early exits
    /// (the paper's Definition 3 is conservative).
    ///
    /// # Panics
    /// Panics if either value's kind does not match the metric.
    pub fn distance_at_most(
        self,
        a: &FieldValue,
        b: &FieldValue,
        dthr: f64,
        norm_a: f64,
        norm_b: f64,
    ) -> bool {
        self.distance_at_most_counted(a, b, dthr, norm_a, norm_b).0
    }

    /// [`FieldDistance::distance_at_most`] reporting whether the verdict
    /// was reached on an early-exit path: `(verdict, resolved_early)`.
    /// The verdict is bit-identical either way; the flag feeds the
    /// [`ExitCounts`] observability tally only.
    ///
    /// # Panics
    /// Panics if either value's kind does not match the metric.
    pub fn distance_at_most_counted(
        self,
        a: &FieldValue,
        b: &FieldValue,
        dthr: f64,
        norm_a: f64,
        norm_b: f64,
    ) -> (bool, bool) {
        self.distance_at_most_counted_ref(a.as_ref(), b.as_ref(), dthr, norm_a, norm_b)
    }

    /// [`FieldDistance::distance_at_most_counted`] over borrowed
    /// [`FieldRef`] payloads — the kernel the pairwise verification loop
    /// runs regardless of whether the records live in RAM or in a mapped
    /// store file.
    ///
    /// # Panics
    /// Panics if either ref's kind does not match the metric.
    pub fn distance_at_most_counted_ref(
        self,
        a: FieldRef<'_>,
        b: FieldRef<'_>,
        dthr: f64,
        norm_a: f64,
        norm_b: f64,
    ) -> (bool, bool) {
        match self {
            FieldDistance::Angular => vector::angular_at_most_with_norms_counted(
                a.as_dense(),
                b.as_dense(),
                dthr,
                norm_a,
                norm_b,
            ),
            FieldDistance::Jaccard => {
                shingle::jaccard_at_most_counted(a.as_shingles(), b.as_shingles(), dthr)
            }
        }
    }

    /// The collision probability `p(x)` of the metric's natural LSH family
    /// at distance `x` — `1 − x` for both families shipped here.
    ///
    /// Exposed so the scheme optimizer (Program (1)–(3), paper §5.1) can be
    /// driven directly from a [`FieldDistance`].
    pub fn collision_prob(self, x: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&x), "distance out of range: {x}");
        1.0 - x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shingle::ShingleSet;
    use crate::vector::DenseVector;

    #[test]
    fn angular_eval() {
        let a = FieldValue::Dense(DenseVector::new(vec![1.0, 0.0]));
        let b = FieldValue::Dense(DenseVector::new(vec![0.0, 1.0]));
        assert!((FieldDistance::Angular.eval(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_eval() {
        let a = FieldValue::Shingles(ShingleSet::new(vec![1, 2, 3, 4]));
        let b = FieldValue::Shingles(ShingleSet::new(vec![3, 4, 5]));
        assert!((FieldDistance::Jaccard.eval(&a, &b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn collision_prob_is_one_minus_x() {
        assert_eq!(FieldDistance::Angular.collision_prob(0.0), 1.0);
        assert_eq!(FieldDistance::Jaccard.collision_prob(1.0), 0.0);
        assert!((FieldDistance::Angular.collision_prob(0.25) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn fast_paths_agree_with_eval() {
        let sh = |v: &[u64]| FieldValue::Shingles(ShingleSet::new(v.to_vec()));
        let dn = |v: &[f64]| FieldValue::Dense(DenseVector::new(v.to_vec()));
        let jacc_pairs = [
            (sh(&[1, 2, 3, 4]), sh(&[3, 4, 5])),
            (sh(&[1]), sh(&(0..40).collect::<Vec<_>>())),
            (sh(&[]), sh(&[7])),
        ];
        for (a, b) in &jacc_pairs {
            for t in [0.0, 0.3, 0.6, 1.0] {
                assert_eq!(
                    FieldDistance::Jaccard.distance_at_most(a, b, t, 0.0, 0.0),
                    FieldDistance::Jaccard.eval(a, b) <= t
                );
            }
        }
        let dense_pairs = [
            (dn(&[1.0, 0.0]), dn(&[0.0, 1.0])),
            (dn(&[0.3, -0.7]), dn(&[0.3, -0.7])),
            (dn(&[0.0, 0.0]), dn(&[1.0, 2.0])),
        ];
        for (a, b) in &dense_pairs {
            let (na, nb) = (a.as_dense().norm(), b.as_dense().norm());
            assert_eq!(
                FieldDistance::Angular
                    .eval_with_norms(a, b, na, nb)
                    .to_bits(),
                FieldDistance::Angular.eval(a, b).to_bits()
            );
            for t in [0.0, 0.4, 0.5, 1.0] {
                assert_eq!(
                    FieldDistance::Angular.distance_at_most(a, b, t, na, nb),
                    FieldDistance::Angular.eval(a, b) <= t
                );
            }
        }
    }

    #[test]
    fn expected_kinds() {
        assert_eq!(FieldDistance::Angular.expected_kind(), FieldKind::Dense);
        assert_eq!(FieldDistance::Jaccard.expected_kind(), FieldKind::Shingles);
    }

    #[test]
    #[should_panic]
    fn kind_mismatch_panics() {
        let a = FieldValue::Shingles(ShingleSet::new(vec![1]));
        let b = FieldValue::Shingles(ShingleSet::new(vec![1]));
        let _ = FieldDistance::Angular.eval(&a, &b);
    }
}
