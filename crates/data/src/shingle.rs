//! Shingle sets and the Jaccard distance.
//!
//! Text fields (publication titles, author lists, spot signatures of web
//! articles — paper §6.3) are represented as *sets of shingles*. Each
//! shingle is pre-hashed to a `u64`, so set operations are cheap integer
//! work regardless of the original token length. Sets are stored as
//! sorted, deduplicated vectors: intersection/union run in a single merge
//! pass and the representation is cache-friendly.

use serde::{Deserialize, Serialize};

/// A set of 64-bit shingle hashes, stored sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShingleSet(Vec<u64>);

impl ShingleSet {
    /// Builds a set from arbitrary (unsorted, possibly duplicated) hashes.
    pub fn new(mut shingles: Vec<u64>) -> Self {
        shingles.sort_unstable();
        shingles.dedup();
        Self(shingles)
    }

    /// Builds a set by hashing string tokens with [`hash_token`].
    pub fn from_tokens<S: AsRef<str>>(tokens: impl IntoIterator<Item = S>) -> Self {
        Self::new(tokens.into_iter().map(|t| hash_token(t.as_ref())).collect())
    }

    /// Builds the set of `k`-gram word shingles of `text` (whitespace
    /// tokenization, lowercased). `k = 1` yields the bag-of-words set.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn word_shingles(text: &str, k: usize) -> Self {
        assert!(k > 0, "shingle length must be positive");
        let tokens: Vec<String> = text.split_whitespace().map(|t| t.to_lowercase()).collect();
        if tokens.len() < k {
            // Shorter than one shingle: fall back to the whole text as a
            // single shingle so tiny fields still compare meaningfully.
            if tokens.is_empty() {
                return Self(Vec::new());
            }
            return Self::new(vec![hash_token(&tokens.join(" "))]);
        }
        let shingles = tokens
            .windows(k)
            .map(|w| hash_token(&w.join(" ")))
            .collect();
        Self::new(shingles)
    }

    /// Number of distinct shingles.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sorted view of the shingle hashes.
    pub fn shingles(&self) -> &[u64] {
        &self.0
    }

    /// Size of the intersection with `other` (single merge pass).
    pub fn intersection_size(&self, other: &Self) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Jaccard *similarity* `|A ∩ B| / |A ∪ B| ∈ [0, 1]`.
    ///
    /// Two empty sets are defined to be identical (similarity 1).
    pub fn jaccard_similarity(&self, other: &Self) -> f64 {
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let inter = self.intersection_size(other);
        let union = self.0.len() + other.0.len() - inter;
        inter as f64 / union as f64
    }

    /// Jaccard *distance* `1 − similarity ∈ [0, 1]` — the form every LSH
    /// component in this workspace consumes.
    pub fn jaccard_distance(&self, other: &Self) -> f64 {
        1.0 - self.jaccard_similarity(other)
    }
}

/// Hashes a token to a `u64` with the FNV-1a function.
///
/// FNV-1a is tiny, has no dependencies, and its diffusion is more than
/// enough for shingle identity; MinHash applies its own mixing on top.
pub fn hash_token(token: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let s = ShingleSet::new(vec![5, 1, 5, 3, 1]);
        assert_eq!(s.shingles(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn intersection_size_merge() {
        let a = ShingleSet::new(vec![1, 2, 3, 4]);
        let b = ShingleSet::new(vec![3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
    }

    #[test]
    fn jaccard_known_value() {
        let a = ShingleSet::new(vec![1, 2, 3, 4]);
        let b = ShingleSet::new(vec![3, 4, 5]);
        // |A ∩ B| = 2, |A ∪ B| = 5.
        assert!((a.jaccard_similarity(&b) - 0.4).abs() < 1e-12);
        assert!((a.jaccard_distance(&b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn jaccard_identical_sets() {
        let a = ShingleSet::new(vec![7, 8]);
        assert_eq!(a.jaccard_similarity(&a.clone()), 1.0);
        assert_eq!(a.jaccard_distance(&a.clone()), 0.0);
    }

    #[test]
    fn jaccard_disjoint_sets() {
        let a = ShingleSet::new(vec![1]);
        let b = ShingleSet::new(vec![2]);
        assert_eq!(a.jaccard_similarity(&b), 0.0);
        assert_eq!(a.jaccard_distance(&b), 1.0);
    }

    #[test]
    fn jaccard_empty_sets_match() {
        let e = ShingleSet::new(vec![]);
        assert_eq!(e.jaccard_similarity(&e.clone()), 1.0);
    }

    #[test]
    fn jaccard_empty_vs_nonempty() {
        let e = ShingleSet::new(vec![]);
        let a = ShingleSet::new(vec![1]);
        assert_eq!(e.jaccard_similarity(&a), 0.0);
    }

    #[test]
    fn word_shingles_bigrams() {
        let s = ShingleSet::word_shingles("the quick brown fox", 2);
        // "the quick", "quick brown", "brown fox"
        assert_eq!(s.len(), 3);
        let t = ShingleSet::word_shingles("THE QUICK brown fox", 2);
        assert_eq!(s, t, "shingling must be case-insensitive");
    }

    #[test]
    fn word_shingles_short_text() {
        let s = ShingleSet::word_shingles("hello", 3);
        assert_eq!(s.len(), 1);
        let e = ShingleSet::word_shingles("   ", 3);
        assert!(e.is_empty());
    }

    #[test]
    fn from_tokens_matches_manual_hash() {
        let s = ShingleSet::from_tokens(["a", "b"]);
        let manual = ShingleSet::new(vec![hash_token("a"), hash_token("b")]);
        assert_eq!(s, manual);
    }

    #[test]
    fn hash_token_distinguishes_tokens() {
        assert_ne!(hash_token("abc"), hash_token("abd"));
        assert_ne!(hash_token(""), hash_token("a"));
    }
}
