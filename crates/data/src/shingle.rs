//! Shingle sets and the Jaccard distance.
//!
//! Text fields (publication titles, author lists, spot signatures of web
//! articles — paper §6.3) are represented as *sets of shingles*. Each
//! shingle is pre-hashed to a `u64`, so set operations are cheap integer
//! work regardless of the original token length. Sets are stored as
//! sorted, deduplicated vectors: intersection/union run in a single merge
//! pass and the representation is cache-friendly.

use serde::{Deserialize, Serialize};

/// Size ratio `|large| / |small|` at which [`ShingleSet::intersection_size`]
/// switches from the linear merge to galloping search.
pub const GALLOP_RATIO: usize = 8;

/// A set of 64-bit shingle hashes, stored sorted and deduplicated.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShingleSet(Vec<u64>);

impl ShingleSet {
    /// Builds a set from arbitrary (unsorted, possibly duplicated) hashes.
    pub fn new(mut shingles: Vec<u64>) -> Self {
        shingles.sort_unstable();
        shingles.dedup();
        Self(shingles)
    }

    /// Builds a set by hashing string tokens with [`hash_token`].
    pub fn from_tokens<S: AsRef<str>>(tokens: impl IntoIterator<Item = S>) -> Self {
        Self::new(tokens.into_iter().map(|t| hash_token(t.as_ref())).collect())
    }

    /// Builds the set of `k`-gram word shingles of `text` (whitespace
    /// tokenization, lowercased). `k = 1` yields the bag-of-words set.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn word_shingles(text: &str, k: usize) -> Self {
        assert!(k > 0, "shingle length must be positive");
        let tokens: Vec<String> = text.split_whitespace().map(|t| t.to_lowercase()).collect();
        if tokens.len() < k {
            // Shorter than one shingle: fall back to the whole text as a
            // single shingle so tiny fields still compare meaningfully.
            if tokens.is_empty() {
                return Self(Vec::new());
            }
            return Self::new(vec![hash_token(&tokens.join(" "))]);
        }
        let shingles = tokens
            .windows(k)
            .map(|w| hash_token(&w.join(" ")))
            .collect();
        Self::new(shingles)
    }

    /// Number of distinct shingles.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Sorted view of the shingle hashes.
    pub fn shingles(&self) -> &[u64] {
        &self.0
    }

    /// Size of the intersection with `other`.
    ///
    /// Comparable-size inputs use a single merge pass; when one set is at
    /// least [`GALLOP_RATIO`] times larger, the merge would walk the large
    /// set element by element, so a galloping search (exponential probe +
    /// binary search per small-set element, `O(|small| · log |large|)`)
    /// is used instead. Both paths return the exact same count.
    pub fn intersection_size(&self, other: &Self) -> usize {
        intersection_size(&self.0, &other.0)
    }

    /// Intersection size via the linear merge pass. Exposed so the
    /// galloping path can be pinned against it in tests and benches.
    ///
    /// The cursor updates are written as boolean-to-integer additions
    /// instead of a three-way `match`: with sorted inputs the comparison
    /// outcome is near-random, so the data-dependent form (flag
    /// arithmetic, no conditional control flow inside the loop) avoids a
    /// branch misprediction per element. The counts are identical to the
    /// three-way merge: on equality both cursors advance and the element
    /// is counted once.
    pub fn intersection_size_merge(&self, other: &Self) -> usize {
        intersection_size_merge(&self.0, &other.0)
    }

    /// Intersection size via galloping: for each element of `self` (the
    /// smaller set), probe forward in `other` with doubling steps from
    /// the last hit position, then binary-search the bracketed run.
    /// Exposed so tests can pin it against the merge on any size ratio.
    pub fn intersection_size_galloping(&self, other: &Self) -> usize {
        intersection_size_galloping(&self.0, &other.0)
    }

    /// Jaccard *similarity* `|A ∩ B| / |A ∪ B| ∈ [0, 1]`.
    ///
    /// Two empty sets are defined to be identical (similarity 1).
    pub fn jaccard_similarity(&self, other: &Self) -> f64 {
        jaccard_similarity(&self.0, &other.0)
    }

    /// Jaccard *distance* `1 − similarity ∈ [0, 1]` — the form every LSH
    /// component in this workspace consumes.
    pub fn jaccard_distance(&self, other: &Self) -> f64 {
        jaccard_distance(&self.0, &other.0)
    }

    /// Threshold check `jaccard_distance(other) <= dthr` with a size-ratio
    /// early exit: the similarity is at most `min(|A|,|B|) / max(|A|,|B|)`
    /// (the intersection is bounded by the smaller set, the union by the
    /// larger), so when that bound already falls below the required
    /// similarity the sets cannot match and the intersection is never
    /// computed.
    ///
    /// The early exit is evaluated with the same rounding-monotone
    /// operations (`/`, `1.0 −`, `<=`) as the exact path, so it fires only
    /// when the exact comparison is guaranteed to fail: the result is
    /// **bit-identical** to `jaccard_distance(other) <= dthr` for every
    /// input, including empty sets and thresholds of exactly 0 or 1.
    pub fn jaccard_at_most(&self, other: &Self, dthr: f64) -> bool {
        self.jaccard_at_most_counted(other, dthr).0
    }

    /// [`ShingleSet::jaccard_at_most`] reporting whether the verdict was
    /// reached without computing the exact distance: `(verdict,
    /// resolved_early)`. The verdict is bit-identical to
    /// `jaccard_distance(other) <= dthr` either way; the flag feeds the
    /// kernel hit-rate observability counters only.
    pub fn jaccard_at_most_counted(&self, other: &Self, dthr: f64) -> (bool, bool) {
        jaccard_at_most_counted(&self.0, &other.0, dthr)
    }
}

/// Slice form of [`ShingleSet::intersection_size`]: merge-vs-gallop
/// dispatch over raw sorted-deduplicated slices. This is the single
/// implementation both the owned in-RAM path and the zero-copy store
/// path run, so their counts agree exactly.
pub fn intersection_size(a: &[u64], b: &[u64]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() >= GALLOP_RATIO * small.len() {
        intersection_size_galloping(small, large)
    } else {
        intersection_size_merge(small, large)
    }
}

/// Slice form of [`ShingleSet::intersection_size_merge`]; see that
/// method for the branchless-cursor rationale.
pub fn intersection_size_merge(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        n += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    n
}

/// Slice form of [`ShingleSet::intersection_size_galloping`]: `small`
/// drives the probes, `large` is searched.
pub fn intersection_size_galloping(small: &[u64], large: &[u64]) -> usize {
    let (mut lo, mut n) = (0usize, 0usize);
    for &x in small {
        if lo >= large.len() {
            break;
        }
        let pos = if large[lo] >= x {
            lo
        } else {
            // Invariant: large[base] < x. Double the step until the
            // probe overshoots, then binary-search the bracket.
            let mut base = lo;
            let mut step = 1;
            while base + step < large.len() && large[base + step] < x {
                base += step;
                step *= 2;
            }
            let hi = (base + step).min(large.len());
            // The first element >= x (if any) lies in (base, hi].
            base + 1 + large[base + 1..hi].partition_point(|&y| y < x)
        };
        if pos < large.len() && large[pos] == x {
            n += 1;
            lo = pos + 1;
        } else {
            lo = pos;
        }
    }
    n
}

/// Slice form of [`ShingleSet::jaccard_similarity`].
pub fn jaccard_similarity(a: &[u64], b: &[u64]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = intersection_size(a, b);
    let union = a.len() + b.len() - inter;
    inter as f64 / union as f64
}

/// Slice form of [`ShingleSet::jaccard_distance`].
pub fn jaccard_distance(a: &[u64], b: &[u64]) -> f64 {
    1.0 - jaccard_similarity(a, b)
}

/// Slice form of [`ShingleSet::jaccard_at_most_counted`]; see
/// [`ShingleSet::jaccard_at_most`] for the size-ratio early-exit safety
/// argument.
pub fn jaccard_at_most_counted(a: &[u64], b: &[u64], dthr: f64) -> (bool, bool) {
    if a.is_empty() && b.is_empty() {
        // Distance defined as 0 for two empty sets.
        return (0.0 <= dthr, true);
    }
    let small = a.len().min(b.len());
    let large = a.len().max(b.len());
    // similarity <= small/large, and x -> 1.0 - x, / are monotone under
    // IEEE round-to-nearest, so this bound exceeding dthr implies the
    // exact distance does too.
    if 1.0 - (small as f64 / large as f64) > dthr {
        return (false, true);
    }
    (jaccard_distance(a, b) <= dthr, false)
}

/// Hashes a token to a `u64` with the FNV-1a function.
///
/// FNV-1a is tiny, has no dependencies, and its diffusion is more than
/// enough for shingle identity; MinHash applies its own mixing on top.
pub fn hash_token(token: &str) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in token.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_sort() {
        let s = ShingleSet::new(vec![5, 1, 5, 3, 1]);
        assert_eq!(s.shingles(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn intersection_size_merge() {
        let a = ShingleSet::new(vec![1, 2, 3, 4]);
        let b = ShingleSet::new(vec![3, 4, 5]);
        assert_eq!(a.intersection_size(&b), 2);
        assert_eq!(b.intersection_size(&a), 2);
    }

    #[test]
    fn jaccard_known_value() {
        let a = ShingleSet::new(vec![1, 2, 3, 4]);
        let b = ShingleSet::new(vec![3, 4, 5]);
        // |A ∩ B| = 2, |A ∪ B| = 5.
        assert!((a.jaccard_similarity(&b) - 0.4).abs() < 1e-12);
        assert!((a.jaccard_distance(&b) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn jaccard_identical_sets() {
        let a = ShingleSet::new(vec![7, 8]);
        assert_eq!(a.jaccard_similarity(&a.clone()), 1.0);
        assert_eq!(a.jaccard_distance(&a.clone()), 0.0);
    }

    #[test]
    fn jaccard_disjoint_sets() {
        let a = ShingleSet::new(vec![1]);
        let b = ShingleSet::new(vec![2]);
        assert_eq!(a.jaccard_similarity(&b), 0.0);
        assert_eq!(a.jaccard_distance(&b), 1.0);
    }

    #[test]
    fn jaccard_empty_sets_match() {
        let e = ShingleSet::new(vec![]);
        assert_eq!(e.jaccard_similarity(&e.clone()), 1.0);
    }

    #[test]
    fn jaccard_empty_vs_nonempty() {
        let e = ShingleSet::new(vec![]);
        let a = ShingleSet::new(vec![1]);
        assert_eq!(e.jaccard_similarity(&a), 0.0);
    }

    #[test]
    fn word_shingles_bigrams() {
        let s = ShingleSet::word_shingles("the quick brown fox", 2);
        // "the quick", "quick brown", "brown fox"
        assert_eq!(s.len(), 3);
        let t = ShingleSet::word_shingles("THE QUICK brown fox", 2);
        assert_eq!(s, t, "shingling must be case-insensitive");
    }

    #[test]
    fn word_shingles_short_text() {
        let s = ShingleSet::word_shingles("hello", 3);
        assert_eq!(s.len(), 1);
        let e = ShingleSet::word_shingles("   ", 3);
        assert!(e.is_empty());
    }

    /// Simple deterministic pseudo-random stream for test data.
    fn lcg(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 16
        }
    }

    #[test]
    fn galloping_equals_merge_random_sets() {
        let mut rng = lcg(42);
        for case in 0..200 {
            let la = (case % 37) + 1;
            let lb = ((case * 7) % 211) + 1;
            let modulus = 1 + (case as u64 % 97) * 4;
            let a = ShingleSet::new((0..la).map(|_| rng() % modulus).collect());
            let b = ShingleSet::new((0..lb).map(|_| rng() % modulus).collect());
            assert_eq!(
                a.intersection_size_galloping(&b),
                a.intersection_size_merge(&b),
                "case {case}: a={:?} b={:?}",
                a.shingles(),
                b.shingles()
            );
            assert_eq!(a.intersection_size(&b), a.intersection_size_merge(&b));
            assert_eq!(b.intersection_size(&a), a.intersection_size_merge(&b));
        }
    }

    #[test]
    fn galloping_equals_merge_adversarial_sets() {
        let nested_small = ShingleSet::new((0..8).map(|i| i * 100).collect());
        let nested_large = ShingleSet::new((0..800).collect());
        let disjoint_low = ShingleSet::new((0..16).collect());
        let disjoint_high = ShingleSet::new((1000..1600).collect());
        let interleaved = ShingleSet::new((0..500).map(|i| i * 2).collect());
        let odd = ShingleSet::new((0..50).map(|i| i * 2 + 1).collect());
        let empty = ShingleSet::new(vec![]);
        let single = ShingleSet::new(vec![250]);
        let cases = [
            (&nested_small, &nested_large),  // small fully contained
            (&disjoint_low, &disjoint_high), // disjoint, all-below
            (&disjoint_high, &disjoint_low), // disjoint, all-above
            (&odd, &interleaved),            // duplicate-free interleave, no hits
            (&single, &interleaved),         // one element, found mid-run
            (&empty, &nested_large),         // empty small side
        ];
        for (a, b) in cases {
            assert_eq!(
                a.intersection_size_galloping(b),
                a.intersection_size_merge(b),
                "a={:?} b={:?}",
                a.shingles(),
                b.shingles()
            );
            assert_eq!(a.intersection_size(b), b.intersection_size(a));
        }
    }

    #[test]
    fn gallop_ratio_dispatch_is_invisible() {
        // Straddle the dispatch boundary: |large| = 8 * |small| ± 1.
        let small = ShingleSet::new(vec![3, 80, 161]);
        for n in [23usize, 24, 25] {
            let large = ShingleSet::new((0..n as u64).map(|i| i * 7).collect());
            assert_eq!(
                small.intersection_size(&large),
                small.intersection_size_merge(&large)
            );
        }
    }

    #[test]
    fn jaccard_at_most_equals_exact_check() {
        let mut rng = lcg(7);
        let thresholds = [0.0, 0.1, 0.4, 0.6, 0.9, 1.0];
        for case in 0..120 {
            let la = case % 31;
            let lb = (case * 11) % 257;
            let a = ShingleSet::new((0..la).map(|_| rng() % 64).collect());
            let b = ShingleSet::new((0..lb).map(|_| rng() % 64).collect());
            for &t in &thresholds {
                assert_eq!(
                    a.jaccard_at_most(&b, t),
                    a.jaccard_distance(&b) <= t,
                    "case {case} thr {t}"
                );
            }
        }
    }

    #[test]
    fn jaccard_at_most_size_ratio_exit() {
        // |A| = 2, |B| = 40: similarity can be at most 0.05, so a 0.5
        // threshold (requiring similarity >= 0.5) must fail even though
        // A ⊂ B.
        let a = ShingleSet::new(vec![0, 1]);
        let b = ShingleSet::new((0..40).collect());
        assert!(!a.jaccard_at_most(&b, 0.5));
        assert!(a.jaccard_at_most(&b, 0.95));
        // Empty-set edge cases.
        let e = ShingleSet::new(vec![]);
        assert!(e.jaccard_at_most(&e.clone(), 0.0));
        assert!(!e.jaccard_at_most(&a, 0.99));
        assert!(e.jaccard_at_most(&a, 1.0));
    }

    #[test]
    fn from_tokens_matches_manual_hash() {
        let s = ShingleSet::from_tokens(["a", "b"]);
        let manual = ShingleSet::new(vec![hash_token("a"), hash_token("b")]);
        assert_eq!(s, manual);
    }

    #[test]
    fn hash_token_distinguishes_tokens() {
        assert_ne!(hash_token("abc"), hash_token("abd"));
        assert_ne!(hash_token(""), hash_token("a"));
    }
}
