//! Datasets: records plus ground-truth entity labels.
//!
//! A [`Dataset`] owns the records handed to a filtering method and, for
//! evaluation, the ground-truth clustering `C* = {C*₁, …}` (paper §2.1):
//! each record refers to exactly one entity. Ground truth is *never*
//! consulted by the filtering algorithms themselves — only by the accuracy
//! metrics and the "perfect recovery" process of §6.2.

use serde::{Deserialize, Serialize};

use crate::record::{Record, Schema};

/// Opaque entity label. Records with equal labels refer to the same entity.
pub type EntityId = u32;

/// A set of records with a schema and ground-truth entity labels.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
    /// `ground_truth[i]` is the entity of record `i`.
    ground_truth: Vec<EntityId>,
}

impl Dataset {
    /// Creates a dataset, validating every record against the schema.
    ///
    /// # Panics
    /// Panics if lengths disagree, the dataset is empty, or any record
    /// fails schema validation.
    pub fn new(schema: Schema, records: Vec<Record>, ground_truth: Vec<EntityId>) -> Self {
        assert_eq!(
            records.len(),
            ground_truth.len(),
            "one ground-truth label per record"
        );
        assert!(!records.is_empty(), "dataset must be non-empty");
        for (i, r) in records.iter().enumerate() {
            if let Err(e) = schema.validate(r) {
                panic!("record {i} violates schema: {e}");
            }
        }
        Self {
            schema,
            records,
            ground_truth,
        }
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records `|R|`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty (never, by construction — kept for idiom).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with id `i`.
    pub fn record(&self, i: u32) -> &Record {
        &self.records[i as usize]
    }

    /// All records in id order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Ground-truth entity of record `i`.
    pub fn entity_of(&self, i: u32) -> EntityId {
        self.ground_truth[i as usize]
    }

    /// Ground-truth labels in record-id order.
    pub fn ground_truth(&self) -> &[EntityId] {
        &self.ground_truth
    }

    /// The ground-truth clustering `C*`, **sorted by descending cluster
    /// size** (ties broken by ascending entity id, for determinism).
    /// Each cluster lists record ids in ascending order.
    pub fn ground_truth_clusters(&self) -> Vec<Vec<u32>> {
        let mut by_entity: std::collections::BTreeMap<EntityId, Vec<u32>> =
            std::collections::BTreeMap::new();
        for (i, &e) in self.ground_truth.iter().enumerate() {
            by_entity.entry(e).or_default().push(i as u32);
        }
        let mut clusters: Vec<(EntityId, Vec<u32>)> = by_entity.into_iter().collect();
        clusters.sort_by(|(ea, a), (eb, b)| b.len().cmp(&a.len()).then(ea.cmp(eb)));
        clusters.into_iter().map(|(_, c)| c).collect()
    }

    /// Record ids of the `k` largest ground-truth entities — the gold
    /// output `O*` of the filtering stage (paper §2.1). If the dataset has
    /// fewer than `k` entities, all records are returned.
    pub fn gold_records(&self, k: usize) -> Vec<u32> {
        let clusters = self.ground_truth_clusters();
        let mut out: Vec<u32> = clusters.into_iter().take(k).flatten().collect();
        out.sort_unstable();
        out
    }

    /// Sizes of all ground-truth entities, descending.
    pub fn entity_sizes(&self) -> Vec<usize> {
        self.ground_truth_clusters().iter().map(Vec::len).collect()
    }

    /// Number of distinct entities.
    pub fn num_entities(&self) -> usize {
        let mut ids: Vec<EntityId> = self.ground_truth.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Restricts the dataset to the records with the given ids (in the
    /// given order), remapping ids to `0..ids.len()`. Useful for building
    /// reduced datasets from a filtering output.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn subset(&self, ids: &[u32]) -> Dataset {
        let records = ids.iter().map(|&i| self.record(i).clone()).collect();
        let gt = ids.iter().map(|&i| self.entity_of(i)).collect();
        Dataset::new(self.schema.clone(), records, gt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldKind, FieldValue};
    use crate::shingle::ShingleSet;

    fn toy() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let recs: Vec<Record> = (0..6)
            .map(|i| Record::single(FieldValue::Shingles(ShingleSet::new(vec![i]))))
            .collect();
        // entity 7: records 0,1,2 — entity 3: records 3,4 — entity 9: record 5
        Dataset::new(schema, recs, vec![7, 7, 7, 3, 3, 9])
    }

    #[test]
    fn clusters_sorted_by_size_desc() {
        let d = toy();
        let c = d.ground_truth_clusters();
        assert_eq!(c, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn gold_records_top_k() {
        let d = toy();
        assert_eq!(d.gold_records(1), vec![0, 1, 2]);
        assert_eq!(d.gold_records(2), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.gold_records(10), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn entity_sizes_and_count() {
        let d = toy();
        assert_eq!(d.entity_sizes(), vec![3, 2, 1]);
        assert_eq!(d.num_entities(), 3);
    }

    #[test]
    fn size_tie_broken_by_entity_id() {
        let schema = Schema::single("s", FieldKind::Shingles);
        let recs: Vec<Record> = (0..4)
            .map(|i| Record::single(FieldValue::Shingles(ShingleSet::new(vec![i]))))
            .collect();
        // Two entities of size 2: entity 5 (records 2,3) and entity 8 (0,1).
        let d = Dataset::new(schema, recs, vec![8, 8, 5, 5]);
        let c = d.ground_truth_clusters();
        assert_eq!(c[0], vec![2, 3], "lower entity id wins ties");
    }

    #[test]
    fn subset_remaps() {
        let d = toy();
        let s = d.subset(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.entity_of(0), 9);
        assert_eq!(s.entity_of(1), 7);
    }

    #[test]
    #[should_panic(expected = "one ground-truth label per record")]
    fn mismatched_lengths_panic() {
        let schema = Schema::single("s", FieldKind::Shingles);
        let recs = vec![Record::single(FieldValue::Shingles(ShingleSet::new(vec![
            1,
        ])))];
        let _ = Dataset::new(schema, recs, vec![1, 2]);
    }
}
