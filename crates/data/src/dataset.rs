//! Datasets: records plus ground-truth entity labels.
//!
//! A [`Dataset`] owns the records handed to a filtering method and, for
//! evaluation, the ground-truth clustering `C* = {C*₁, …}` (paper §2.1):
//! each record refers to exactly one entity. Ground truth is *never*
//! consulted by the filtering algorithms themselves — only by the accuracy
//! metrics and the "perfect recovery" process of §6.2.

use serde::{Deserialize, Serialize};

use crate::record::{FieldValue, Record, Schema};

/// Opaque entity label. Records with equal labels refer to the same entity.
pub type EntityId = u32;

/// Maximum number of records any record container may hold: record ids
/// are `u32` indexes, so a container of more than `u32::MAX` records
/// could not address its tail.
pub const MAX_RECORDS: usize = u32::MAX as usize;

/// Checks that a container of `count` records can still address every
/// record with a `u32` id. Shared by [`Dataset::push`], the dataset
/// loaders, and the out-of-core store builder so all ingestion paths
/// fail with the same structured error instead of silently truncating
/// ids.
///
/// # Errors
/// Fails when `count` exceeds [`MAX_RECORDS`].
pub fn ensure_record_id_capacity(count: usize) -> Result<(), String> {
    if count > MAX_RECORDS {
        return Err(format!(
            "{count} records exceed the u32 record-id space (max {MAX_RECORDS})"
        ));
    }
    Ok(())
}

/// A set of records with a schema and ground-truth entity labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    records: Vec<Record>,
    /// `ground_truth[i]` is the entity of record `i`.
    ground_truth: Vec<EntityId>,
    /// Euclidean norm of every dense field, row-major
    /// `[record × num_fields]` (0.0 for shingle fields), computed once at
    /// construction. The pairwise kernels evaluate `O(n²)` angular
    /// distances; recomputing both norms inside every call doubles the
    /// dot-product work, so the cache pays for itself after one pair.
    field_norms: Vec<f64>,
}

impl Dataset {
    /// Creates a dataset, validating every record against the schema.
    ///
    /// # Panics
    /// Panics if lengths disagree, the dataset is empty, or any record
    /// fails schema validation.
    pub fn new(schema: Schema, records: Vec<Record>, ground_truth: Vec<EntityId>) -> Self {
        assert_eq!(
            records.len(),
            ground_truth.len(),
            "one ground-truth label per record"
        );
        assert!(!records.is_empty(), "dataset must be non-empty");
        for (i, r) in records.iter().enumerate() {
            if let Err(e) = schema.validate(r) {
                panic!("record {i} violates schema: {e}");
            }
        }
        let field_norms = compute_field_norms(&records);
        Self {
            schema,
            records,
            ground_truth,
            field_norms,
        }
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records `|R|`.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty (never, by construction — kept for idiom).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with id `i`.
    pub fn record(&self, i: u32) -> &Record {
        &self.records[i as usize]
    }

    /// All records in id order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Ground-truth entity of record `i`.
    pub fn entity_of(&self, i: u32) -> EntityId {
        self.ground_truth[i as usize]
    }

    /// Cached Euclidean norm of field `field` of record `i` — exactly the
    /// bits `record.field(field).as_dense().norm()` would produce, paid
    /// once at construction instead of on every distance evaluation.
    /// Shingle fields report 0.0 (they have no norm).
    pub fn field_norm(&self, i: u32, field: usize) -> f64 {
        self.field_norms[i as usize * self.schema.num_fields() + field]
    }

    /// Ground-truth labels in record-id order.
    pub fn ground_truth(&self) -> &[EntityId] {
        &self.ground_truth
    }

    /// The ground-truth clustering `C*`, **sorted by descending cluster
    /// size** (ties broken by ascending entity id, for determinism).
    /// Each cluster lists record ids in ascending order.
    pub fn ground_truth_clusters(&self) -> Vec<Vec<u32>> {
        crate::store::clusters_from_labels(self.len(), &|i| self.ground_truth[i as usize])
    }

    /// Record ids of the `k` largest ground-truth entities — the gold
    /// output `O*` of the filtering stage (paper §2.1). If the dataset has
    /// fewer than `k` entities, all records are returned.
    pub fn gold_records(&self, k: usize) -> Vec<u32> {
        let clusters = self.ground_truth_clusters();
        let mut out: Vec<u32> = clusters.into_iter().take(k).flatten().collect();
        out.sort_unstable();
        out
    }

    /// Sizes of all ground-truth entities, descending.
    pub fn entity_sizes(&self) -> Vec<usize> {
        self.ground_truth_clusters().iter().map(Vec::len).collect()
    }

    /// Number of distinct entities.
    pub fn num_entities(&self) -> usize {
        let mut ids: Vec<EntityId> = self.ground_truth.clone();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Appends one record, growing the norm cache incrementally — the
    /// resulting dataset is bit-identical (records, labels, and cached
    /// norms) to rebuilding from scratch with [`Dataset::new`]. This is
    /// the online-ingestion path: unlike construction, a bad record is
    /// an `Err`, not a panic.
    ///
    /// # Errors
    /// Fails (leaving the dataset unchanged) if the record violates the
    /// schema or the dataset already holds [`MAX_RECORDS`] records (ids
    /// are `u32`; growing past that would silently truncate them).
    pub fn push(&mut self, record: Record, entity: EntityId) -> Result<u32, String> {
        self.schema.validate(&record)?;
        ensure_record_id_capacity(self.records.len() + 1)?;
        for f in record.fields() {
            self.field_norms.push(match f {
                FieldValue::Dense(v) => v.norm(),
                FieldValue::Shingles(_) => 0.0,
            });
        }
        let id = self.records.len() as u32;
        self.records.push(record);
        self.ground_truth.push(entity);
        Ok(id)
    }

    /// Restricts the dataset to the records with the given ids (in the
    /// given order), remapping ids to `0..ids.len()`. Useful for building
    /// reduced datasets from a filtering output.
    ///
    /// # Panics
    /// Panics if any id is out of range.
    pub fn subset(&self, ids: &[u32]) -> Dataset {
        let records = ids.iter().map(|&i| self.record(i).clone()).collect();
        let gt = ids.iter().map(|&i| self.entity_of(i)).collect();
        Dataset::new(self.schema.clone(), records, gt)
    }
}

fn compute_field_norms(records: &[Record]) -> Vec<f64> {
    let mut norms = Vec::with_capacity(records.len() * records[0].num_fields());
    for r in records {
        for f in r.fields() {
            norms.push(match f {
                FieldValue::Dense(v) => v.norm(),
                FieldValue::Shingles(_) => 0.0,
            });
        }
    }
    norms
}

// Hand-written serde impls: the norm cache is derived data and must stay
// out of the wire format (the vendored derive has no `#[serde(skip)]`).
// Deserialization funnels through `Dataset::new`, which re-validates and
// rebuilds the cache.
impl Serialize for Dataset {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("schema".to_string(), self.schema.to_value()),
            ("records".to_string(), self.records.to_value()),
            ("ground_truth".to_string(), self.ground_truth.to_value()),
        ])
    }
}

impl Deserialize for Dataset {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::custom(format!("Dataset missing field `{name}`")))
        };
        let schema = Schema::from_value(field("schema")?)
            .map_err(|e| serde::Error::in_field("schema", e))?;
        let records = Vec::<Record>::from_value(field("records")?)
            .map_err(|e| serde::Error::in_field("records", e))?;
        let ground_truth = Vec::<EntityId>::from_value(field("ground_truth")?)
            .map_err(|e| serde::Error::in_field("ground_truth", e))?;
        if records.len() != ground_truth.len() || records.is_empty() {
            return Err(serde::Error::custom(
                "Dataset: records/ground_truth length mismatch or empty",
            ));
        }
        for r in &records {
            if let Err(e) = schema.validate(r) {
                return Err(serde::Error::custom(format!("record violates schema: {e}")));
            }
        }
        Ok(Dataset::new(schema, records, ground_truth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldKind, FieldValue};
    use crate::shingle::ShingleSet;

    fn toy() -> Dataset {
        let schema = Schema::single("s", FieldKind::Shingles);
        let recs: Vec<Record> = (0..6)
            .map(|i| Record::single(FieldValue::Shingles(ShingleSet::new(vec![i]))))
            .collect();
        // entity 7: records 0,1,2 — entity 3: records 3,4 — entity 9: record 5
        Dataset::new(schema, recs, vec![7, 7, 7, 3, 3, 9])
    }

    #[test]
    fn clusters_sorted_by_size_desc() {
        let d = toy();
        let c = d.ground_truth_clusters();
        assert_eq!(c, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn gold_records_top_k() {
        let d = toy();
        assert_eq!(d.gold_records(1), vec![0, 1, 2]);
        assert_eq!(d.gold_records(2), vec![0, 1, 2, 3, 4]);
        assert_eq!(d.gold_records(10), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn entity_sizes_and_count() {
        let d = toy();
        assert_eq!(d.entity_sizes(), vec![3, 2, 1]);
        assert_eq!(d.num_entities(), 3);
    }

    #[test]
    fn size_tie_broken_by_entity_id() {
        let schema = Schema::single("s", FieldKind::Shingles);
        let recs: Vec<Record> = (0..4)
            .map(|i| Record::single(FieldValue::Shingles(ShingleSet::new(vec![i]))))
            .collect();
        // Two entities of size 2: entity 5 (records 2,3) and entity 8 (0,1).
        let d = Dataset::new(schema, recs, vec![8, 8, 5, 5]);
        let c = d.ground_truth_clusters();
        assert_eq!(c[0], vec![2, 3], "lower entity id wins ties");
    }

    #[test]
    fn subset_remaps() {
        let d = toy();
        let s = d.subset(&[5, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.entity_of(0), 9);
        assert_eq!(s.entity_of(1), 7);
    }

    #[test]
    fn field_norms_cached_at_construction() {
        use crate::vector::DenseVector;
        let schema = Schema::new(vec![("s", FieldKind::Shingles), ("v", FieldKind::Dense)]);
        let recs = vec![
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(vec![1])),
                FieldValue::Dense(DenseVector::new(vec![3.0, 4.0])),
            ]),
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(vec![2])),
                FieldValue::Dense(DenseVector::new(vec![0.0, 0.0])),
            ]),
        ];
        let d = Dataset::new(schema, recs, vec![0, 1]);
        assert_eq!(d.field_norm(0, 0), 0.0, "shingle fields have no norm");
        assert_eq!(d.field_norm(0, 1).to_bits(), 5.0f64.to_bits());
        assert_eq!(d.field_norm(1, 1), 0.0);
        // The cache holds exactly the bits `norm()` produces.
        for i in 0..2u32 {
            assert_eq!(
                d.field_norm(i, 1).to_bits(),
                d.record(i).field(1).as_dense().norm().to_bits()
            );
        }
    }

    #[test]
    fn serde_roundtrip_rebuilds_norm_cache() {
        let d = toy();
        let json = serde_json::to_string(&d).unwrap();
        assert!(
            !json.contains("field_norms"),
            "cache must stay off the wire"
        );
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.ground_truth(), d.ground_truth());
        for i in 0..d.len() as u32 {
            assert_eq!(back.record(i), d.record(i));
            assert_eq!(
                back.field_norm(i, 0).to_bits(),
                d.field_norm(i, 0).to_bits()
            );
        }
    }

    #[test]
    fn push_matches_from_scratch_construction() {
        use crate::vector::DenseVector;
        let schema = Schema::new(vec![("s", FieldKind::Shingles), ("v", FieldKind::Dense)]);
        let mk = |s: u64, x: f64| {
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(vec![s])),
                FieldValue::Dense(DenseVector::new(vec![x, -x])),
            ])
        };
        let mut grown = Dataset::new(schema.clone(), vec![mk(1, 0.5)], vec![0]);
        assert_eq!(grown.push(mk(2, -3.25), 1).unwrap(), 1);
        assert_eq!(grown.push(mk(3, 7.0), 1).unwrap(), 2);
        let rebuilt = Dataset::new(
            schema,
            vec![mk(1, 0.5), mk(2, -3.25), mk(3, 7.0)],
            vec![0, 1, 1],
        );
        assert_eq!(grown.records(), rebuilt.records());
        assert_eq!(grown.ground_truth(), rebuilt.ground_truth());
        for i in 0..3u32 {
            for f in 0..2 {
                assert_eq!(
                    grown.field_norm(i, f).to_bits(),
                    rebuilt.field_norm(i, f).to_bits()
                );
            }
        }
    }

    #[test]
    fn push_rejects_schema_violation_and_leaves_dataset_intact() {
        let mut d = toy();
        let before = d.len();
        let bad = Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(vec![1])),
            FieldValue::Shingles(ShingleSet::new(vec![2])),
        ]);
        assert!(d.push(bad, 0).is_err());
        assert_eq!(d.len(), before);
        assert_eq!(d.field_norms.len(), before * d.schema().num_fields());
    }

    #[test]
    fn record_id_capacity_guard() {
        assert!(ensure_record_id_capacity(0).is_ok());
        assert!(ensure_record_id_capacity(1).is_ok());
        assert!(ensure_record_id_capacity(MAX_RECORDS).is_ok());
        let err = ensure_record_id_capacity(MAX_RECORDS + 1).unwrap_err();
        assert!(err.contains("u32 record-id space"), "{err}");
        // `push` routes through the same guard (the schema check passes
        // first, so a full dataset fails on capacity, not validation).
        // Exercising it for real would need 2^32 records; the guard
        // function itself is the testable surface.
    }

    #[test]
    #[should_panic(expected = "one ground-truth label per record")]
    fn mismatched_lengths_panic() {
        let schema = Schema::single("s", FieldKind::Shingles);
        let recs = vec![Record::single(FieldValue::Shingles(ShingleSet::new(vec![
            1,
        ])))];
        let _ = Dataset::new(schema, recs, vec![1, 2]);
    }
}
