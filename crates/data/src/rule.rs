//! Match rules: when do two records refer to the same entity?
//!
//! The simplest rule is a single distance threshold (paper §3): records
//! `a`, `b` match when `d(a, b) ≤ dthr`. Real datasets have several fields,
//! so Appendix C extends this to **AND rules**, **OR rules**, **weighted
//! average rules**, and arbitrary combinations of the three. The pairwise
//! computation function `P` (paper Definition 2) evaluates these rules
//! exactly; the transitive hashing functions approximate them with
//! AND-OR-amplified LSH schemes.

use serde::{Deserialize, Serialize};

use crate::distance::{ExitCounts, FieldDistance};
use crate::record::{Record, Schema};
use crate::store::RecordStore;

/// One component of a weighted-average rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedPart {
    /// Field index into the record.
    pub field: usize,
    /// Metric applied to that field.
    pub metric: FieldDistance,
    /// Non-negative weight `αᵢ`; weights of a rule sum to 1.
    pub weight: f64,
}

/// A match rule over multi-field records (paper Appendix C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MatchRule {
    /// `d(f, f') ≤ dthr` on a single field.
    Threshold {
        /// Field index into the record.
        field: usize,
        /// Metric applied to that field.
        metric: FieldDistance,
        /// Normalized distance threshold in `[0, 1]`.
        dthr: f64,
    },
    /// All sub-rules must match (Appendix C.1).
    And(Vec<MatchRule>),
    /// At least one sub-rule must match (Appendix C.2).
    Or(Vec<MatchRule>),
    /// `Σ αᵢ · dᵢ(fᵢ, fᵢ') ≤ dthr` (Appendix C.3).
    WeightedAverage {
        /// The weighted components; weights must sum to 1.
        parts: Vec<WeightedPart>,
        /// Threshold on the weighted-average distance.
        dthr: f64,
    },
}

impl MatchRule {
    /// Convenience constructor for the single-field threshold rule.
    pub fn threshold(field: usize, metric: FieldDistance, dthr: f64) -> Self {
        MatchRule::Threshold {
            field,
            metric,
            dthr,
        }
    }

    /// Do two records match under this rule?
    pub fn matches(&self, a: &Record, b: &Record) -> bool {
        match self {
            MatchRule::Threshold {
                field,
                metric,
                dthr,
            } => metric.eval(a.field(*field), b.field(*field)) <= *dthr,
            MatchRule::And(subs) => subs.iter().all(|r| r.matches(a, b)),
            MatchRule::Or(subs) => subs.iter().any(|r| r.matches(a, b)),
            MatchRule::WeightedAverage { parts, dthr } => weighted_distance(parts, a, b) <= *dthr,
        }
    }

    /// Do records `i` and `j` of `store` match under this rule?
    ///
    /// Semantically identical to [`MatchRule::matches`] on the two
    /// records — same verdict for every input, bit for bit — but routed
    /// through the cached distance kernels: precomputed vector norms
    /// ([`RecordStore::field_norm`]) and the per-metric threshold fast
    /// paths ([`FieldDistance::distance_at_most`]). This is the kernel
    /// the quadratic pairwise verification loop hammers, and it runs
    /// identically whether the store is an in-RAM [`crate::Dataset`] or
    /// a memory-mapped file; `matches` remains the plain-record path
    /// (and the differential-test oracle).
    pub fn matches_in(&self, store: &dyn RecordStore, i: u32, j: u32) -> bool {
        match self {
            MatchRule::Threshold {
                field,
                metric,
                dthr,
            } => {
                metric
                    .distance_at_most_counted_ref(
                        store.field(i, *field),
                        store.field(j, *field),
                        *dthr,
                        store.field_norm(i, *field),
                        store.field_norm(j, *field),
                    )
                    .0
            }
            // Same short-circuit order as `matches`.
            MatchRule::And(subs) => subs.iter().all(|r| r.matches_in(store, i, j)),
            MatchRule::Or(subs) => subs.iter().any(|r| r.matches_in(store, i, j)),
            MatchRule::WeightedAverage { parts, dthr } => {
                // Same iteration order and summation as `weighted_distance`
                // (no early exit: a partial-sum cutoff could not reproduce
                // the exact fold), only the norm lookups are cached.
                let d: f64 = parts
                    .iter()
                    .map(|p| {
                        p.weight
                            * p.metric.eval_with_norms_ref(
                                store.field(i, p.field),
                                store.field(j, p.field),
                                store.field_norm(i, p.field),
                                store.field_norm(j, p.field),
                            )
                    })
                    .sum();
                d <= *dthr
            }
        }
    }

    /// [`MatchRule::matches_in`] with an [`ExitCounts`] tally: every
    /// threshold-kernel invocation actually performed (respecting the
    /// same AND/OR short-circuits) bumps `checks`, and those resolved on
    /// an early-exit path bump `early_exits`. Weighted-average parts
    /// always evaluate their exact distances (the fold admits no early
    /// exit), so they count as checks that never exit early. The verdict
    /// is bit-identical to `matches_in` for every input.
    pub fn matches_in_counted(
        &self,
        store: &dyn RecordStore,
        i: u32,
        j: u32,
        counts: &mut ExitCounts,
    ) -> bool {
        match self {
            MatchRule::Threshold {
                field,
                metric,
                dthr,
            } => {
                let (verdict, early) = metric.distance_at_most_counted_ref(
                    store.field(i, *field),
                    store.field(j, *field),
                    *dthr,
                    store.field_norm(i, *field),
                    store.field_norm(j, *field),
                );
                counts.checks += 1;
                counts.early_exits += u64::from(early);
                verdict
            }
            // Same short-circuit order as `matches_in`: skipped sub-rules
            // are not counted (their kernels never ran).
            MatchRule::And(subs) => subs
                .iter()
                .all(|r| r.matches_in_counted(store, i, j, counts)),
            MatchRule::Or(subs) => subs
                .iter()
                .any(|r| r.matches_in_counted(store, i, j, counts)),
            MatchRule::WeightedAverage { parts, dthr } => {
                counts.checks += parts.len() as u64;
                let d: f64 = parts
                    .iter()
                    .map(|p| {
                        p.weight
                            * p.metric.eval_with_norms_ref(
                                store.field(i, p.field),
                                store.field(j, p.field),
                                store.field_norm(i, p.field),
                                store.field_norm(j, p.field),
                            )
                    })
                    .sum();
                d <= *dthr
            }
        }
    }

    /// Number of *elementary* distance evaluations performed by
    /// [`MatchRule::matches`] in the worst case. Used by the cost model to
    /// convert "pairwise comparisons" into comparable units.
    pub fn num_elementary_distances(&self) -> usize {
        match self {
            MatchRule::Threshold { .. } => 1,
            MatchRule::And(subs) | MatchRule::Or(subs) => {
                subs.iter().map(Self::num_elementary_distances).sum()
            }
            MatchRule::WeightedAverage { parts, .. } => parts.len(),
        }
    }

    /// Validates the rule against a schema: field indices in range, metric
    /// kinds consistent, thresholds in `[0, 1]`, weights positive and
    /// summing to 1 (within `1e-9`), combinators non-empty.
    pub fn validate(&self, schema: &Schema) -> Result<(), String> {
        match self {
            MatchRule::Threshold {
                field,
                metric,
                dthr,
            } => {
                check_field(schema, *field, *metric)?;
                check_threshold(*dthr)
            }
            MatchRule::And(subs) | MatchRule::Or(subs) => {
                if subs.is_empty() {
                    return Err("AND/OR rule must have at least one sub-rule".into());
                }
                subs.iter().try_for_each(|r| r.validate(schema))
            }
            MatchRule::WeightedAverage { parts, dthr } => {
                if parts.is_empty() {
                    return Err("weighted-average rule must have at least one part".into());
                }
                let mut total = 0.0;
                for p in parts {
                    check_field(schema, p.field, p.metric)?;
                    if p.weight <= 0.0 {
                        return Err(format!("non-positive weight {}", p.weight));
                    }
                    total += p.weight;
                }
                if (total - 1.0).abs() > 1e-9 {
                    return Err(format!("weights sum to {total}, expected 1"));
                }
                check_threshold(*dthr)
            }
        }
    }
}

/// The weighted-average distance `d̄(a, b) = Σ αᵢ dᵢ` of Appendix C.3.
pub fn weighted_distance(parts: &[WeightedPart], a: &Record, b: &Record) -> f64 {
    parts
        .iter()
        .map(|p| p.weight * p.metric.eval(a.field(p.field), b.field(p.field)))
        .sum()
}

fn check_field(schema: &Schema, field: usize, metric: FieldDistance) -> Result<(), String> {
    let def = schema
        .fields()
        .get(field)
        .ok_or_else(|| format!("field index {field} out of range"))?;
    if def.kind != metric.expected_kind() {
        return Err(format!(
            "metric {:?} incompatible with field {} of kind {:?}",
            metric, def.name, def.kind
        ));
    }
    Ok(())
}

fn check_threshold(dthr: f64) -> Result<(), String> {
    if (0.0..=1.0).contains(&dthr) {
        Ok(())
    } else {
        Err(format!("threshold {dthr} outside [0, 1]"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldKind, FieldValue};
    use crate::shingle::ShingleSet;
    use crate::vector::DenseVector;

    fn two_field_schema() -> Schema {
        Schema::new(vec![
            ("title", FieldKind::Shingles),
            ("hist", FieldKind::Dense),
        ])
    }

    fn rec(shingles: &[u64], vec: &[f64]) -> Record {
        Record::new(vec![
            FieldValue::Shingles(ShingleSet::new(shingles.to_vec())),
            FieldValue::Dense(DenseVector::new(vec.to_vec())),
        ])
    }

    #[test]
    fn threshold_rule_matches() {
        let r = MatchRule::threshold(0, FieldDistance::Jaccard, 0.6);
        let a = rec(&[1, 2, 3, 4], &[1.0]);
        let b = rec(&[3, 4, 5], &[1.0]);
        // Jaccard distance is exactly 0.6 — inclusive threshold.
        assert!(r.matches(&a, &b));
        let strict = MatchRule::threshold(0, FieldDistance::Jaccard, 0.59);
        assert!(!strict.matches(&a, &b));
    }

    #[test]
    fn and_rule_requires_all() {
        let rule = MatchRule::And(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.6),
            MatchRule::threshold(1, FieldDistance::Angular, 0.1),
        ]);
        let a = rec(&[1, 2, 3, 4], &[1.0, 0.0]);
        let close = rec(&[3, 4, 5], &[1.0, 0.05]);
        let far = rec(&[3, 4, 5], &[0.0, 1.0]);
        assert!(rule.matches(&a, &close));
        assert!(!rule.matches(&a, &far));
    }

    #[test]
    fn or_rule_requires_any() {
        let rule = MatchRule::Or(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.1),
            MatchRule::threshold(1, FieldDistance::Angular, 0.1),
        ]);
        let a = rec(&[1, 2], &[1.0, 0.0]);
        let b = rec(&[9, 10], &[1.0, 0.01]); // far shingles, close vector
        assert!(rule.matches(&a, &b));
        let c = rec(&[9, 10], &[0.0, 1.0]); // far on both
        assert!(!rule.matches(&a, &c));
    }

    #[test]
    fn weighted_average_rule() {
        let parts = vec![
            WeightedPart {
                field: 0,
                metric: FieldDistance::Jaccard,
                weight: 0.5,
            },
            WeightedPart {
                field: 1,
                metric: FieldDistance::Angular,
                weight: 0.5,
            },
        ];
        let a = rec(&[1, 2, 3, 4], &[1.0, 0.0]);
        let b = rec(&[3, 4, 5], &[0.0, 1.0]);
        // 0.5·0.6 + 0.5·0.5 = 0.55
        let d = weighted_distance(&parts, &a, &b);
        assert!((d - 0.55).abs() < 1e-12);
        let rule = MatchRule::WeightedAverage { parts, dthr: 0.55 };
        assert!(rule.matches(&a, &b));
    }

    #[test]
    fn matches_in_equals_matches_all_rule_kinds() {
        use crate::dataset::Dataset;
        let schema = two_field_schema();
        let records: Vec<Record> = (0..6)
            .map(|i| {
                let sh: Vec<u64> = (0..(3 + i % 3) as u64)
                    .map(|t| t + (i as u64 / 2) * 2)
                    .collect();
                let ang = (i as f64) * 0.5;
                rec(&sh, &[ang.cos(), ang.sin()])
            })
            .collect();
        let gt = (0..6).collect();
        let d = Dataset::new(schema, records, gt);
        let rules = [
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.5),
            MatchRule::threshold(1, FieldDistance::Angular, 0.2),
            MatchRule::And(vec![
                MatchRule::threshold(0, FieldDistance::Jaccard, 0.7),
                MatchRule::threshold(1, FieldDistance::Angular, 0.4),
            ]),
            MatchRule::Or(vec![
                MatchRule::threshold(0, FieldDistance::Jaccard, 0.2),
                MatchRule::threshold(1, FieldDistance::Angular, 0.3),
            ]),
            MatchRule::WeightedAverage {
                parts: vec![
                    WeightedPart {
                        field: 0,
                        metric: FieldDistance::Jaccard,
                        weight: 0.6,
                    },
                    WeightedPart {
                        field: 1,
                        metric: FieldDistance::Angular,
                        weight: 0.4,
                    },
                ],
                dthr: 0.45,
            },
        ];
        for rule in &rules {
            for i in 0..6u32 {
                for j in 0..6u32 {
                    assert_eq!(
                        rule.matches_in(&d, i, j),
                        rule.matches(d.record(i), d.record(j)),
                        "rule {rule:?} pair ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_in_counted_equals_matches_in_and_counts_kernels() {
        use crate::dataset::Dataset;
        use crate::distance::ExitCounts;
        let schema = two_field_schema();
        let records: Vec<Record> = (0..6)
            .map(|i| {
                let sh: Vec<u64> = (0..(3 + i % 3) as u64)
                    .map(|t| t + (i as u64 / 2) * 2)
                    .collect();
                let ang = (i as f64) * 0.5;
                rec(&sh, &[ang.cos(), ang.sin()])
            })
            .collect();
        let gt = (0..6).collect();
        let d = Dataset::new(schema, records, gt);
        let rules = [
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.5),
            MatchRule::And(vec![
                MatchRule::threshold(0, FieldDistance::Jaccard, 0.7),
                MatchRule::threshold(1, FieldDistance::Angular, 0.4),
            ]),
            MatchRule::Or(vec![
                MatchRule::threshold(0, FieldDistance::Jaccard, 0.2),
                MatchRule::threshold(1, FieldDistance::Angular, 0.3),
            ]),
            MatchRule::WeightedAverage {
                parts: vec![
                    WeightedPart {
                        field: 0,
                        metric: FieldDistance::Jaccard,
                        weight: 0.6,
                    },
                    WeightedPart {
                        field: 1,
                        metric: FieldDistance::Angular,
                        weight: 0.4,
                    },
                ],
                dthr: 0.45,
            },
        ];
        for rule in &rules {
            let mut counts = ExitCounts::default();
            let mut pairs = 0u64;
            for i in 0..6u32 {
                for j in 0..6u32 {
                    pairs += 1;
                    assert_eq!(
                        rule.matches_in_counted(&d, i, j, &mut counts),
                        rule.matches_in(&d, i, j),
                        "rule {rule:?} pair ({i},{j})"
                    );
                }
            }
            // Every pair runs at least one kernel and the short-circuits
            // bound the total by the rule's elementary distance count.
            assert!(counts.checks >= pairs, "rule {rule:?}: {counts:?}");
            assert!(
                counts.checks <= pairs * rule.num_elementary_distances() as u64,
                "rule {rule:?}: {counts:?}"
            );
            assert!(counts.early_exits <= counts.checks, "rule {rule:?}");
            if let MatchRule::WeightedAverage { .. } = rule {
                assert_eq!(counts.early_exits, 0, "weighted fold has no early exit");
            }
        }
    }

    #[test]
    fn exit_counts_merge_adds() {
        use crate::distance::ExitCounts;
        let mut a = ExitCounts {
            checks: 3,
            early_exits: 1,
        };
        a.merge(&ExitCounts {
            checks: 2,
            early_exits: 2,
        });
        assert_eq!(
            a,
            ExitCounts {
                checks: 5,
                early_exits: 3
            }
        );
    }

    #[test]
    fn validate_good_rules() {
        let s = two_field_schema();
        let rule = MatchRule::And(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.4),
            MatchRule::Or(vec![MatchRule::threshold(1, FieldDistance::Angular, 0.2)]),
        ]);
        assert!(rule.validate(&s).is_ok());
    }

    #[test]
    fn validate_catches_kind_mismatch() {
        let s = two_field_schema();
        let rule = MatchRule::threshold(0, FieldDistance::Angular, 0.4);
        assert!(rule.validate(&s).is_err());
    }

    #[test]
    fn validate_catches_bad_field_index() {
        let s = two_field_schema();
        let rule = MatchRule::threshold(7, FieldDistance::Jaccard, 0.4);
        assert!(rule.validate(&s).is_err());
    }

    #[test]
    fn validate_catches_bad_threshold() {
        let s = two_field_schema();
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, 1.4);
        assert!(rule.validate(&s).is_err());
    }

    #[test]
    fn validate_catches_bad_weights() {
        let s = two_field_schema();
        let rule = MatchRule::WeightedAverage {
            parts: vec![WeightedPart {
                field: 0,
                metric: FieldDistance::Jaccard,
                weight: 0.7,
            }],
            dthr: 0.5,
        };
        assert!(rule.validate(&s).is_err(), "weights must sum to 1");
    }

    #[test]
    fn validate_catches_empty_combinator() {
        let s = two_field_schema();
        assert!(MatchRule::And(vec![]).validate(&s).is_err());
        assert!(MatchRule::Or(vec![]).validate(&s).is_err());
    }

    #[test]
    fn elementary_distance_counts() {
        let rule = MatchRule::And(vec![
            MatchRule::threshold(0, FieldDistance::Jaccard, 0.4),
            MatchRule::WeightedAverage {
                parts: vec![
                    WeightedPart {
                        field: 0,
                        metric: FieldDistance::Jaccard,
                        weight: 0.5,
                    },
                    WeightedPart {
                        field: 1,
                        metric: FieldDistance::Angular,
                        weight: 0.5,
                    },
                ],
                dthr: 0.3,
            },
        ]);
        assert_eq!(rule.num_elementary_distances(), 3);
    }
}
