//! Dataset serialization: JSON and JSON-lines interchange.
//!
//! A [`Dataset`] round-trips through serde (all model types derive
//! `Serialize`/`Deserialize`). For large datasets the JSON-lines format
//! is friendlier: a header line with the schema followed by one line per
//! record — streamable and diff-able.
//!
//! ```text
//! {"schema":{...}}
//! {"entity":0,"fields":[{"Shingles":[1,2,3]}]}
//! {"entity":0,"fields":[{"Shingles":[1,2,4]}]}
//! ```

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, EntityId};
use crate::record::{Record, Schema};

/// Header line of the JSON-lines format.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    schema: Schema,
}

/// Record line of the JSON-lines format.
#[derive(Debug, Serialize, Deserialize)]
struct Line {
    entity: EntityId,
    fields: Record,
}

/// Writes a dataset in JSON-lines format.
///
/// # Errors
/// Propagates I/O and serialization errors as `std::io::Error`.
pub fn write_jsonl<W: Write>(dataset: &Dataset, mut out: W) -> std::io::Result<()> {
    let header = Header {
        schema: dataset.schema().clone(),
    };
    writeln!(out, "{}", serde_json::to_string(&header)?)?;
    for i in 0..dataset.len() as u32 {
        let line = Line {
            entity: dataset.entity_of(i),
            fields: dataset.record(i).clone(),
        };
        writeln!(out, "{}", serde_json::to_string(&line)?)?;
    }
    Ok(())
}

/// Streaming JSON-lines reader: parses the header eagerly, then yields
/// one `(Record, EntityId)` at a time through a **reused line buffer**,
/// so reading a dataset costs one line of text in memory at a time —
/// not the whole file, and not one `String` allocation per line. This
/// is the ingestion path the out-of-core store builder rides: a
/// million-record JSONL file streams straight into a store file without
/// ever materializing the dataset.
///
/// [`read_jsonl`] is a thin collect-everything wrapper over this type.
pub struct JsonlReader<R: BufRead> {
    input: R,
    schema: Schema,
    buf: String,
    records_seen: usize,
}

impl<R: BufRead> JsonlReader<R> {
    /// Opens a reader, consuming and validating the header line.
    ///
    /// # Errors
    /// Fails on I/O errors, a missing header, or malformed header JSON.
    pub fn open(mut input: R) -> std::io::Result<Self> {
        let mut buf = String::new();
        if input.read_line(&mut buf)? == 0 {
            return Err(bad_data("missing header line"));
        }
        let header: Header = serde_json::from_str(buf.trim_end_matches(['\n', '\r']))?;
        Ok(Self {
            input,
            schema: header.schema,
            buf,
            records_seen: 0,
        })
    }

    /// The schema declared by the header.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Records yielded so far.
    pub fn records_seen(&self) -> usize {
        self.records_seen
    }

    /// Parses the next record line, skipping blank lines. Returns
    /// `Ok(None)` at end of input.
    ///
    /// # Errors
    /// Fails on I/O errors, malformed JSON, records violating the header
    /// schema, or a record count overflowing the `u32` id space.
    pub fn next_record(&mut self) -> std::io::Result<Option<(Record, EntityId)>> {
        loop {
            self.buf.clear();
            if self.input.read_line(&mut self.buf)? == 0 {
                return Ok(None);
            }
            let line = self.buf.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                continue;
            }
            let parsed: Line = serde_json::from_str(line)?;
            self.schema.validate(&parsed.fields).map_err(bad_data)?;
            crate::dataset::ensure_record_id_capacity(self.records_seen + 1).map_err(bad_data)?;
            self.records_seen += 1;
            return Ok(Some((parsed.fields, parsed.entity)));
        }
    }
}

/// Reads a dataset from JSON-lines format by streaming it through
/// [`JsonlReader`] (line-at-a-time, one reused buffer).
///
/// # Errors
/// Fails on I/O errors, malformed JSON, a missing header, an empty body,
/// or records that violate the header schema.
pub fn read_jsonl<R: BufRead>(input: R) -> std::io::Result<Dataset> {
    let mut reader = JsonlReader::open(input)?;
    let mut records = Vec::new();
    let mut gt = Vec::new();
    while let Some((record, entity)) = reader.next_record()? {
        records.push(record);
        gt.push(entity);
    }
    if records.is_empty() {
        return Err(bad_data("dataset has no records"));
    }
    let schema = reader.schema().clone();
    Ok(Dataset::new(schema, records, gt))
}

/// Writes a dataset to a file in JSON-lines format.
///
/// # Errors
/// See [`write_jsonl`].
pub fn save(dataset: &Dataset, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_jsonl(dataset, std::io::BufWriter::new(file))
}

/// Reads a dataset from a JSON-lines file.
///
/// # Errors
/// See [`read_jsonl`].
pub fn load(path: &std::path::Path) -> std::io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_jsonl(std::io::BufReader::new(file))
}

fn bad_data(msg: impl ToString) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldKind, FieldValue};
    use crate::shingle::ShingleSet;
    use crate::vector::DenseVector;

    fn sample() -> Dataset {
        let schema = Schema::new(vec![
            ("tokens", FieldKind::Shingles),
            ("vec", FieldKind::Dense),
        ]);
        let mk = |s: &[u64], v: &[f64]| {
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(s.to_vec())),
                FieldValue::Dense(DenseVector::new(v.to_vec())),
            ])
        };
        Dataset::new(
            schema,
            vec![mk(&[1, 2], &[0.5, 0.5]), mk(&[3], &[1.0, 0.0])],
            vec![7, 9],
        )
    }

    #[test]
    fn jsonl_round_trip() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let back = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.schema(), d.schema());
        assert_eq!(back.ground_truth(), d.ground_truth());
        for i in 0..d.len() as u32 {
            assert_eq!(back.record(i), d.record(i));
        }
    }

    #[test]
    fn file_round_trip() {
        let d = sample();
        let dir = std::env::temp_dir().join("adalsh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), d.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_rejected() {
        let r = read_jsonl(std::io::Cursor::new(Vec::<u8>::new()));
        assert!(r.is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        let r = read_jsonl(std::io::Cursor::new(b"not json\n".to_vec()));
        assert!(r.is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Append a record with the wrong arity.
        text.push_str("{\"entity\":1,\"fields\":{\"fields\":[{\"Shingles\":[1]}]}}\n");
        let r = read_jsonl(std::io::Cursor::new(text.into_bytes()));
        assert!(r.is_err());
    }

    #[test]
    fn blank_lines_ignored() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = read_jsonl(std::io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn streaming_reader_equals_collected_read() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let mut reader = JsonlReader::open(std::io::Cursor::new(buf.clone())).unwrap();
        assert_eq!(reader.schema(), d.schema());
        let mut streamed = Vec::new();
        while let Some(pair) = reader.next_record().unwrap() {
            streamed.push(pair);
        }
        assert_eq!(reader.records_seen(), d.len());
        let collected = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(streamed.len(), collected.len());
        for (i, (rec, ent)) in streamed.iter().enumerate() {
            assert_eq!(rec, collected.record(i as u32));
            assert_eq!(*ent, collected.entity_of(i as u32));
        }
    }

    #[test]
    fn empty_body_rejected() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let header_only: String = String::from_utf8(buf)
            .unwrap()
            .lines()
            .take(1)
            .collect::<Vec<_>>()
            .join("\n");
        let r = read_jsonl(std::io::Cursor::new(header_only.into_bytes()));
        assert!(r.is_err());
    }
}
