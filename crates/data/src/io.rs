//! Dataset serialization: JSON and JSON-lines interchange.
//!
//! A [`Dataset`] round-trips through serde (all model types derive
//! `Serialize`/`Deserialize`). For large datasets the JSON-lines format
//! is friendlier: a header line with the schema followed by one line per
//! record — streamable and diff-able.
//!
//! ```text
//! {"schema":{...}}
//! {"entity":0,"fields":[{"Shingles":[1,2,3]}]}
//! {"entity":0,"fields":[{"Shingles":[1,2,4]}]}
//! ```

use std::io::{BufRead, Write};

use serde::{Deserialize, Serialize};

use crate::dataset::{Dataset, EntityId};
use crate::record::{Record, Schema};

/// Header line of the JSON-lines format.
#[derive(Debug, Serialize, Deserialize)]
struct Header {
    schema: Schema,
}

/// Record line of the JSON-lines format.
#[derive(Debug, Serialize, Deserialize)]
struct Line {
    entity: EntityId,
    fields: Record,
}

/// Writes a dataset in JSON-lines format.
///
/// # Errors
/// Propagates I/O and serialization errors as `std::io::Error`.
pub fn write_jsonl<W: Write>(dataset: &Dataset, mut out: W) -> std::io::Result<()> {
    let header = Header {
        schema: dataset.schema().clone(),
    };
    writeln!(out, "{}", serde_json::to_string(&header)?)?;
    for i in 0..dataset.len() as u32 {
        let line = Line {
            entity: dataset.entity_of(i),
            fields: dataset.record(i).clone(),
        };
        writeln!(out, "{}", serde_json::to_string(&line)?)?;
    }
    Ok(())
}

/// Reads a dataset from JSON-lines format.
///
/// # Errors
/// Fails on I/O errors, malformed JSON, a missing header, an empty body,
/// or records that violate the header schema.
pub fn read_jsonl<R: BufRead>(input: R) -> std::io::Result<Dataset> {
    let mut lines = input.lines();
    let header_line = lines
        .next()
        .ok_or_else(|| bad_data("missing header line"))??;
    let header: Header = serde_json::from_str(&header_line)?;
    let mut records = Vec::new();
    let mut gt = Vec::new();
    for line in lines {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed: Line = serde_json::from_str(&line)?;
        header.schema.validate(&parsed.fields).map_err(bad_data)?;
        records.push(parsed.fields);
        gt.push(parsed.entity);
    }
    if records.is_empty() {
        return Err(bad_data("dataset has no records"));
    }
    Ok(Dataset::new(header.schema, records, gt))
}

/// Writes a dataset to a file in JSON-lines format.
///
/// # Errors
/// See [`write_jsonl`].
pub fn save(dataset: &Dataset, path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_jsonl(dataset, std::io::BufWriter::new(file))
}

/// Reads a dataset from a JSON-lines file.
///
/// # Errors
/// See [`read_jsonl`].
pub fn load(path: &std::path::Path) -> std::io::Result<Dataset> {
    let file = std::fs::File::open(path)?;
    read_jsonl(std::io::BufReader::new(file))
}

fn bad_data(msg: impl ToString) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldKind, FieldValue};
    use crate::shingle::ShingleSet;
    use crate::vector::DenseVector;

    fn sample() -> Dataset {
        let schema = Schema::new(vec![
            ("tokens", FieldKind::Shingles),
            ("vec", FieldKind::Dense),
        ]);
        let mk = |s: &[u64], v: &[f64]| {
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(s.to_vec())),
                FieldValue::Dense(DenseVector::new(v.to_vec())),
            ])
        };
        Dataset::new(
            schema,
            vec![mk(&[1, 2], &[0.5, 0.5]), mk(&[3], &[1.0, 0.0])],
            vec![7, 9],
        )
    }

    #[test]
    fn jsonl_round_trip() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let back = read_jsonl(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back.len(), d.len());
        assert_eq!(back.schema(), d.schema());
        assert_eq!(back.ground_truth(), d.ground_truth());
        for i in 0..d.len() as u32 {
            assert_eq!(back.record(i), d.record(i));
        }
    }

    #[test]
    fn file_round_trip() {
        let d = sample();
        let dir = std::env::temp_dir().join("adalsh_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        save(&d, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.len(), d.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_rejected() {
        let r = read_jsonl(std::io::Cursor::new(Vec::<u8>::new()));
        assert!(r.is_err());
    }

    #[test]
    fn malformed_json_rejected() {
        let r = read_jsonl(std::io::Cursor::new(b"not json\n".to_vec()));
        assert!(r.is_err());
    }

    #[test]
    fn schema_violation_rejected() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        // Append a record with the wrong arity.
        text.push_str("{\"entity\":1,\"fields\":{\"fields\":[{\"Shingles\":[1]}]}}\n");
        let r = read_jsonl(std::io::Cursor::new(text.into_bytes()));
        assert!(r.is_err());
    }

    #[test]
    fn blank_lines_ignored() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push('\n');
        let back = read_jsonl(std::io::Cursor::new(text.into_bytes())).unwrap();
        assert_eq!(back.len(), 2);
    }

    #[test]
    fn empty_body_rejected() {
        let d = sample();
        let mut buf = Vec::new();
        write_jsonl(&d, &mut buf).unwrap();
        let header_only: String = String::from_utf8(buf)
            .unwrap()
            .lines()
            .take(1)
            .collect::<Vec<_>>()
            .join("\n");
        let r = read_jsonl(std::io::Cursor::new(header_only.into_bytes()));
        assert!(r.is_err());
    }
}
