//! The [`RecordStore`] abstraction: anything the engine can resolve.
//!
//! Every consumer of record data in this workspace — hash kernels,
//! pairwise verification, baselines, recovery metrics, the CLI — speaks
//! to this trait instead of to [`Dataset`] directly. Two implementations
//! exist:
//!
//! * [`Dataset`] (this crate) — records materialized in RAM;
//! * `StoreView` (crate `adalsh-store`) — a zero-copy view over a
//!   memory-mapped columnar store file.
//!
//! Both hand out [`FieldRef`] borrows into their backing storage, so the
//! exact same distance / hash kernels run over the exact same bytes on
//! either path; the differential tests in `adalsh-store` pin clusters
//! and run statistics bit-identical across the two.
//!
//! The trait is object-safe on purpose: the engine takes
//! `&dyn RecordStore`, and `&Dataset` coerces to it at every existing
//! call site. `Sync` is a supertrait so `&dyn RecordStore` can cross the
//! scoped-thread boundaries of the parallel pairwise and transitive
//! hashing stages.

use crate::dataset::{Dataset, EntityId};
use crate::record::{FieldRef, Record, Schema};

/// A readable collection of records the resolution engine can run over.
///
/// Implementations must be cheap to query: [`RecordStore::field`] and
/// [`RecordStore::field_norm`] sit in the innermost pairwise and hashing
/// loops. Contract:
///
/// * record ids are dense `0..len()`;
/// * `field(id, f)` returns a borrow whose kind matches `schema()`
///   field `f`, stable for the lifetime of the store;
/// * `field_norm(id, f)` returns **exactly** the bits
///   `vector::norm(field(id, f).as_dense())` produces for dense fields
///   and `0.0` for shingle fields — the norm cache is part of the
///   bit-identity contract, not an approximation;
/// * `entity_of` is ground truth for evaluation only; resolution
///   algorithms never consult it.
pub trait RecordStore: Sync {
    /// The schema every record conforms to.
    fn schema(&self) -> &Schema;

    /// Number of records.
    fn len(&self) -> usize;

    /// Borrowed payload of field `field` of record `id`.
    fn field(&self, id: u32, field: usize) -> FieldRef<'_>;

    /// Cached Euclidean norm of field `field` of record `id` (0.0 for
    /// shingle fields). See the trait-level bit-identity contract.
    fn field_norm(&self, id: u32, field: usize) -> f64;

    /// Ground-truth entity of record `id`.
    fn entity_of(&self, id: u32) -> EntityId;

    /// Short descriptor of where the records live — `"ram"` for
    /// materialized datasets, `"store"` for memory-mapped store files.
    /// Emitted in the `run_start` trace event.
    fn source(&self) -> &str;

    /// True when the store holds no records.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones record `id` into an owned [`Record`] (allocates; not for
    /// hot loops — the scalar oracle paths and samplers use it).
    fn materialize(&self, id: u32) -> Record {
        let fields = (0..self.schema().num_fields())
            .map(|f| self.field(id, f).to_value())
            .collect();
        Record::new(fields)
    }

    /// The ground-truth clustering `C*`, sorted by descending cluster
    /// size (ties broken by ascending entity id); each cluster lists
    /// record ids ascending. Identical ordering to
    /// [`Dataset::ground_truth_clusters`].
    fn ground_truth_clusters(&self) -> Vec<Vec<u32>> {
        clusters_from_labels(self.len(), &|i| self.entity_of(i))
    }

    /// Record ids of the `k` largest ground-truth entities (the gold
    /// output `O*`), ascending. Identical to [`Dataset::gold_records`].
    fn gold_records(&self, k: usize) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .ground_truth_clusters()
            .into_iter()
            .take(k)
            .flatten()
            .collect();
        out.sort_unstable();
        out
    }

    /// Sizes of all ground-truth entities, descending.
    fn entity_sizes(&self) -> Vec<usize> {
        self.ground_truth_clusters().iter().map(Vec::len).collect()
    }

    /// Number of distinct entities.
    fn num_entities(&self) -> usize {
        self.ground_truth_clusters().len()
    }
}

/// Shared implementation of the canonical ground-truth clustering order:
/// group ids by entity, sort clusters by descending size with ties
/// broken by ascending entity id. Both `Dataset` and the trait default
/// call this, so the ordering cannot drift between implementations.
pub(crate) fn clusters_from_labels(n: usize, entity: &dyn Fn(u32) -> EntityId) -> Vec<Vec<u32>> {
    let mut by_entity: std::collections::BTreeMap<EntityId, Vec<u32>> =
        std::collections::BTreeMap::new();
    for i in 0..n as u32 {
        by_entity.entry(entity(i)).or_default().push(i);
    }
    let mut clusters: Vec<(EntityId, Vec<u32>)> = by_entity.into_iter().collect();
    clusters.sort_by(|(ea, a), (eb, b)| b.len().cmp(&a.len()).then(ea.cmp(eb)));
    clusters.into_iter().map(|(_, c)| c).collect()
}

impl RecordStore for Dataset {
    fn schema(&self) -> &Schema {
        Dataset::schema(self)
    }

    fn len(&self) -> usize {
        Dataset::len(self)
    }

    fn field(&self, id: u32, field: usize) -> FieldRef<'_> {
        self.record(id).field(field).as_ref()
    }

    fn field_norm(&self, id: u32, field: usize) -> f64 {
        Dataset::field_norm(self, id, field)
    }

    fn entity_of(&self, id: u32) -> EntityId {
        Dataset::entity_of(self, id)
    }

    fn source(&self) -> &str {
        "ram"
    }

    fn materialize(&self, id: u32) -> Record {
        self.record(id).clone()
    }

    fn ground_truth_clusters(&self) -> Vec<Vec<u32>> {
        Dataset::ground_truth_clusters(self)
    }

    fn gold_records(&self, k: usize) -> Vec<u32> {
        Dataset::gold_records(self, k)
    }

    fn entity_sizes(&self) -> Vec<usize> {
        Dataset::entity_sizes(self)
    }

    fn num_entities(&self) -> usize {
        Dataset::num_entities(self)
    }
}

/// Anything that can lend per-field payloads — the access trait the hash
/// kernels are generic over. Implemented by [`Record`] (owned, in-RAM)
/// and [`RecordView`] (a record inside a [`RecordStore`]), so hashing a
/// record produces the same bits whether it was materialized or mapped.
pub trait RecordFields {
    /// Borrowed payload of field `i`.
    fn field_ref(&self, i: usize) -> FieldRef<'_>;
}

impl RecordFields for Record {
    fn field_ref(&self, i: usize) -> FieldRef<'_> {
        self.field(i).as_ref()
    }
}

/// One record of a [`RecordStore`], addressed by id — a `Copy` handle
/// that lends field payloads straight out of the store's backing memory.
#[derive(Clone, Copy)]
pub struct RecordView<'a> {
    store: &'a dyn RecordStore,
    id: u32,
}

impl<'a> RecordView<'a> {
    /// A view of record `id` in `store`.
    pub fn new(store: &'a dyn RecordStore, id: u32) -> Self {
        Self { store, id }
    }

    /// The viewed record's id.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl RecordFields for RecordView<'_> {
    fn field_ref(&self, i: usize) -> FieldRef<'_> {
        self.store.field(self.id, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FieldKind, FieldValue};
    use crate::shingle::ShingleSet;
    use crate::vector::DenseVector;

    fn toy() -> Dataset {
        let schema = Schema::new(vec![("s", FieldKind::Shingles), ("v", FieldKind::Dense)]);
        let recs: Vec<Record> = (0..5u64)
            .map(|i| {
                Record::new(vec![
                    FieldValue::Shingles(ShingleSet::new(vec![i, i + 1])),
                    FieldValue::Dense(DenseVector::new(vec![i as f64, 1.0])),
                ])
            })
            .collect();
        Dataset::new(schema, recs, vec![4, 4, 4, 2, 9])
    }

    #[test]
    fn dataset_implements_record_store() {
        let d = toy();
        let s: &dyn RecordStore = &d;
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        assert_eq!(s.source(), "ram");
        assert_eq!(s.entity_of(3), 2);
        assert_eq!(s.field(1, 0).as_shingles(), &[1, 2]);
        assert_eq!(s.field(2, 1).as_dense(), &[2.0, 1.0]);
        assert_eq!(
            s.field_norm(2, 1).to_bits(),
            d.record(2).field(1).as_dense().norm().to_bits()
        );
        assert_eq!(s.ground_truth_clusters(), d.ground_truth_clusters());
        assert_eq!(s.gold_records(2), d.gold_records(2));
        assert_eq!(s.num_entities(), 3);
        assert_eq!(s.materialize(4), *d.record(4));
    }

    #[test]
    fn trait_default_clustering_matches_dataset_order() {
        // A store that only knows labels must reproduce Dataset's
        // size-desc / entity-asc ordering through the trait defaults.
        let d = toy();
        let s: &dyn RecordStore = &d;
        let defaulted = clusters_from_labels(s.len(), &|i| s.entity_of(i));
        assert_eq!(defaulted, d.ground_truth_clusters());
    }

    #[test]
    fn record_view_lends_store_payloads() {
        let d = toy();
        let v = RecordView::new(&d, 3);
        assert_eq!(v.id(), 3);
        assert_eq!(v.field_ref(0).as_shingles(), &[3, 4]);
        assert_eq!(v.field_ref(1).as_dense(), &[3.0, 1.0]);
        // Owned records lend the same bits through the same trait.
        assert_eq!(
            d.record(3).field_ref(0).as_shingles(),
            v.field_ref(0).as_shingles()
        );
    }
}
