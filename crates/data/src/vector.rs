//! Dense numeric vectors and the cosine / angular distance.
//!
//! The paper's image experiments represent each record as an RGB-histogram
//! vector and declare two records a match when the *angle* between their
//! vectors is below a threshold (paper §6.3, PopularImages). Throughout the
//! workspace distances are **normalized to `[0, 1]`**: an angle of `θ`
//! degrees maps to `θ / 180` (paper Example 5, `x = θ/180`).

use serde::{Deserialize, Serialize};

/// A dense vector of `f64` components.
///
/// Invariant: never empty. Construction normalizes nothing — callers that
/// want unit vectors should call [`DenseVector::normalized`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseVector(Vec<f64>);

impl DenseVector {
    /// Creates a vector from raw components.
    ///
    /// # Panics
    /// Panics if `components` is empty.
    pub fn new(components: Vec<f64>) -> Self {
        assert!(!components.is_empty(), "DenseVector must be non-empty");
        Self(components)
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Read-only view of the components.
    pub fn components(&self) -> &[f64] {
        &self.0
    }

    /// Dot product with another vector.
    ///
    /// Evaluated by `dot_kernel`: four independent accumulators over
    /// flat 4-wide chunks, so the products in a chunk carry no
    /// loop-carried dependency and the compiler vectorizes the loop.
    /// The summation *order* therefore differs from a sequential fold by
    /// a few ulps — every consumer in this crate (norms, angles, the
    /// cosine fast path) goes through this same kernel, so all derived
    /// comparisons stay mutually consistent.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &Self) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        dot_kernel(&self.0, &other.0)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        norm(&self.0)
    }

    /// Returns a unit-length copy of this vector.
    ///
    /// A zero vector is returned unchanged (there is no direction to keep).
    pub fn normalized(&self) -> Self {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        Self(self.0.iter().map(|c| c / n).collect())
    }

    /// The angle between two vectors, in **degrees**, in `[0, 180]`.
    ///
    /// Zero vectors are defined to be at angle 0 from everything: they carry
    /// no direction, and treating them as maximally distant would make a
    /// single empty histogram poison transitive closure.
    pub fn angle_degrees(&self, other: &Self) -> f64 {
        self.angle_degrees_with_norms(other, self.norm(), other.norm())
    }

    /// [`DenseVector::angle_degrees`] with the two norms supplied by the
    /// caller. The quadratic pairwise loop evaluates `O(n²)` angles over
    /// `n` vectors; precomputing each vector's norm once (see
    /// `Dataset::field_norm`) removes two of the three dot products per
    /// pair. Passing `self.norm()` / `other.norm()` reproduces
    /// [`DenseVector::angle_degrees`] bit-for-bit.
    pub fn angle_degrees_with_norms(&self, other: &Self, self_norm: f64, other_norm: f64) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        angle_degrees_with_norms(&self.0, &other.0, self_norm, other_norm)
    }

    /// The normalized angular distance `θ / 180 ∈ [0, 1]` used everywhere
    /// in the paper for the cosine metric (Example 5).
    pub fn angular_distance(&self, other: &Self) -> f64 {
        self.angle_degrees(other) / 180.0
    }

    /// Threshold fast path: `angular_distance(other) <= dthr`, decided in
    /// **cosine space** whenever that is safe. `acos` is monotone
    /// decreasing, so `θ/180 ≤ dthr ⟺ cos θ ≥ cos(dthr·π)`; comparing
    /// cosines skips the `acos` that otherwise runs on every pair of the
    /// quadratic verification loop. Within a guard band of
    /// [`COS_GUARD`] around the threshold cosine — where rounding of the
    /// forward (`cos`) and inverse (`acos`, `to_degrees`, `/ 180`)
    /// transforms could disagree — the exact kernel decides instead, so
    /// the verdict is **bit-identical** to evaluating the distance and
    /// comparing. The band is ~10⁵ wider than the few-ulp error of
    /// either transform, and `acos`'s sensitivity near `cos = ±1` only
    /// widens the true angle gap, never narrows it.
    pub fn angular_at_most_with_norms(
        &self,
        other: &Self,
        dthr: f64,
        self_norm: f64,
        other_norm: f64,
    ) -> bool {
        self.angular_at_most_with_norms_counted(other, dthr, self_norm, other_norm)
            .0
    }

    /// [`DenseVector::angular_at_most_with_norms`] reporting whether the
    /// verdict was reached on the cosine-space fast path (no `acos`):
    /// `(verdict, resolved_early)`. The verdict is bit-identical either
    /// way; the flag feeds the kernel hit-rate observability counters
    /// only.
    pub fn angular_at_most_with_norms_counted(
        &self,
        other: &Self,
        dthr: f64,
        self_norm: f64,
        other_norm: f64,
    ) -> (bool, bool) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        angular_at_most_with_norms_counted(&self.0, &other.0, dthr, self_norm, other_norm)
    }
}

/// Slice form of [`DenseVector::dot`]: the flat dot-product kernel over
/// raw component slices. This is the single implementation both the
/// owned in-RAM path and the zero-copy store path run, so their results
/// agree bit for bit.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    dot_kernel(a, b)
}

/// Slice form of [`DenseVector::norm`]: `sqrt(dot(v, v))` through the
/// same dot kernel, so a norm cached at store-build time reproduces the
/// in-RAM norm bit for bit.
pub fn norm(v: &[f64]) -> f64 {
    dot_kernel(v, v).sqrt()
}

/// Slice form of [`DenseVector::angle_degrees_with_norms`]; see that
/// method for the zero-vector convention.
pub fn angle_degrees_with_norms(a: &[f64], b: &[f64], norm_a: f64, norm_b: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let denom = norm_a * norm_b;
    if denom == 0.0 {
        return 0.0;
    }
    let cos = (dot_kernel(a, b) / denom).clamp(-1.0, 1.0);
    cos.acos().to_degrees()
}

/// Slice form of [`DenseVector::angular_at_most_with_norms_counted`];
/// see that method (and [`DenseVector::angular_at_most_with_norms`]) for
/// the guard-band safety argument.
pub fn angular_at_most_with_norms_counted(
    a: &[f64],
    b: &[f64],
    dthr: f64,
    norm_a: f64,
    norm_b: f64,
) -> (bool, bool) {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let denom = norm_a * norm_b;
    if denom == 0.0 {
        // `angle_degrees` defines zero vectors to be at distance 0.
        return (0.0 <= dthr, true);
    }
    if !(0.0..=1.0).contains(&dthr) {
        // Out-of-range thresholds (the distance is always in [0, 1]).
        return (dthr >= 1.0, true);
    }
    let cos = (dot_kernel(a, b) / denom).clamp(-1.0, 1.0);
    let cos_thr = (dthr * std::f64::consts::PI).cos();
    if cos >= cos_thr + COS_GUARD {
        return (true, true);
    }
    if cos <= cos_thr - COS_GUARD {
        return (false, true);
    }
    (
        angle_degrees_with_norms(a, b, norm_a, norm_b) / 180.0 <= dthr,
        false,
    )
}

/// Flat dot-product kernel: four independent partial sums over exact
/// 4-element chunks (no per-element branching), pairwise-combined, then a
/// short sequential tail for `len % 4` trailing components.
fn dot_kernel(a: &[f64], b: &[f64]) -> f64 {
    let chunks = a.len() / 4 * 4;
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a[..chunks].chunks_exact(4).zip(b[..chunks].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut sum = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        sum += x * y;
    }
    sum
}

/// Guard-band half-width (in cosine units) inside which
/// [`DenseVector::angular_at_most_with_norms`] falls back to the exact
/// `acos` kernel. See that method for the safety argument.
pub const COS_GUARD: f64 = 1e-9;

/// Converts a threshold expressed in degrees to the normalized distance
/// in `[0, 1]` used by [`DenseVector::angular_distance`] and by the LSH
/// scheme optimizer.
pub fn degrees_to_distance(theta_degrees: f64) -> f64 {
    theta_degrees / 180.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: &[f64]) -> DenseVector {
        DenseVector::new(c.to_vec())
    }

    #[test]
    fn dot_and_norm() {
        let a = v(&[3.0, 4.0]);
        let b = v(&[1.0, 0.0]);
        assert_eq!(a.dot(&b), 3.0);
        assert_eq!(a.norm(), 5.0);
    }

    #[test]
    fn normalized_has_unit_norm() {
        let a = v(&[3.0, 4.0]).normalized();
        assert!((a.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_zero_vector_is_identity() {
        let z = v(&[0.0, 0.0]);
        assert_eq!(z.normalized(), z);
    }

    #[test]
    fn angle_orthogonal_is_90() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        assert!((a.angle_degrees(&b) - 90.0).abs() < 1e-9);
        assert!((a.angular_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn angle_opposite_is_180() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[-1.0, 0.0]);
        assert!((a.angle_degrees(&b) - 180.0).abs() < 1e-9);
        assert!((a.angular_distance(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn angle_same_direction_is_zero() {
        let a = v(&[2.0, 1.0]);
        let b = v(&[4.0, 2.0]);
        // acos is ill-conditioned near cos = 1; a few 1e-5 degrees of
        // numerical slack is far below any threshold we ever use (≥ 2°).
        assert!(a.angle_degrees(&b).abs() < 1e-3);
    }

    #[test]
    fn angle_with_zero_vector_is_zero() {
        let a = v(&[1.0, 2.0]);
        let z = v(&[0.0, 0.0]);
        assert_eq!(a.angle_degrees(&z), 0.0);
    }

    #[test]
    fn cached_norms_are_bit_identical() {
        let pairs = [
            ([3.0, 4.0], [1.0, 0.0]),
            ([0.1, -0.7], [-0.3, 0.9]),
            ([1e-8, 2e-8], [5e7, -1e7]),
            ([0.0, 0.0], [1.0, 1.0]),
        ];
        for (a, b) in pairs {
            let (a, b) = (v(&a), v(&b));
            let direct = a.angle_degrees(&b);
            let cached = a.angle_degrees_with_norms(&b, a.norm(), b.norm());
            assert_eq!(direct.to_bits(), cached.to_bits());
        }
    }

    #[test]
    fn angular_at_most_equals_exact_check() {
        // A deterministic sweep of directions, plus degenerate vectors.
        let mut vs: Vec<DenseVector> = (0..12)
            .map(|i| {
                let t = i as f64 * 0.53;
                v(&[t.cos(), t.sin(), (t * 1.7).cos() * 0.4])
            })
            .collect();
        vs.push(v(&[0.0, 0.0, 0.0]));
        vs.push(v(&[1e-12, 0.0, 0.0]));
        for a in &vs {
            for b in &vs {
                let (na, nb) = (a.norm(), b.norm());
                let exact = a.angular_distance(b);
                // Thresholds away from, *at*, and tightly around the
                // exact distance — the last ones land inside the guard
                // band and must take the exact-kernel fallback.
                let thresholds = [
                    0.0,
                    0.25,
                    1.0,
                    exact,
                    (exact - 1e-14).clamp(0.0, 1.0),
                    (exact + 1e-14).clamp(0.0, 1.0),
                    -0.5,
                    1.5,
                ];
                for t in thresholds {
                    assert_eq!(
                        a.angular_at_most_with_norms(b, t, na, nb),
                        exact <= t,
                        "a={a:?} b={b:?} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_kernel_matches_sequential_reference() {
        // The 4-accumulator kernel regroups the sum, so agreement is to
        // relative precision, not bit-for-bit — check every tail length
        // (0..4 leftover components) around the chunk boundary.
        for len in 1..=19usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.7).sin() * 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 1.3).cos() - 0.4).collect();
            let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = v(&a).dot(&v(&b));
            let tol = 1e-12 * reference.abs().max(1.0);
            assert!(
                (got - reference).abs() <= tol,
                "len={len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn dot_kernel_exact_on_integral_inputs() {
        // With integrally-representable products the regrouped sum is
        // exact, so the kernel must reproduce the mathematical value.
        let a: Vec<f64> = (0..13).map(|i| (i as f64) - 6.0).collect();
        let b: Vec<f64> = (0..13).map(|i| ((i * 3) % 7) as f64).collect();
        let exact: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(v(&a).dot(&v(&b)), exact);
    }

    #[test]
    fn degrees_conversion_matches_paper_example() {
        // Paper Example 5: dthr = 15/180.
        assert!((degrees_to_distance(15.0) - 15.0 / 180.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vector_rejected() {
        let _ = DenseVector::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_dimension_mismatch_panics() {
        let a = v(&[1.0]);
        let b = v(&[1.0, 2.0]);
        let _ = a.dot(&b);
    }
}
