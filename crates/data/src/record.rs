//! Records, fields, and schemas.
//!
//! A [`Record`] is an ordered list of field values conforming to a
//! [`Schema`]. The paper's datasets map onto this model as:
//!
//! * **Cora** — three shingle-set fields (`title`, `authors`, `rest`);
//! * **SpotSigs** — one shingle-set field (the article's spot signatures);
//! * **PopularImages** — one dense-vector field (the RGB histogram).

use serde::{Deserialize, Serialize};

use crate::shingle::ShingleSet;
use crate::vector::DenseVector;

/// The type of a field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FieldKind {
    /// Dense numeric vector compared with the angular (cosine) distance.
    Dense,
    /// Shingle set compared with the Jaccard distance.
    Shingles,
}

/// A single field value of a record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FieldValue {
    /// Dense vector (e.g. image histogram).
    Dense(DenseVector),
    /// Shingle set (e.g. title word shingles).
    Shingles(ShingleSet),
}

impl FieldValue {
    /// The kind of this value.
    pub fn kind(&self) -> FieldKind {
        match self {
            FieldValue::Dense(_) => FieldKind::Dense,
            FieldValue::Shingles(_) => FieldKind::Shingles,
        }
    }

    /// Borrows this value as a [`FieldRef`] — the common currency of the
    /// distance and hash kernels, shared with out-of-core stores that
    /// never materialize a `FieldValue` at all.
    pub fn as_ref(&self) -> FieldRef<'_> {
        match self {
            FieldValue::Dense(v) => FieldRef::Dense(v.components()),
            FieldValue::Shingles(s) => FieldRef::Shingles(s.shingles()),
        }
    }

    /// Borrows the dense vector, panicking on a kind mismatch.
    ///
    /// # Panics
    /// Panics if the value is not [`FieldValue::Dense`].
    pub fn as_dense(&self) -> &DenseVector {
        match self {
            FieldValue::Dense(v) => v,
            FieldValue::Shingles(_) => panic!("field is a shingle set, expected dense vector"),
        }
    }

    /// Borrows the shingle set, panicking on a kind mismatch.
    ///
    /// # Panics
    /// Panics if the value is not [`FieldValue::Shingles`].
    pub fn as_shingles(&self) -> &ShingleSet {
        match self {
            FieldValue::Shingles(s) => s,
            FieldValue::Dense(_) => panic!("field is a dense vector, expected shingle set"),
        }
    }
}

/// A borrowed view of one field's payload.
///
/// This is the type every distance / hash kernel actually consumes: the
/// in-RAM [`FieldValue`] lends its backing slice via
/// [`FieldValue::as_ref`], and a memory-mapped store lends a slice of the
/// mapped file directly — the two paths run the *same* kernels on the
/// *same* bytes, which is what makes the in-RAM and out-of-core engines
/// bit-identical by construction.
///
/// Invariants mirror the owned types: a `Shingles` slice is sorted and
/// deduplicated; a `Dense` slice is non-empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FieldRef<'a> {
    /// Borrowed dense-vector components.
    Dense(&'a [f64]),
    /// Borrowed sorted, deduplicated shingle hashes.
    Shingles(&'a [u64]),
}

impl<'a> FieldRef<'a> {
    /// The kind of the borrowed value.
    pub fn kind(&self) -> FieldKind {
        match self {
            FieldRef::Dense(_) => FieldKind::Dense,
            FieldRef::Shingles(_) => FieldKind::Shingles,
        }
    }

    /// Borrows the dense components, panicking on a kind mismatch.
    ///
    /// # Panics
    /// Panics if the value is not [`FieldRef::Dense`].
    pub fn as_dense(&self) -> &'a [f64] {
        match self {
            FieldRef::Dense(v) => v,
            FieldRef::Shingles(_) => panic!("field is a shingle set, expected dense vector"),
        }
    }

    /// Borrows the shingle hashes, panicking on a kind mismatch.
    ///
    /// # Panics
    /// Panics if the value is not [`FieldRef::Shingles`].
    pub fn as_shingles(&self) -> &'a [u64] {
        match self {
            FieldRef::Shingles(s) => s,
            FieldRef::Dense(_) => panic!("field is a dense vector, expected shingle set"),
        }
    }

    /// Number of payload elements (components or shingles).
    pub fn payload_len(&self) -> usize {
        match self {
            FieldRef::Dense(v) => v.len(),
            FieldRef::Shingles(s) => s.len(),
        }
    }

    /// Clones the borrowed payload into an owned [`FieldValue`].
    pub fn to_value(&self) -> FieldValue {
        match self {
            FieldRef::Dense(v) => FieldValue::Dense(DenseVector::new(v.to_vec())),
            FieldRef::Shingles(s) => FieldValue::Shingles(ShingleSet::new(s.to_vec())),
        }
    }
}

/// Declaration of one field in a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDef {
    /// Human-readable field name (used in error messages and reports).
    pub name: String,
    /// The field's value kind.
    pub kind: FieldKind,
}

/// An ordered list of field declarations shared by all records of a
/// [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Vec<FieldDef>,
}

impl Schema {
    /// Creates a schema from `(name, kind)` pairs.
    ///
    /// # Panics
    /// Panics if no fields are given or names repeat.
    pub fn new(fields: Vec<(&str, FieldKind)>) -> Self {
        assert!(!fields.is_empty(), "schema must have at least one field");
        let defs: Vec<FieldDef> = fields
            .into_iter()
            .map(|(name, kind)| FieldDef {
                name: name.to_string(),
                kind,
            })
            .collect();
        for i in 0..defs.len() {
            for j in (i + 1)..defs.len() {
                assert_ne!(defs[i].name, defs[j].name, "duplicate field name");
            }
        }
        Self { fields: defs }
    }

    /// Convenience constructor for the common single-field case.
    pub fn single(name: &str, kind: FieldKind) -> Self {
        Self::new(vec![(name, kind)])
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// Field declarations in order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Index of the field with the given name, if any.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Checks that `record` conforms to this schema.
    pub fn validate(&self, record: &Record) -> Result<(), String> {
        if record.num_fields() != self.num_fields() {
            return Err(format!(
                "record has {} fields, schema has {}",
                record.num_fields(),
                self.num_fields()
            ));
        }
        for (i, def) in self.fields.iter().enumerate() {
            let got = record.field(i).kind();
            if got != def.kind {
                return Err(format!(
                    "field {} ({}) has kind {:?}, schema expects {:?}",
                    i, def.name, got, def.kind
                ));
            }
        }
        Ok(())
    }
}

/// A record: an ordered list of field values.
///
/// Records carry no identity of their own; a record's *id* is its index in
/// the owning [`crate::Dataset`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    fields: Vec<FieldValue>,
}

impl Record {
    /// Creates a record from field values.
    ///
    /// # Panics
    /// Panics if `fields` is empty.
    pub fn new(fields: Vec<FieldValue>) -> Self {
        assert!(!fields.is_empty(), "record must have at least one field");
        Self { fields }
    }

    /// Single-field convenience constructor.
    pub fn single(value: FieldValue) -> Self {
        Self::new(vec![value])
    }

    /// Number of fields.
    pub fn num_fields(&self) -> usize {
        self.fields.len()
    }

    /// The `i`-th field value.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn field(&self, i: usize) -> &FieldValue {
        &self.fields[i]
    }

    /// All field values in order.
    pub fn fields(&self) -> &[FieldValue] {
        &self.fields
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(c: &[f64]) -> FieldValue {
        FieldValue::Dense(DenseVector::new(c.to_vec()))
    }

    fn sh(v: &[u64]) -> FieldValue {
        FieldValue::Shingles(ShingleSet::new(v.to_vec()))
    }

    #[test]
    fn schema_lookup() {
        let s = Schema::new(vec![
            ("title", FieldKind::Shingles),
            ("hist", FieldKind::Dense),
        ]);
        assert_eq!(s.num_fields(), 2);
        assert_eq!(s.field_index("hist"), Some(1));
        assert_eq!(s.field_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn schema_rejects_duplicates() {
        let _ = Schema::new(vec![("a", FieldKind::Dense), ("a", FieldKind::Shingles)]);
    }

    #[test]
    fn validate_accepts_conforming_record() {
        let s = Schema::new(vec![
            ("title", FieldKind::Shingles),
            ("hist", FieldKind::Dense),
        ]);
        let r = Record::new(vec![sh(&[1, 2]), dense(&[0.5, 0.5])]);
        assert!(s.validate(&r).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let s = Schema::single("hist", FieldKind::Dense);
        let r = Record::new(vec![dense(&[1.0]), dense(&[1.0])]);
        assert!(s.validate(&r).is_err());
    }

    #[test]
    fn validate_rejects_wrong_kind() {
        let s = Schema::single("hist", FieldKind::Dense);
        let r = Record::single(sh(&[1]));
        let err = s.validate(&r).unwrap_err();
        assert!(err.contains("hist"));
    }

    #[test]
    fn field_value_kind_and_accessors() {
        let d = dense(&[1.0]);
        assert_eq!(d.kind(), FieldKind::Dense);
        assert_eq!(d.as_dense().dim(), 1);
        let s = sh(&[1, 2]);
        assert_eq!(s.kind(), FieldKind::Shingles);
        assert_eq!(s.as_shingles().len(), 2);
    }

    #[test]
    #[should_panic(expected = "expected dense vector")]
    fn as_dense_panics_on_shingles() {
        let _ = sh(&[1]).as_dense();
    }

    #[test]
    fn field_ref_round_trips() {
        let d = dense(&[1.0, 2.0]);
        let r = d.as_ref();
        assert_eq!(r.kind(), FieldKind::Dense);
        assert_eq!(r.as_dense(), &[1.0, 2.0]);
        assert_eq!(r.payload_len(), 2);
        assert_eq!(r.to_value(), d);
        let s = sh(&[3, 1, 2]);
        let r = s.as_ref();
        assert_eq!(r.kind(), FieldKind::Shingles);
        assert_eq!(r.as_shingles(), &[1, 2, 3]);
        assert_eq!(r.to_value(), s);
    }

    #[test]
    #[should_panic(expected = "expected shingle set")]
    fn field_ref_as_shingles_panics_on_dense() {
        let v = dense(&[1.0]);
        let _ = v.as_ref().as_shingles();
    }
}
