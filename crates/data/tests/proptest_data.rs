//! Property-based tests for the record model: metric axioms and
//! representation invariants that must hold for arbitrary inputs.

use adalsh_data::{
    Dataset, DenseVector, FieldDistance, FieldKind, FieldValue, MatchRule, Record, Schema,
    ShingleSet,
};
use proptest::prelude::*;

fn shingle_strategy() -> impl Strategy<Value = ShingleSet> {
    prop::collection::vec(0u64..500, 0..60).prop_map(ShingleSet::new)
}

fn vector_strategy() -> impl Strategy<Value = DenseVector> {
    prop::collection::vec(-100.0f64..100.0, 1..32).prop_map(DenseVector::new)
}

/// Arbitrary well-formed datasets over a two-field (shingles + dense)
/// schema, with arbitrary ground-truth labels.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            shingle_strategy(),
            prop::collection::vec(-50.0f64..50.0, 4),
            0u32..5,
        ),
        1..12,
    )
    .prop_map(|rows| {
        let schema = Schema::new(vec![("s", FieldKind::Shingles), ("v", FieldKind::Dense)]);
        let mut records = Vec::with_capacity(rows.len());
        let mut ground_truth = Vec::with_capacity(rows.len());
        for (shingles, components, entity) in rows {
            records.push(Record::new(vec![
                FieldValue::Shingles(shingles),
                FieldValue::Dense(DenseVector::new(components)),
            ]));
            ground_truth.push(entity);
        }
        Dataset::new(schema, records, ground_truth)
    })
}

proptest! {
    #[test]
    fn jaccard_distance_in_unit_interval(a in shingle_strategy(), b in shingle_strategy()) {
        let d = a.jaccard_distance(&b);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn jaccard_is_symmetric(a in shingle_strategy(), b in shingle_strategy()) {
        prop_assert_eq!(a.jaccard_distance(&b), b.jaccard_distance(&a));
    }

    #[test]
    fn jaccard_identity(a in shingle_strategy()) {
        prop_assert_eq!(a.jaccard_distance(&a.clone()), 0.0);
    }

    #[test]
    fn jaccard_triangle_inequality(
        a in shingle_strategy(),
        b in shingle_strategy(),
        c in shingle_strategy(),
    ) {
        // The Jaccard distance is a proper metric.
        let ab = a.jaccard_distance(&b);
        let bc = b.jaccard_distance(&c);
        let ac = a.jaccard_distance(&c);
        prop_assert!(ac <= ab + bc + 1e-12, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn intersection_bounded_by_sizes(a in shingle_strategy(), b in shingle_strategy()) {
        let i = a.intersection_size(&b);
        prop_assert!(i <= a.len() && i <= b.len());
    }

    #[test]
    fn shingle_set_is_sorted_dedup(v in prop::collection::vec(0u64..100, 0..100)) {
        let s = ShingleSet::new(v);
        let sh = s.shingles();
        prop_assert!(sh.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn angular_distance_in_unit_interval(a in vector_strategy()) {
        // Compare against a fixed same-dimension vector.
        let b = DenseVector::new(vec![1.0; a.dim()]);
        let d = a.angular_distance(&b);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn angular_is_symmetric(a in vector_strategy()) {
        let b = DenseVector::new(vec![0.5; a.dim()]);
        prop_assert!((a.angular_distance(&b) - b.angular_distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn angular_scale_invariant(a in vector_strategy(), scale in 0.001f64..1000.0) {
        let b = DenseVector::new(vec![1.0; a.dim()]);
        let scaled = DenseVector::new(a.components().iter().map(|x| x * scale).collect());
        let d1 = a.angular_distance(&b);
        let d2 = scaled.angular_distance(&b);
        prop_assert!((d1 - d2).abs() < 1e-6, "{d1} vs {d2}");
    }

    #[test]
    fn threshold_rule_consistent_with_distance(
        a in shingle_strategy(),
        b in shingle_strategy(),
        dthr in 0.0f64..=1.0,
    ) {
        let rule = MatchRule::threshold(0, FieldDistance::Jaccard, dthr);
        let ra = adalsh_data::Record::single(FieldValue::Shingles(a.clone()));
        let rb = adalsh_data::Record::single(FieldValue::Shingles(b.clone()));
        let matched = rule.matches(&ra, &rb);
        prop_assert_eq!(matched, a.jaccard_distance(&b) <= dthr);
    }

    #[test]
    fn dataset_serde_roundtrip_is_exact(dataset in dataset_strategy()) {
        // The hand-written Dataset serde keeps the derived norm cache
        // off the wire; deserialization must rebuild it bit-identically
        // (deserialization funnels through `Dataset::new`).
        let json = serde_json::to_string(&dataset).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back.schema(), dataset.schema());
        prop_assert_eq!(back.records(), dataset.records());
        prop_assert_eq!(back.ground_truth(), dataset.ground_truth());
        for i in 0..dataset.len() as u32 {
            for field in 0..dataset.schema().num_fields() {
                prop_assert_eq!(
                    back.field_norm(i, field).to_bits(),
                    dataset.field_norm(i, field).to_bits(),
                    "norm cache differs at record {} field {}", i, field
                );
            }
        }
    }

    #[test]
    fn and_rule_is_intersection_of_parts(
        a in shingle_strategy(),
        b in shingle_strategy(),
        t1 in 0.0f64..=1.0,
        t2 in 0.0f64..=1.0,
    ) {
        let r1 = MatchRule::threshold(0, FieldDistance::Jaccard, t1);
        let r2 = MatchRule::threshold(0, FieldDistance::Jaccard, t2);
        let and = MatchRule::And(vec![r1.clone(), r2.clone()]);
        let or = MatchRule::Or(vec![r1.clone(), r2.clone()]);
        let ra = adalsh_data::Record::single(FieldValue::Shingles(a));
        let rb = adalsh_data::Record::single(FieldValue::Shingles(b));
        prop_assert_eq!(and.matches(&ra, &rb), r1.matches(&ra, &rb) && r2.matches(&ra, &rb));
        prop_assert_eq!(or.matches(&ra, &rb), r1.matches(&ra, &rb) || r2.matches(&ra, &rb));
    }
}
