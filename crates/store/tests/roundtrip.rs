//! Property tests pinning the on-disk store bit-identical to the
//! in-RAM [`Dataset`] it was built from: every record payload, cached
//! norm, and ground-truth label must survive `Dataset` → file →
//! [`StoreView`] unchanged, for arbitrary mixed-kind schemas —
//! including the single-record and empty-store edges.

use adalsh_data::{
    Dataset, DenseVector, FieldKind, FieldRef, FieldValue, Record, RecordStore, Schema, ShingleSet,
};
use adalsh_store::{write_store, StoreBuilder, StoreView};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Fresh tmp path per test case (process id + counter keeps concurrent
/// test binaries from colliding).
fn tmp_store_path(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "adalsh_roundtrip_{tag}_{}_{n}.store",
        std::process::id()
    ))
}

/// SplitMix64 — derives record payloads from the proptest seed without
/// needing nested strategies.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A finite f64 in roughly ±1e6 derived from a hash — exercises
/// negative values, fractions, and exact-zero payloads.
fn mixed_f64(x: u64) -> f64 {
    let v = (mix64(x) % 2_000_000_001) as f64 / 1000.0 - 1_000_000.0;
    if mix64(x ^ 0xF00D).is_multiple_of(17) {
        0.0
    } else {
        v
    }
}

/// Arbitrary dataset: 1–3 fields of arbitrary kinds (dense fields get a
/// fixed 1–4 dimension, as the store requires fixed strides), 1–16
/// records with seeded pseudo-random payloads, and arbitrary small
/// ground-truth labels. The `1..17` record range includes the
/// single-record edge.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (
        prop::collection::vec((any::<bool>(), 1usize..5), 1..4),
        prop::collection::vec(0u32..5, 1..17),
        any::<u64>(),
    )
        .prop_map(|(field_specs, gt, seed)| {
            let kinds: Vec<(FieldKind, usize)> = field_specs
                .iter()
                .map(|&(dense, dim)| {
                    if dense {
                        (FieldKind::Dense, dim)
                    } else {
                        (FieldKind::Shingles, 0)
                    }
                })
                .collect();
            let names: Vec<String> = (0..kinds.len()).map(|i| format!("f{i}")).collect();
            let schema = Schema::new(
                names
                    .iter()
                    .zip(&kinds)
                    .map(|(n, &(k, _))| (n.as_str(), k))
                    .collect(),
            );
            let records: Vec<Record> = (0..gt.len() as u64)
                .map(|r| {
                    let fields = kinds
                        .iter()
                        .enumerate()
                        .map(|(f, &(kind, dim))| {
                            let base = mix64(seed ^ (r << 8) ^ f as u64);
                            match kind {
                                FieldKind::Dense => FieldValue::Dense(DenseVector::new(
                                    (0..dim).map(|c| mixed_f64(base ^ c as u64)).collect(),
                                )),
                                FieldKind::Shingles => {
                                    // 0–5 shingles; empty sets included.
                                    let len = (mix64(base) % 6) as usize;
                                    FieldValue::Shingles(ShingleSet::new(
                                        (0..len as u64).map(|s| mix64(base ^ (s << 32))).collect(),
                                    ))
                                }
                            }
                        })
                        .collect();
                    Record::new(fields)
                })
                .collect();
            Dataset::new(schema, records, gt)
        })
}

/// Asserts every observable of the `RecordStore` trait is bit-identical
/// between the in-RAM dataset and the mapped view.
fn assert_bit_identical(dataset: &Dataset, view: &StoreView) -> Result<(), TestCaseError> {
    prop_assert_eq!(dataset.len(), view.len());
    prop_assert_eq!(dataset.schema().num_fields(), view.schema().num_fields());
    prop_assert_eq!(
        dataset.ground_truth_clusters(),
        view.ground_truth_clusters()
    );
    for id in 0..dataset.len() as u32 {
        prop_assert_eq!(dataset.entity_of(id), view.entity_of(id));
        for f in 0..dataset.schema().num_fields() {
            match (dataset.field(id, f), view.field(id, f)) {
                (FieldRef::Dense(a), FieldRef::Dense(b)) => {
                    prop_assert_eq!(a.len(), b.len());
                    for (x, y) in a.iter().zip(b) {
                        prop_assert_eq!(x.to_bits(), y.to_bits());
                    }
                }
                (FieldRef::Shingles(a), FieldRef::Shingles(b)) => prop_assert_eq!(a, b),
                _ => prop_assert!(false, "field kind changed through the store"),
            }
            prop_assert_eq!(
                dataset.field_norm(id, f).to_bits(),
                view.field_norm(id, f).to_bits()
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `Dataset` → `write_store` → `StoreView` round-trips every
    /// payload bit-identically for arbitrary schemas and records.
    #[test]
    fn dataset_survives_store_roundtrip(dataset in arb_dataset()) {
        let path = tmp_store_path("prop");
        write_store(&path, &dataset).unwrap();
        let view = StoreView::open(&path).unwrap();
        let res = assert_bit_identical(&dataset, &view);
        drop(view);
        std::fs::remove_file(&path).ok();
        res?;
    }

    /// Materializing records from the view reproduces the original
    /// owned records exactly (the scalar-oracle path).
    #[test]
    fn materialized_records_match(dataset in arb_dataset()) {
        let path = tmp_store_path("mat");
        write_store(&path, &dataset).unwrap();
        let view = StoreView::open(&path).unwrap();
        let mut ok = true;
        for id in 0..dataset.len() as u32 {
            ok &= dataset.record(id) == &view.materialize(id);
        }
        drop(view);
        std::fs::remove_file(&path).ok();
        prop_assert!(ok, "materialized record diverged from the original");
    }
}

/// `Dataset::new` rejects empty datasets, so the empty-store edge is
/// exercised through the streaming builder directly: zero pushes must
/// still produce a valid, checksummed, openable file.
#[test]
fn empty_store_roundtrips_through_builder() {
    let path = tmp_store_path("empty");
    let schema = Schema::new(vec![("v", FieldKind::Dense), ("s", FieldKind::Shingles)]);
    StoreBuilder::create(&path, schema)
        .unwrap()
        .finish()
        .unwrap();
    let view = StoreView::open(&path).unwrap();
    assert_eq!(view.len(), 0);
    assert!(view.is_empty());
    assert!(view.ground_truth_clusters().is_empty());
    assert_eq!(view.source(), "store");
    view.verify_checksum().unwrap();
    std::fs::remove_file(&path).ok();
}

/// Deterministic single-record edge: one record, one entity, both field
/// kinds, checked through the full trait surface.
#[test]
fn single_record_store_roundtrips() {
    let path = tmp_store_path("single");
    let dataset = Dataset::new(
        Schema::new(vec![("v", FieldKind::Dense), ("s", FieldKind::Shingles)]),
        vec![Record::new(vec![
            FieldValue::Dense(DenseVector::new(vec![0.5, -2.0, 8.25])),
            FieldValue::Shingles(ShingleSet::new(vec![7, 7, 3])),
        ])],
        vec![42],
    );
    write_store(&path, &dataset).unwrap();
    let view = StoreView::open(&path).unwrap();
    assert_eq!(view.len(), 1);
    assert_eq!(view.entity_of(0), 42);
    assert_eq!(view.ground_truth_clusters(), vec![vec![0]]);
    assert_eq!(
        view.field_norm(0, 0).to_bits(),
        dataset.field_norm(0, 0).to_bits()
    );
    assert_eq!(dataset.record(0), &view.materialize(0));
    view.verify_checksum().unwrap();
    std::fs::remove_file(&path).ok();
}
