//! Differential tests: the engine must produce **bit-identical** output
//! — clusters and run [`Stats`], including the f64 modeled cost — when
//! resolving off a memory-mapped store file instead of the in-RAM
//! [`Dataset`] it was built from. Pinned across rule kinds (Jaccard
//! threshold, angular threshold, multi-field weighted-average AND) and
//! thread counts, for adaLSH proper and the pairwise baseline.

use adalsh_core::algorithm::{AdaLsh, AdaLshConfig, FilterMethod, FilterOutput};
use adalsh_core::baselines::Pairs;
use adalsh_data::{Dataset, MatchRule, RecordStore};
use adalsh_datagen::{cora, popimages, spotsigs};
use adalsh_datagen::{CoraConfig, PopImagesConfig, SpotSigsConfig};
use adalsh_store::{write_store, StoreView};

fn tmp_store_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("adalsh_diff_{tag}_{}.store", std::process::id()))
}

fn run_adalsh(store: &dyn RecordStore, rule: &MatchRule, threads: usize, k: usize) -> FilterOutput {
    let mut config = AdaLshConfig::new(rule.clone());
    config.threads = threads;
    let mut ada = AdaLsh::for_dataset(store, config).expect("sequence design");
    ada.run(store, k)
}

fn assert_outputs_identical(ram: &FilterOutput, mapped: &FilterOutput, what: &str) {
    assert_eq!(ram.clusters, mapped.clusters, "{what}: clusters diverged");
    assert_eq!(ram.stats, mapped.stats, "{what}: stats diverged");
    assert_eq!(
        ram.stats.modeled_cost.to_bits(),
        mapped.stats.modeled_cost.to_bits(),
        "{what}: modeled cost not bit-identical"
    );
}

/// Runs adaLSH on the dataset and on its store file across thread
/// counts, plus the pairwise baseline, and demands bit-identity.
fn differential(dataset: &Dataset, rule: &MatchRule, k: usize, tag: &str) {
    let path = tmp_store_path(tag);
    write_store(&path, dataset).unwrap();
    let view = StoreView::open(&path).unwrap();
    assert_eq!(view.source(), "store");
    assert_eq!(dataset.source(), "ram");

    for threads in [1, 2, 4] {
        let ram = run_adalsh(dataset, rule, threads, k);
        let mapped = run_adalsh(&view, rule, threads, k);
        assert_outputs_identical(&ram, &mapped, &format!("{tag}/adalsh t={threads}"));
    }

    let ram = Pairs::new(rule.clone()).filter(dataset, k);
    let mapped = Pairs::new(rule.clone()).filter(&view, k);
    assert_outputs_identical(&ram, &mapped, &format!("{tag}/pairs"));

    drop(view);
    std::fs::remove_file(&path).ok();
}

/// SpotSigs: single shingle field under a Jaccard-threshold rule.
#[test]
fn jaccard_rule_is_bit_identical_across_paths() {
    let dataset = spotsigs::generate(&SpotSigsConfig {
        num_records: 260,
        num_entities: 40,
        seed: 7,
        ..SpotSigsConfig::default()
    });
    differential(&dataset, &spotsigs::match_rule(0.6), 5, "spotsigs");
}

/// PopImages: dense vectors under an angular-threshold rule — the path
/// that exercises the norm cache hardest.
#[test]
fn angular_rule_is_bit_identical_across_paths() {
    let dataset = popimages::generate(&PopImagesConfig {
        num_records: 300,
        num_entities: 45,
        seed: 11,
        ..PopImagesConfig::default()
    });
    differential(&dataset, &popimages::match_rule(3.0), 5, "popimages");
}

/// Cora: multi-field records under the weighted-average AND rule.
#[test]
fn multi_field_rule_is_bit_identical_across_paths() {
    let (dataset, _) = cora::generate(&CoraConfig {
        num_records: 240,
        num_entities: 45,
        seed: 13,
        ..CoraConfig::default()
    });
    differential(&dataset, &cora::match_rule(), 5, "cora");
}
