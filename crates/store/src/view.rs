//! Zero-copy read view over a store file.
//!
//! [`StoreView::open`] maps the file and performs **structural**
//! validation only (header sanity, section bounds and alignment,
//! offset-index monotonicity) — it does not page the payload in, so
//! opening a multi-gigabyte store is cheap and peak RSS stays
//! proportional to what the engine actually touches. The full payload
//! checksum is verified on demand by [`StoreView::verify_checksum`].
//!
//! The view implements [`RecordStore`]: field payloads are lent
//! straight out of the mapping as [`FieldRef`] slices, so the engine's
//! distance and hash kernels run over the file's bytes with no
//! per-record materialization.

use std::path::{Path, PathBuf};

use adalsh_data::{EntityId, FieldKind, FieldRef, RecordStore, Schema};

use crate::format::{
    align8, fnv1a, Section, StoreError, StoreMeta, ENDIAN_TAG, FIXED_HEADER_LEN, FNV_OFFSET,
    FORMAT_VERSION, MAGIC,
};
use crate::mmap::Mapping;

/// A read-only, memory-mapped store file. See the module docs.
pub struct StoreView {
    map: Mapping,
    meta: StoreMeta,
    payload_base: usize,
    checksum: u64,
    path: PathBuf,
}

/// Marker for payload element types that are valid for any bit pattern,
/// so reinterpreting mapped bytes as them is sound.
trait Pod: Copy {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f64 {}

/// Reinterprets `bytes` as a slice of `T`. Alignment and length are
/// validated at `open` time for every section; the debug asserts keep
/// the invariant honest.
fn typed<T: Pod>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    debug_assert_eq!(bytes.len() % size, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
    // SAFETY: T admits every bit pattern (Pod), the pointer is aligned
    // (sections start 8-aligned inside an 8-aligned mapping) and the
    // length is exact; the borrow inherits the input lifetime.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) }
}

impl StoreView {
    /// Opens and structurally validates a store file.
    ///
    /// # Errors
    /// Fails on I/O errors or any format violation: bad magic, version
    /// or endianness mismatch, header/section bounds or alignment
    /// violations, inconsistent column sizes, or a corrupt shingle
    /// offset index.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len < FIXED_HEADER_LEN {
            return Err(StoreError::Format(format!(
                "{}: {} bytes is smaller than the fixed header",
                path.display(),
                len
            )));
        }
        let map = Mapping::of_file(&file, len)?;
        drop(file);
        let bytes = map.bytes();
        if bytes[..8] != MAGIC {
            return Err(StoreError::Format(format!(
                "{}: bad magic (not a store file)",
                path.display()
            )));
        }
        let u32_at = |off: usize| u32::from_ne_bytes(bytes[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_ne_bytes(bytes[off..off + 8].try_into().unwrap());
        let version = u32_at(8);
        if version != FORMAT_VERSION {
            return Err(StoreError::Format(format!(
                "{}: format version {version}, this build reads {FORMAT_VERSION}",
                path.display()
            )));
        }
        if u32_at(12) != ENDIAN_TAG {
            return Err(StoreError::Format(format!(
                "{}: endianness mismatch (file written on an opposite-endian machine)",
                path.display()
            )));
        }
        let header_len = u64_at(16) as usize;
        let checksum = u64_at(24);
        if FIXED_HEADER_LEN + header_len > len {
            return Err(StoreError::Format(format!(
                "{}: header length {header_len} overruns the file",
                path.display()
            )));
        }
        let header = std::str::from_utf8(&bytes[FIXED_HEADER_LEN..FIXED_HEADER_LEN + header_len])
            .map_err(|e| StoreError::Format(format!("header not UTF-8: {e}")))?;
        let meta: StoreMeta = serde_json::from_str(header)
            .map_err(|e| StoreError::Format(format!("header parse: {e}")))?;
        let payload_base = align8((FIXED_HEADER_LEN + header_len) as u64) as usize;
        let view = Self {
            map,
            meta,
            payload_base,
            checksum,
            path: path.to_path_buf(),
        };
        view.validate(len)?;
        Ok(view)
    }

    /// Structural validation of the parsed header against the mapped
    /// length; see [`StoreView::open`].
    fn validate(&self, file_len: usize) -> Result<(), StoreError> {
        let m = &self.meta;
        let bad = |msg: String| {
            Err(StoreError::Format(format!(
                "{}: {msg}",
                self.path.display()
            )))
        };
        let payload_len = (file_len - self.payload_base.min(file_len)) as u64;
        if self.payload_base > file_len || m.payload_len != payload_len {
            return bad(format!(
                "payload length {} != {} bytes after the header",
                m.payload_len, payload_len
            ));
        }
        let n = m.records;
        let check = |sec: &Section, len: u64, what: &str| -> Result<(), StoreError> {
            if !sec.offset.is_multiple_of(8) {
                return Err(StoreError::Format(format!(
                    "{}: {what} section misaligned (offset {})",
                    self.path.display(),
                    sec.offset
                )));
            }
            if sec.len != len || sec.padded_end() > m.payload_len {
                return Err(StoreError::Format(format!(
                    "{}: {what} section [{}, +{}] inconsistent (expected {} bytes in a {}-byte \
                     payload)",
                    self.path.display(),
                    sec.offset,
                    sec.len,
                    len,
                    m.payload_len
                )));
            }
            Ok(())
        };
        check(&m.ground_truth, 4 * n, "ground-truth")?;
        check(&m.norms, 8 * n * m.schema.num_fields() as u64, "norm-cache")?;
        if m.columns.len() != m.schema.num_fields() {
            return bad(format!(
                "{} columns for {} schema fields",
                m.columns.len(),
                m.schema.num_fields()
            ));
        }
        for (f, (col, def)) in m.columns.iter().zip(m.schema.fields()).enumerate() {
            if col.kind != def.kind {
                return bad(format!(
                    "column {f} kind {:?} != schema kind {:?}",
                    col.kind, def.kind
                ));
            }
            match col.kind {
                FieldKind::Dense => {
                    if n > 0 && col.dim == 0 {
                        return bad(format!("dense column {f} has stride 0"));
                    }
                    check(&col.offsets, 0, "dense-offsets")?;
                    check(&col.data, 8 * n * col.dim, "dense-data")?;
                }
                FieldKind::Shingles => {
                    check(&col.offsets, 8 * (n + 1), "shingle-offsets")?;
                    let offsets: &[u64] = self.sec(&col.offsets);
                    if offsets.first() != Some(&0) {
                        return bad(format!("column {f} offset index does not start at 0"));
                    }
                    if offsets.windows(2).any(|w| w[0] > w[1]) {
                        return bad(format!("column {f} offset index not monotone"));
                    }
                    let total = *offsets.last().unwrap();
                    check(&col.data, 8 * total, "shingle-arena")?;
                }
            }
        }
        Ok(())
    }

    /// The payload region (checksummed bytes).
    fn payload(&self) -> &[u8] {
        &self.map.bytes()[self.payload_base..]
    }

    /// Typed slice over one section.
    fn sec<T: Pod>(&self, s: &Section) -> &[T] {
        typed(&self.payload()[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// The parsed header.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The path this view was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total mapped file length in bytes.
    pub fn file_len(&self) -> usize {
        self.map.bytes().len()
    }

    /// Recomputes the FNV-1a checksum of the whole payload and compares
    /// it to the header's. This pages the entire file in — it is a
    /// deliberate full-scan integrity check, not part of `open`.
    ///
    /// # Errors
    /// Fails when the checksums disagree.
    pub fn verify_checksum(&self) -> Result<(), StoreError> {
        let got = fnv1a(FNV_OFFSET, self.payload());
        if got != self.checksum {
            return Err(StoreError::Format(format!(
                "{}: payload checksum {got:#018x} != header {:#018x}",
                self.path.display(),
                self.checksum
            )));
        }
        Ok(())
    }
}

impl RecordStore for StoreView {
    fn schema(&self) -> &Schema {
        &self.meta.schema
    }

    fn len(&self) -> usize {
        self.meta.records as usize
    }

    fn field(&self, id: u32, field: usize) -> FieldRef<'_> {
        let col = &self.meta.columns[field];
        match col.kind {
            FieldKind::Dense => {
                let dim = col.dim as usize;
                let data: &[f64] = self.sec(&col.data);
                let base = id as usize * dim;
                FieldRef::Dense(&data[base..base + dim])
            }
            FieldKind::Shingles => {
                let offsets: &[u64] = self.sec(&col.offsets);
                let arena: &[u64] = self.sec(&col.data);
                FieldRef::Shingles(
                    &arena[offsets[id as usize] as usize..offsets[id as usize + 1] as usize],
                )
            }
        }
    }

    fn field_norm(&self, id: u32, field: usize) -> f64 {
        let norms: &[f64] = self.sec(&self.meta.norms);
        norms[id as usize * self.meta.schema.num_fields() + field]
    }

    fn entity_of(&self, id: u32) -> EntityId {
        let gt: &[u32] = self.sec(&self.meta.ground_truth);
        gt[id as usize]
    }

    fn source(&self) -> &str {
        "store"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{write_store, StoreBuilder};
    use adalsh_data::{Dataset, DenseVector, FieldValue, Record, ShingleSet};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("adalsh_store_view_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample() -> Dataset {
        let schema = Schema::new(vec![
            ("tokens", FieldKind::Shingles),
            ("vec", FieldKind::Dense),
        ]);
        let mk = |s: &[u64], v: &[f64]| {
            Record::new(vec![
                FieldValue::Shingles(ShingleSet::new(s.to_vec())),
                FieldValue::Dense(DenseVector::new(v.to_vec())),
            ])
        };
        Dataset::new(
            schema,
            vec![
                mk(&[1, 2, 9], &[0.5, 0.5, 1.0]),
                mk(&[], &[1.0, 0.0, -2.0]),
                mk(&[3], &[0.0, 0.0, 0.0]),
            ],
            vec![7, 9, 7],
        )
    }

    #[test]
    fn round_trip_payloads_bit_identical() {
        let d = sample();
        let path = tmp("roundtrip.store");
        write_store(&path, &d).unwrap();
        let v = StoreView::open(&path).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.schema(), d.schema());
        assert_eq!(v.source(), "store");
        for i in 0..3u32 {
            assert_eq!(v.entity_of(i), d.entity_of(i));
            assert_eq!(v.field(i, 0).as_shingles(), d.field(i, 0).as_shingles());
            assert_eq!(v.field(i, 1).as_dense(), d.field(i, 1).as_dense());
            for f in 0..2 {
                assert_eq!(
                    v.field_norm(i, f).to_bits(),
                    d.field_norm(i, f).to_bits(),
                    "norm cache bits ({i}, {f})"
                );
            }
        }
        assert_eq!(v.ground_truth_clusters(), d.ground_truth_clusters());
        v.verify_checksum().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_round_trips() {
        let path = tmp("empty.store");
        let schema = Schema::single("s", FieldKind::Shingles);
        StoreBuilder::create(&path, schema.clone())
            .unwrap()
            .finish()
            .unwrap();
        let v = StoreView::open(&path).unwrap();
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
        assert_eq!(v.schema(), &schema);
        assert!(v.ground_truth_clusters().is_empty());
        v.verify_checksum().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn single_record_store_round_trips() {
        let path = tmp("single.store");
        let schema = Schema::single("v", FieldKind::Dense);
        let mut b = StoreBuilder::create(&path, schema).unwrap();
        let rec = Record::single(FieldValue::Dense(DenseVector::new(vec![3.0, 4.0])));
        assert_eq!(b.push(&rec, 42).unwrap(), 0);
        b.finish().unwrap();
        let v = StoreView::open(&path).unwrap();
        assert_eq!(v.len(), 1);
        assert_eq!(v.field(0, 0).as_dense(), &[3.0, 4.0]);
        assert_eq!(v.field_norm(0, 0).to_bits(), 5.0f64.to_bits());
        assert_eq!(v.entity_of(0), 42);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn builder_rejects_ragged_dense_column() {
        let path = tmp("ragged.store");
        let schema = Schema::single("v", FieldKind::Dense);
        let mut b = StoreBuilder::create(&path, schema).unwrap();
        b.push(
            &Record::single(FieldValue::Dense(DenseVector::new(vec![1.0, 2.0]))),
            0,
        )
        .unwrap();
        let err = b
            .push(
                &Record::single(FieldValue::Dense(DenseVector::new(vec![1.0]))),
                0,
            )
            .unwrap_err();
        assert!(err.to_string().contains("fixed-stride"), "{err}");
    }

    #[test]
    fn open_rejects_non_store_files() {
        let path = tmp("not_a_store");
        std::fs::write(&path, b"definitely not a store file, but 32+ bytes long").unwrap();
        let err = StoreView::open(&path).err().expect("must reject");
        assert!(err.to_string().contains("bad magic"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_fails_checksum_but_not_open() {
        let d = sample();
        let path = tmp("corrupt.store");
        write_store(&path, &d).unwrap();
        // Flip one byte in the last 8 bytes (inside a payload column).
        let mut bytes = std::fs::read(&path).unwrap();
        let off = bytes.len() - 5;
        bytes[off] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let v = StoreView::open(&path);
        if let Ok(v) = v {
            // Structural checks may or may not catch a payload flip;
            // the checksum must.
            assert!(v.verify_checksum().is_err());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let d = sample();
        let path = tmp("truncated.store");
        write_store(&path, &d).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 8]).unwrap();
        assert!(StoreView::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
