//! Streaming store-file builder.
//!
//! [`StoreBuilder`] ingests records one at a time and holds **constant
//! memory** regardless of dataset size: every column is spilled to its
//! own temp file as records arrive, and `finish` concatenates the
//! spills into the final columnar layout. The finalize step writes to a
//! `<dest>.tmp` sibling, fsyncs it, and atomically renames it onto the
//! destination (then fsyncs the parent directory), so a reader can
//! never observe a partially written store — the same durability
//! pattern as the serving snapshots.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use adalsh_data::dataset::ensure_record_id_capacity;
use adalsh_data::{vector, EntityId, FieldKind, FieldValue, Record, RecordStore, Schema};

use crate::format::{
    align8, fnv1a, ColumnMeta, Section, StoreError, StoreMeta, ENDIAN_TAG, FIXED_HEADER_LEN,
    FNV_OFFSET, FORMAT_VERSION, MAGIC,
};

/// One spilled column: an append-only temp file plus its byte count.
struct Spill {
    path: PathBuf,
    w: BufWriter<File>,
    bytes: u64,
}

impl Spill {
    fn create(path: PathBuf) -> Result<Self, StoreError> {
        let w = BufWriter::new(File::create(&path)?);
        Ok(Self { path, w, bytes: 0 })
    }

    fn write(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        self.w.write_all(bytes)?;
        self.bytes += bytes.len() as u64;
        Ok(())
    }
}

/// Per-field column writer state.
enum Col {
    Dense {
        dim: Option<u64>,
        data: Spill,
    },
    Shingles {
        total: u64,
        offsets: Spill,
        data: Spill,
    },
}

/// Streaming builder for a store file. See the module docs for the
/// memory and durability contract.
pub struct StoreBuilder {
    dest: PathBuf,
    schema: Schema,
    records: u64,
    gt: Spill,
    norms: Spill,
    cols: Vec<Col>,
}

/// Native-endian byte view of a `u64` slice (the file is a memory
/// image; see `format.rs`).
fn u64_bytes(v: &[u64]) -> &[u8] {
    // SAFETY: any u64 is 8 valid bytes; lifetimes tied to the slice.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 8) }
}

/// Native-endian byte view of an `f64` slice.
fn f64_bytes(v: &[f64]) -> &[u8] {
    // SAFETY: as above; f64 has no invalid bit patterns as bytes.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, v.len() * 8) }
}

impl StoreBuilder {
    /// Starts building a store at `dest` for records of `schema`. Spill
    /// temp files are created next to `dest` (as `<dest>.spill.*`) and
    /// removed by [`StoreBuilder::finish`].
    ///
    /// # Errors
    /// Fails on filesystem errors creating the spill files.
    pub fn create(dest: &Path, schema: Schema) -> Result<Self, StoreError> {
        let spill = |tag: &str| -> PathBuf {
            let mut name = dest.as_os_str().to_owned();
            name.push(format!(".spill.{tag}"));
            PathBuf::from(name)
        };
        let mut cols = Vec::with_capacity(schema.num_fields());
        for (i, def) in schema.fields().iter().enumerate() {
            cols.push(match def.kind {
                FieldKind::Dense => Col::Dense {
                    dim: None,
                    data: Spill::create(spill(&format!("col{i}.dat")))?,
                },
                FieldKind::Shingles => Col::Shingles {
                    total: 0,
                    offsets: Spill::create(spill(&format!("col{i}.off")))?,
                    data: Spill::create(spill(&format!("col{i}.dat")))?,
                },
            });
        }
        Ok(Self {
            dest: dest.to_path_buf(),
            schema,
            records: 0,
            gt: Spill::create(spill("gt"))?,
            norms: Spill::create(spill("norms"))?,
            cols,
        })
    }

    /// Number of records pushed so far.
    pub fn len(&self) -> usize {
        self.records as usize
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Appends one record, returning its id. The cached norm written
    /// for each dense field is exactly the bits `Dataset` would cache
    /// ([`vector::norm`] over the components), preserving the
    /// bit-identity contract of `RecordStore::field_norm`.
    ///
    /// # Errors
    /// Fails if the record violates the schema, a dense field's
    /// dimension differs from the column's established stride, the
    /// record count would overflow the `u32` id space, or on I/O.
    pub fn push(&mut self, record: &Record, entity: EntityId) -> Result<u32, StoreError> {
        self.schema.validate(record).map_err(StoreError::Format)?;
        ensure_record_id_capacity(self.records as usize + 1).map_err(StoreError::Format)?;
        for (f, col) in self.cols.iter_mut().enumerate() {
            match (col, record.field(f)) {
                (Col::Dense { dim, data }, FieldValue::Dense(v)) => {
                    let d = v.dim() as u64;
                    match dim {
                        None => *dim = Some(d),
                        Some(expect) if *expect != d => {
                            return Err(StoreError::Format(format!(
                                "field {f}: dense dimension {d} != column stride {expect} \
                                 (store columns are fixed-stride)"
                            )));
                        }
                        Some(_) => {}
                    }
                    data.write(f64_bytes(v.components()))?;
                    self.norms
                        .write(&vector::norm(v.components()).to_ne_bytes())?;
                }
                (
                    Col::Shingles {
                        total,
                        offsets,
                        data,
                    },
                    FieldValue::Shingles(s),
                ) => {
                    offsets.write(&total.to_ne_bytes())?;
                    data.write(u64_bytes(s.shingles()))?;
                    *total += s.len() as u64;
                    self.norms.write(&0.0f64.to_ne_bytes())?;
                }
                // validate() already pinned kinds; unreachable.
                _ => unreachable!("schema validation admitted a kind mismatch"),
            }
        }
        self.gt.write(&entity.to_ne_bytes())?;
        let id = self.records as u32;
        self.records += 1;
        Ok(id)
    }

    /// Finalizes the store: closes the offset index of every shingle
    /// column, concatenates the spilled columns into `<dest>.tmp` with
    /// the checksummed header, fsyncs, and atomically renames onto the
    /// destination. Spill files are removed on success; on failure the
    /// `.tmp` sibling is removed and the error returned.
    ///
    /// # Errors
    /// Fails on filesystem errors.
    pub fn finish(mut self) -> Result<(), StoreError> {
        // Close each shingle column's offset index: offsets[n] = total.
        for col in &mut self.cols {
            if let Col::Shingles { total, offsets, .. } = col {
                let total = *total;
                offsets.write(&total.to_ne_bytes())?;
            }
        }
        let mut spills: Vec<PathBuf> = vec![self.gt.path.clone(), self.norms.path.clone()];
        for col in &self.cols {
            match col {
                Col::Dense { data, .. } => spills.push(data.path.clone()),
                Col::Shingles { offsets, data, .. } => {
                    spills.push(offsets.path.clone());
                    spills.push(data.path.clone());
                }
            }
        }
        let tmp = {
            let mut name = self.dest.as_os_str().to_owned();
            name.push(".tmp");
            PathBuf::from(name)
        };
        let result = self.write_final(&tmp);
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        } else {
            for p in &spills {
                let _ = std::fs::remove_file(p);
            }
        }
        result
    }

    /// Lays out the payload, writes the complete file to `tmp`, and
    /// renames it onto the destination.
    fn write_final(mut self, tmp: &Path) -> Result<(), StoreError> {
        let n = self.records;
        let nf = self.schema.num_fields() as u64;

        // Flush every spill so the files on disk are complete.
        self.gt.w.flush()?;
        self.norms.w.flush()?;
        for col in &mut self.cols {
            match col {
                Col::Dense { data, .. } => data.w.flush()?,
                Col::Shingles { offsets, data, .. } => {
                    offsets.w.flush()?;
                    data.w.flush()?;
                }
            }
        }

        // Payload layout: every section starts 8-aligned; offsets are
        // relative to the payload base. The write loop below must visit
        // sections in exactly this order.
        let mut cursor = 0u64;
        let mut section = |len: u64| -> Section {
            let s = Section {
                offset: cursor,
                len,
            };
            cursor = align8(cursor + len);
            s
        };
        let ground_truth = section(4 * n);
        let norms = section(8 * n * nf);
        debug_assert_eq!(self.norms.bytes, norms.len, "norm spill size");
        let mut columns = Vec::with_capacity(self.cols.len());
        let mut ordered: Vec<(&Spill, Section)> = Vec::new();
        ordered.push((&self.gt, ground_truth));
        ordered.push((&self.norms, norms));
        for (def, col) in self.schema.fields().iter().zip(&self.cols) {
            match col {
                Col::Dense { dim, data } => {
                    let dim = dim.unwrap_or(0);
                    let sec = section(8 * n * dim);
                    debug_assert_eq!(data.bytes, sec.len, "dense spill size");
                    ordered.push((data, sec));
                    columns.push(ColumnMeta {
                        kind: def.kind,
                        dim,
                        offsets: Section {
                            offset: sec.offset,
                            len: 0,
                        },
                        data: sec,
                    });
                }
                Col::Shingles {
                    total,
                    offsets,
                    data,
                } => {
                    let off = section(8 * (n + 1));
                    let dat = section(8 * total);
                    debug_assert_eq!(offsets.bytes, off.len, "offset spill size");
                    debug_assert_eq!(data.bytes, dat.len, "arena spill size");
                    ordered.push((offsets, off));
                    ordered.push((data, dat));
                    columns.push(ColumnMeta {
                        kind: def.kind,
                        dim: 0,
                        offsets: off,
                        data: dat,
                    });
                }
            }
        }
        let payload_len = cursor;
        let meta = StoreMeta {
            records: n,
            schema: self.schema.clone(),
            ground_truth,
            norms,
            columns,
            payload_len,
        };
        let header = serde_json::to_string(&meta)
            .map_err(|e| StoreError::Format(format!("serialize header: {e}")))?;
        let header_bytes = header.as_bytes();
        let payload_base = align8((FIXED_HEADER_LEN + header_bytes.len()) as u64);

        // Fixed header with a checksum placeholder, then the JSON and
        // its alignment padding.
        let mut file = File::create(tmp)?;
        file.write_all(&MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_ne_bytes())?;
        file.write_all(&ENDIAN_TAG.to_ne_bytes())?;
        file.write_all(&(header_bytes.len() as u64).to_ne_bytes())?;
        file.write_all(&0u64.to_ne_bytes())?;
        file.write_all(header_bytes)?;
        let pad = payload_base - (FIXED_HEADER_LEN + header_bytes.len()) as u64;
        file.write_all(&vec![0u8; pad as usize])?;

        // Stream the payload, folding the checksum over every byte
        // (padding included) exactly as `verify_checksum` will.
        let mut out = BufWriter::new(file);
        let mut checksum = FNV_OFFSET;
        let mut written = 0u64;
        let mut copy_buf = vec![0u8; 1 << 16];
        for (spill, sec) in ordered {
            debug_assert_eq!(sec.offset, written, "layout/write-order drift");
            let mut src = File::open(&spill.path)?;
            let mut remaining = sec.len;
            while remaining > 0 {
                let want = copy_buf.len().min(remaining as usize);
                let got = src.read(&mut copy_buf[..want])?;
                if got == 0 {
                    return Err(StoreError::Format(format!(
                        "spill {} shorter than its recorded {} bytes",
                        spill.path.display(),
                        sec.len
                    )));
                }
                checksum = fnv1a(checksum, &copy_buf[..got]);
                out.write_all(&copy_buf[..got])?;
                remaining -= got as u64;
            }
            let pad = align8(sec.offset + sec.len) - (sec.offset + sec.len);
            if pad > 0 {
                let zeros = [0u8; 8];
                checksum = fnv1a(checksum, &zeros[..pad as usize]);
                out.write_all(&zeros[..pad as usize])?;
            }
            written = align8(sec.offset + sec.len);
        }
        debug_assert_eq!(written, payload_len, "payload length drift");
        out.flush()?;
        let mut file = out
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?;

        // Patch the checksum into the fixed header, make the file
        // durable, and publish it atomically.
        file.seek(SeekFrom::Start(24))?;
        file.write_all(&checksum.to_ne_bytes())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(tmp, &self.dest)?;
        #[cfg(unix)]
        if let Some(parent) = self.dest.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

/// Copies every record of `store` into a new store file at `dest` —
/// the `Dataset` → file path the round-trip tests and the CLI use.
///
/// # Errors
/// See [`StoreBuilder::create`], [`StoreBuilder::push`], and
/// [`StoreBuilder::finish`].
pub fn write_store(dest: &Path, store: &dyn RecordStore) -> Result<(), StoreError> {
    let mut builder = StoreBuilder::create(dest, store.schema().clone())?;
    for id in 0..store.len() as u32 {
        builder.push(&store.materialize(id), store.entity_of(id))?;
    }
    builder.finish()
}
