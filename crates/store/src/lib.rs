//! # adalsh-store
//!
//! Out-of-core columnar record store for the adaLSH engine.
//!
//! A store file holds one dataset in column-major layout — fixed-stride
//! dense-vector columns, offset-indexed shingle arenas, a norm-cache
//! column, and a ground-truth column — behind a checksummed, versioned
//! header. Files are written by [`StoreBuilder`] (streaming, constant
//! memory, atomic tmp+rename finalize) and read back by [`StoreView`],
//! a zero-copy view over the memory-mapped file that implements
//! [`adalsh_data::RecordStore`]: the engine resolves directly off the
//! mapped bytes without materializing records in RAM.
//!
//! The differential tests in `tests/` pin the mmap path bit-identical
//! (clusters and run statistics) to the in-RAM [`adalsh_data::Dataset`]
//! path across rule kinds and thread counts; `tests/roundtrip.rs`
//! property-tests `Dataset` → file → view payload equality.
//!
//! See `DESIGN.md` §12 for the file-layout diagram and the mmap safety
//! argument.

pub mod builder;
pub mod format;
mod mmap;
pub mod view;

pub use builder::{write_store, StoreBuilder};
pub use format::{StoreError, FORMAT_VERSION, MAGIC};
pub use view::StoreView;
