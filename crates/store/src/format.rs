//! On-disk format of an adaLSH store file.
//!
//! ```text
//! offset 0   ┌──────────────────────────────────────────────┐
//!            │ magic  "ADLSHST1"                    8 bytes │
//! offset 8   │ format version (u32, native endian)  4 bytes │
//! offset 12  │ endian tag 0x0A0B0C0D (u32)          4 bytes │
//! offset 16  │ header JSON length (u64)             8 bytes │
//! offset 24  │ payload FNV-1a checksum (u64)        8 bytes │
//! offset 32  │ header JSON (StoreMeta)          header_len  │
//!            ├──── zero padding to 8-byte alignment ────────┤
//! payload 0  │ ground-truth column   u32 × n                │
//!            ├──── zero padding to 8-byte alignment ────────┤
//!            │ norm-cache column     f64 × n × num_fields   │
//!            │ column 0 …                                   │
//!            │   dense:    f64 × n × dim   (fixed stride)   │
//!            │   shingles: offsets u64 × (n+1), then arena  │
//!            │ … column F−1  (each section 8-byte aligned)  │
//! file end   └──────────────────────────────────────────────┘
//! ```
//!
//! All integers and floats are **native-endian**: the file is a memory
//! image, and the endian tag rejects files mapped on a machine with the
//! opposite byte order instead of silently misreading them. Section
//! offsets in the header are relative to the payload base (the first
//! 8-aligned offset after the header JSON), so the header's own length
//! does not feed back into its content. The checksum covers every
//! payload byte, padding included; [`StoreView::verify_checksum`]
//! recomputes it on demand — `open` performs structural validation only,
//! so opening a store does not page the whole file in.
//!
//! [`StoreView::verify_checksum`]: crate::StoreView::verify_checksum

use serde::{Deserialize, Serialize};

use adalsh_data::{FieldKind, Schema};

/// Magic bytes at offset 0 of every store file.
pub const MAGIC: [u8; 8] = *b"ADLSHST1";

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Endianness canary: written native, must read back as itself.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

/// Byte length of the fixed header that precedes the header JSON.
pub const FIXED_HEADER_LEN: usize = 32;

/// Rounds `off` up to the next multiple of 8.
pub fn align8(off: u64) -> u64 {
    (off + 7) & !7
}

/// One pass of 64-bit FNV-1a over `bytes`, folded into `h`. Seed with
/// [`FNV_OFFSET`].
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis (the checksum seed).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// A byte range inside the payload region: `offset` is relative to the
/// payload base and always 8-aligned; `len` is the unpadded byte length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Section {
    /// Byte offset from the payload base (8-aligned).
    pub offset: u64,
    /// Exact (unpadded) byte length.
    pub len: u64,
}

impl Section {
    /// End offset of the section's padded extent.
    pub fn padded_end(&self) -> u64 {
        align8(self.offset + self.len)
    }
}

/// Layout of one schema field's column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnMeta {
    /// The field kind this column stores.
    pub kind: FieldKind,
    /// Dense columns: components per record (the fixed stride).
    /// Shingle columns: 0.
    pub dim: u64,
    /// Shingle columns: the `u64 × (n+1)` prefix-offset index into the
    /// arena (`offsets[i]..offsets[i+1]` are record `i`'s shingles).
    /// Dense columns: empty.
    pub offsets: Section,
    /// Dense columns: `f64 × n × dim` components. Shingle columns: the
    /// `u64` shingle arena.
    pub data: Section,
}

/// The header JSON: everything needed to interpret the payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreMeta {
    /// Number of records.
    pub records: u64,
    /// The dataset schema.
    pub schema: Schema,
    /// Ground-truth entity labels, `u32 × records`.
    pub ground_truth: Section,
    /// Cached field norms, `f64 × records × num_fields`, row-major —
    /// exactly the bits `Dataset::field_norm` would hold.
    pub norms: Section,
    /// One column per schema field, in schema order.
    pub columns: Vec<ColumnMeta>,
    /// Total payload byte length (the checksummed region).
    pub payload_len: u64,
}

/// Errors raised by the store builder and view.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file (or the data being written) violates the format.
    Format(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Format(m) => write!(f, "store format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align8_rounds_up() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(9), 16);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // FNV-1a 64 well-known vectors.
        assert_eq!(fnv1a(FNV_OFFSET, b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn section_padded_end() {
        let s = Section { offset: 8, len: 4 };
        assert_eq!(s.padded_end(), 16);
        let s = Section { offset: 8, len: 8 };
        assert_eq!(s.padded_end(), 16);
    }
}
