//! Read-only whole-file mappings, with a heap fallback.
//!
//! On Unix the file is mapped with hand-declared `mmap`/`munmap`
//! bindings (the workspace builds offline; no libc crate). Elsewhere —
//! and for zero-length files, which `mmap` rejects — the file is read
//! into an 8-aligned heap buffer instead, so [`Mapping::bytes`] always
//! returns memory whose base is at least 8-aligned and the typed-slice
//! accessors in `view.rs` stay valid on every platform.
//!
//! Safety contract (see also `DESIGN.md` §12): a mapping may only be
//! created over a **finalized** store file. The builder publishes files
//! with an atomic tmp+rename, so a reader never observes a partially
//! written file; store files are immutable once published, so the
//! mapped bytes cannot change underneath the borrow. All section
//! offsets are bounds-checked against the mapped length at open time,
//! so even a corrupted (but size-stable) file can at worst fail
//! validation or panic on a slice bound — never touch memory outside
//! the mapping.

use std::fs::File;
use std::io::Read;

#[cfg(unix)]
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A read-only view of a whole file: memory-mapped where possible,
/// heap-buffered otherwise.
pub(crate) enum Mapping {
    /// `mmap`ed region (Unix, non-empty files). The base pointer is
    /// page-aligned, hence 8-aligned.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Heap copy in a `u64` buffer (8-aligned base) holding `len` valid
    /// bytes.
    Heap { buf: Vec<u64>, len: usize },
}

// SAFETY: the mapping is read-only for its whole lifetime (PROT_READ,
// private; heap buffer never mutated after construction), so shared
// access from multiple threads is sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps (or reads) `file`, which must have exactly `len` bytes.
    pub(crate) fn of_file(file: &File, len: usize) -> std::io::Result<Self> {
        #[cfg(unix)]
        {
            if len > 0 {
                use std::os::unix::io::AsRawFd;
                // SAFETY: fd is a valid open file; we request a fresh
                // read-only private mapping of `len` bytes at offset 0
                // and check for MAP_FAILED before using the pointer.
                let ptr = unsafe {
                    sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        sys::PROT_READ,
                        sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize == -1 {
                    return Err(std::io::Error::last_os_error());
                }
                return Ok(Mapping::Mapped {
                    ptr: ptr as *const u8,
                    len,
                });
            }
        }
        Self::read_into_heap(file, len)
    }

    /// Fallback: read the whole file into an 8-aligned heap buffer.
    fn read_into_heap(mut file: &File, len: usize) -> std::io::Result<Self> {
        let mut buf = vec![0u64; len.div_ceil(8)];
        // SAFETY: the u64 buffer owns at least `len` initialized bytes;
        // viewing them as bytes for read_exact is always valid.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(Mapping::Heap { buf, len })
    }

    /// The mapped bytes. The base address is at least 8-aligned.
    pub(crate) fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: ptr/len come from a successful mmap that lives
            // until Drop; the region is never unmapped while borrowed.
            Mapping::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Mapping::Heap { buf, len } => {
                // SAFETY: buf owns >= len bytes, all initialized.
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, *len) }
            }
        }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Mapping::Mapped { ptr, len } = self {
            // SAFETY: exactly the region returned by mmap; no borrows of
            // it can outlive the Mapping that hands them out.
            unsafe {
                sys::munmap(*ptr as *mut std::os::raw::c_void, *len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("adalsh_mmap_test_{name}"));
        let mut f = File::create(&path).unwrap();
        f.write_all(contents).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp_file("basic", b"hello mapping");
        let file = File::open(&path).unwrap();
        let m = Mapping::of_file(&file, 13).unwrap();
        assert_eq!(m.bytes(), b"hello mapping");
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0, "8-aligned base");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn zero_length_file_maps_empty() {
        let path = tmp_file("empty", b"");
        let file = File::open(&path).unwrap();
        let m = Mapping::of_file(&file, 0).unwrap();
        assert!(m.bytes().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn heap_fallback_matches() {
        let path = tmp_file("heap", &[1u8, 2, 3, 4, 5, 6, 7, 8, 9]);
        let file = File::open(&path).unwrap();
        let m = Mapping::read_into_heap(&file, 9).unwrap();
        assert_eq!(m.bytes(), &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }
}
